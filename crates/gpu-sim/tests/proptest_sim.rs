//! Property tests for the simulator substrate: warp primitives must be
//! functionally exact against scalar references for arbitrary inputs,
//! and the timing model must respect basic monotonicity invariants.

use gpu_sim::{lane_mask, presets, Device, WARP};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gather_returns_exact_values(
        data in proptest::collection::vec(-100.0f64..100.0, 1..300),
        idx_seed in proptest::collection::vec(0usize..usize::MAX, WARP..=WARP),
        mask in any::<u32>(),
    ) {
        let dev = Device::new(presets::gtx_titan());
        let n = data.len();
        let buf = dev.alloc(data.clone());
        let idx: [usize; WARP] = std::array::from_fn(|i| idx_seed[i] % n);
        dev.launch("t", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let got = warp.gather(&buf, &idx, mask);
                for lane in 0..WARP {
                    if mask >> lane & 1 == 1 {
                        assert_eq!(got[lane], data[idx[lane]]);
                    } else {
                        assert_eq!(got[lane], 0.0, "inactive lane must default");
                    }
                }
            });
        });
    }

    #[test]
    fn scatter_then_gather_round_trips(
        vals in proptest::collection::vec(-50.0f64..50.0, WARP..=WARP),
        n_lanes in 1usize..=WARP,
    ) {
        let dev = Device::new(presets::gtx_titan());
        let buf = dev.alloc_zeroed::<f64>(WARP);
        let v: [f64; WARP] = std::array::from_fn(|i| vals[i]);
        let idx: [usize; WARP] = std::array::from_fn(|i| i);
        let mask = lane_mask(n_lanes);
        dev.launch("t", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                warp.scatter(&buf, &idx, &v, mask);
            });
        });
        for (i, &v) in vals.iter().enumerate() {
            let want = if i < n_lanes { v } else { 0.0 };
            prop_assert_eq!(buf.as_slice()[i], want);
        }
    }

    #[test]
    fn segmented_reduce_matches_scalar_sum(
        vals in proptest::collection::vec(-10.0f64..10.0, WARP..=WARP),
        width_pow in 0u32..=5,
    ) {
        let width = 1usize << width_pow;
        let dev = Device::new(presets::gtx_titan());
        let v: [f64; WARP] = std::array::from_fn(|i| vals[i]);
        dev.launch("t", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let red = warp.segmented_reduce_sum(&v, width);
                for seg in 0..WARP / width {
                    let want: f64 = (0..width).map(|i| vals[seg * width + i]).sum();
                    let got = red[seg * width];
                    assert!(
                        (got - want).abs() < 1e-9,
                        "segment {seg}: {got} vs {want}"
                    );
                }
            });
        });
    }

    #[test]
    fn atomic_rmw_sums_all_contributions(
        targets in proptest::collection::vec(0usize..8, WARP..=WARP),
        vals in proptest::collection::vec(0.5f64..2.0, WARP..=WARP),
        mask in any::<u32>(),
    ) {
        let dev = Device::new(presets::gtx_titan());
        let acc = dev.alloc_zeroed::<f64>(8);
        let idx: [usize; WARP] = std::array::from_fn(|i| targets[i]);
        let v: [f64; WARP] = std::array::from_fn(|i| vals[i]);
        dev.launch("t", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                warp.atomic_rmw(&acc, &idx, &v, mask, |a, b| a + b);
            });
        });
        let mut want = [0.0f64; 8];
        for lane in 0..WARP {
            if mask >> lane & 1 == 1 {
                want[targets[lane]] += vals[lane];
            }
        }
        for (t, &w) in want.iter().enumerate() {
            prop_assert!((acc.as_slice()[t] - w).abs() < 1e-9);
        }
    }

    #[test]
    fn more_work_never_takes_less_modeled_time(reps in 1usize..12) {
        // launching `reps` x the traffic must be monotone in modeled time
        let dev = Device::new(presets::gtx_titan());
        let buf = dev.alloc(vec![1.0f64; 4096]);
        let time = |k: usize| {
            dev.launch("t", 8 * k, 256, &|blk| {
                blk.for_each_warp(&mut |warp| {
                    let base = (warp.global_warp_id() * WARP) % 4000;
                    warp.read_coalesced(&buf, base, u32::MAX);
                });
            })
            .time_s
        };
        prop_assert!(time(reps + 1) >= time(reps));
    }

    #[test]
    fn copy_seconds_is_monotone_in_bytes(a in 0u64..1 << 30, b in 0u64..1 << 30) {
        let cfg = presets::gtx_titan();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cfg.copy_seconds(lo) <= cfg.copy_seconds(hi));
    }

    #[test]
    fn cache_never_hits_on_first_touch(addrs in proptest::collection::vec(0u64..1 << 20, 1..200)) {
        use gpu_sim::cache::SetAssocCache;
        let mut c = SetAssocCache::new(4096, 32, 4);
        let mut seen = std::collections::HashSet::new();
        for &a in &addrs {
            let line = a / 32;
            let hit = c.access(a);
            if !seen.contains(&line) {
                prop_assert!(!hit, "first touch of line {line} must miss");
            }
            seen.insert(line);
        }
    }
}
