//! Parallel host execution must be unobservable: for ANY kernel, grid
//! shape and device preset, running the simulator on N host workers must
//! produce a [`RunReport`] bit-identical to the sequential run. The
//! engine shards a launch per SM and merges in SM order regardless of
//! which worker ran which shard, so this holds by construction — these
//! properties pin it against regressions.
//!
//! Atomic adds in the stress kernel use integer-valued `f64` operands so
//! buffer contents are exact under any cross-shard application order
//! (the report itself never depends on that order).

use gpu_sim::{lane_mask, presets, set_sim_threads, Device, DeviceConfig, RunReport, WARP};
use proptest::prelude::*;
use std::sync::Mutex;

/// `set_sim_threads` is process-global; the test harness runs `#[test]`
/// fns on several threads, so every test that flips the width holds this.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn preset(which: u8) -> DeviceConfig {
    match which % 3 {
        0 => presets::gtx_titan(),
        1 => presets::gtx_580(),
        _ => presets::tesla_k10_single(),
    }
}

/// A kernel exercising every counter source: coalesced reads, texture
/// gathers, ALU charges, segmented reduction, atomics and strided writes.
fn stress_run(dev: &Device, threads: usize, grid: usize, block_dim: usize) -> RunReport {
    set_sim_threads(threads);
    let n = grid * block_dim;
    let src = dev.alloc((0..n).map(|i| (i % 97) as f64).collect::<Vec<_>>());
    let dst = dev.alloc_zeroed::<f64>(n);
    let acc = dev.alloc_zeroed::<f64>(16);
    let report = dev.launch("determinism_stress", grid, block_dim, &|blk| {
        let bidx = blk.block_idx();
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let vals = warp.read_coalesced(&src, base, mask);
            let idx: [usize; WARP] = std::array::from_fn(|l| (base * 7 + l * 13 + bidx * 31) % n);
            let tex = warp.gather_tex(&src, &idx, mask);
            let mut out = [0.0f64; WARP];
            for l in 0..WARP {
                out[l] = vals[l] + tex[l];
            }
            warp.charge_alu(2);
            let red = warp.segmented_reduce_sum(&out, WARP);
            let ones = [1.0f64; WARP];
            let tgt = [bidx % 16; WARP];
            warp.atomic_rmw(&acc, &tgt, &ones, mask, |a, b| a + b);
            let _ = red;
            warp.write_coalesced(&dst, base, &out, mask);
        });
    });
    set_sim_threads(0);
    report
}

/// Same kernel on a dynamic-parallelism device: parent warps launch
/// child grids, exercising child-sequence attribution and DP overheads.
fn dp_run(dev: &Device, threads: usize, grid: usize, fan: usize) -> RunReport {
    set_sim_threads(threads);
    let n = grid * 64 * fan;
    let out = dev.alloc_zeroed::<f64>(n.max(1));
    let out = &out;
    let report = dev.launch("determinism_dp", grid, 64, &|blk| {
        let bidx = blk.block_idx();
        blk.for_each_warp(&mut |warp| {
            if warp.warp_in_block() != 0 {
                return;
            }
            warp.launch_child(fan, 32, move |child| {
                let cb = child.block_idx();
                child.for_each_warp(&mut |cw| {
                    let base = (bidx * 64 * fan + cb * WARP) % n.max(1);
                    let vals = [2.0f64; WARP];
                    cw.write_coalesced(out, base.min(n - WARP), &vals, u32::MAX);
                });
            });
        });
    });
    set_sim_threads(0);
    report
}

/// Full-strictness report comparison: structural equality plus bit-exact
/// time fields (`PartialEq` on f64 would accept -0.0 == 0.0 etc.).
fn assert_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.counters, b.counters, "{what}: counters diverged");
    assert_eq!(a.launches, b.launches, "{what}: launch counts diverged");
    assert_eq!(
        a.time_s.to_bits(),
        b.time_s.to_bits(),
        "{what}: time_s bits diverged"
    );
    for (x, y, f) in [
        (a.breakdown.launch_s, b.breakdown.launch_s, "launch_s"),
        (a.breakdown.compute_s, b.breakdown.compute_s, "compute_s"),
        (a.breakdown.memory_s, b.breakdown.memory_s, "memory_s"),
        (a.breakdown.latency_s, b.breakdown.latency_s, "latency_s"),
        (
            a.breakdown.dynamic_launch_s,
            b.breakdown.dynamic_launch_s,
            "dynamic_launch_s",
        ),
        (a.breakdown.transfer_s, b.breakdown.transfer_s, "transfer_s"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: breakdown {f} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_reports_match_sequential_on_every_preset(
        which in 0u8..3,
        grid in 1usize..40,
        block_pow in 0u32..=3,
        threads in 2usize..=8,
    ) {
        let _guard = WIDTH_LOCK.lock().unwrap();
        let block_dim = 32usize << block_pow;
        let dev = Device::new(preset(which));
        let seq = stress_run(&dev, 1, grid, block_dim);
        let par = stress_run(&dev, threads, grid, block_dim);
        assert_identical(&seq, &par, &format!(
            "preset {which}, grid {grid}x{block_dim}, {threads} workers"
        ));
    }

    #[test]
    fn dynamic_parallelism_reports_match_sequential(
        grid in 1usize..16,
        fan in 1usize..6,
        threads in 2usize..=8,
    ) {
        let _guard = WIDTH_LOCK.lock().unwrap();
        // GTX Titan is the only preset with dynamic parallelism.
        let dev = Device::new(presets::gtx_titan());
        let seq = dp_run(&dev, 1, grid, fan);
        let par = dp_run(&dev, threads, grid, fan);
        assert_identical(&seq, &par, &format!(
            "dp grid {grid}, fan {fan}, {threads} workers"
        ));
    }
}

/// Beyond the report: kernel-visible buffer contents must also agree when
/// the atomic operands are exact at any association order.
#[test]
fn buffer_contents_match_across_widths() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let dev = Device::new(presets::gtx_titan());
    let run = |threads: usize| {
        set_sim_threads(threads);
        let acc = dev.alloc_zeroed::<f64>(8);
        dev.launch("acc", 64, 128, &|blk| {
            let tgt = [blk.block_idx() % 8; WARP];
            blk.for_each_warp(&mut |warp| {
                let ones = [1.0f64; WARP];
                warp.atomic_rmw(&acc, &tgt, &ones, u32::MAX, |a, b| a + b);
            });
        });
        set_sim_threads(0);
        acc.into_vec()
    };
    let seq = run(1);
    for threads in [2, 4] {
        assert_eq!(seq, run(threads), "{threads} workers");
    }
}

/// Non-exact float atomics (the one place parallel execution may perturb
/// kernel-visible state): the *report* stays bit-identical at every
/// width, sequential runs are bit-stable run-to-run, and the parallel
/// accumulated value differs from the sequential one only by
/// association-order round-off — never by more than a few ulps of the
/// true sum. (Cross-shard RMW application order is scheduling-dependent
/// by design; bit-identity of the float itself is NOT guaranteed.)
#[test]
fn float_atomic_accumulation_is_order_stable() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let dev = Device::new(presets::gtx_titan());
    let run = |threads: usize| {
        set_sim_threads(threads);
        let acc = dev.alloc(vec![0.0f64]);
        // 256 blocks over 14 SM shards, each warp atomically adding a
        // non-exact f64 (0.1-ish) to acc[0] — 512 adds total.
        let report = dev.launch("float_atomic", 256, 64, &|blk| {
            let b = blk.block_idx();
            blk.for_each_warp(&mut |warp| {
                let v = [0.1 + (b as f64) * 1e-7; WARP];
                let idx = [0usize; WARP];
                warp.atomic_rmw(&acc, &idx, &v, 1, |a, b| a + b);
            });
        });
        set_sim_threads(0);
        (acc.as_slice()[0], report)
    };
    let (seq_val, seq_report) = run(1);
    let (seq_val2, seq_report2) = run(1);
    assert_eq!(
        seq_val.to_bits(),
        seq_val2.to_bits(),
        "sequential runs must be bit-stable"
    );
    assert_identical(&seq_report, &seq_report2, "sequential repeat");
    for threads in [2, 4, 8] {
        let (par_val, par_report) = run(threads);
        assert_identical(&seq_report, &par_report, &format!("{threads} workers"));
        let rel = (par_val - seq_val).abs() / seq_val.abs();
        assert!(
            rel < 1e-12,
            "{threads} workers: value {par_val} vs sequential {seq_val} (rel {rel:e})"
        );
    }
}
