//! `workers > 1` must never be a *slowdown*: requesting more host
//! workers than can help historically cost wall-clock (pool round-trips
//! with nothing to distribute). [`gpu_sim::effective_workers`] now
//! short-circuits those cases to the sequential path, and this suite
//! pins both the policy (deterministically, via
//! [`gpu_sim::override_host_cores`]) and the end-to-end wall-clock
//! parity `speedup_vs_seq >= 1 - ε`.

use gpu_sim::{
    effective_workers, lane_mask, override_host_cores, presets, set_sim_threads, Device, WARP,
};
use std::sync::Mutex;
use std::time::Instant;

/// `override_host_cores` and `set_sim_threads` are process-global; every
/// test that touches them holds this.
static KNOB_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn single_core_host_never_fans_out() {
    let _guard = KNOB_LOCK.lock().unwrap();
    override_host_cores(1);
    for requested in [2, 4, 8, 64] {
        assert_eq!(effective_workers(requested, 14, 1 << 20), 1);
    }
    override_host_cores(0);
}

#[test]
fn small_grids_stay_sequential_even_on_big_hosts() {
    let _guard = KNOB_LOCK.lock().unwrap();
    override_host_cores(32);
    // Below the fan-out threshold the pool round-trip outweighs the work.
    assert_eq!(effective_workers(8, 14, 1024), 1);
    // At or above it, fan out to min(requested, shards).
    assert_eq!(effective_workers(8, 14, 1 << 20), 8);
    assert_eq!(effective_workers(8, 4, 1 << 20), 4);
    override_host_cores(0);
}

#[test]
fn sequential_requests_are_sequential() {
    let _guard = KNOB_LOCK.lock().unwrap();
    override_host_cores(32);
    assert_eq!(effective_workers(1, 14, 1 << 20), 1);
    assert_eq!(effective_workers(4, 1, 1 << 20), 1);
    override_host_cores(0);
}

/// End-to-end wall-clock parity. The grid is large enough to clear the
/// fan-out threshold, so on a multi-core host this measures real
/// parallel shard execution; on a single-core host the short-circuit
/// makes `workers > 1` run the sequential path outright. Either way a
/// material slowdown fails. ε is generous (0.35) because wall-clock on
/// a loaded CI host is noisy — the historical bug this pins was a 2-3×
/// slowdown, far outside the band. Median-of-3 damps transient spikes.
#[test]
fn multi_worker_wall_clock_is_not_a_slowdown() {
    let _guard = KNOB_LOCK.lock().unwrap();
    let dev = Device::new(presets::gtx_titan());
    let n = 64 * 1024;
    let src = dev.alloc((0..n).map(|i| (i % 131) as f64).collect::<Vec<_>>());
    let dst = dev.alloc_zeroed::<f64>(n);
    let launch = || {
        dev.launch("scaling_probe", n / 256, 256, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let base = warp.first_thread();
                let mask = lane_mask(n - base);
                let vals = warp.read_coalesced(&src, base, mask);
                let idx: [usize; WARP] = std::array::from_fn(|l| (base * 31 + l * 7) % n);
                let tex = warp.gather_tex(&src, &idx, mask);
                let mut out = [0.0f64; WARP];
                for l in 0..WARP {
                    out[l] = vals[l] + tex[l];
                }
                warp.charge_fma(mask);
                warp.write_coalesced(&dst, base, &out, mask);
            });
        });
    };
    let rate = |threads: usize| {
        set_sim_threads(threads);
        launch(); // warmup
        let mut best = f64::MAX;
        let mut samples = [0.0f64; 3];
        for s in &mut samples {
            let start = Instant::now();
            for _ in 0..4 {
                launch();
            }
            *s = start.elapsed().as_secs_f64();
            best = best.min(*s);
        }
        set_sim_threads(0);
        samples.sort_by(f64::total_cmp);
        4.0 / samples[1] // median launches/sec
    };
    let seq = rate(1);
    for threads in [2, 4] {
        let par = rate(threads);
        let speedup = par / seq;
        assert!(
            speedup >= 1.0 - 0.35,
            "workers={threads} regressed wall-clock: {par:.1}/s vs sequential {seq:.1}/s \
             (speedup {speedup:.2})"
        );
    }
}
