//! Discrete-event scheduler determinism: the [`gpu_sim::TieBreak`]
//! order in which same-cycle components leave the event queue, and the
//! host worker width that ticks each frontier, are both pure scheduling
//! policy — neither may be observable in a [`RunReport`]. This pins the
//! full cross product `ACSR_SIM_THREADS ∈ {1,2,4,8} × TieBreak
//! {Ascending, Descending}` to the bit level, for plain grids and for
//! dynamic-parallelism cascades (whose child waves are exactly the
//! multi-component frontiers the tie-break reorders).

use gpu_sim::{
    lane_mask, presets, set_sim_threads, set_tie_break, Device, RunReport, TieBreak, WARP,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// `set_sim_threads` / `set_tie_break` are process-global; every test
/// that flips them holds this.
static KNOB_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 4] = [1, 2, 4, 8];
const ORDERS: [TieBreak; 2] = [TieBreak::Ascending, TieBreak::Descending];

/// A kernel touching every counter source, with enough blocks that
/// every SM is a same-cycle component in wave 0 (the frontier the
/// tie-break permutes).
fn stress_run(dev: &Device, grid: usize, block_dim: usize) -> (RunReport, Vec<f64>) {
    let n = grid * block_dim;
    let src = dev.alloc((0..n).map(|i| (i % 89) as f64).collect::<Vec<_>>());
    let dst = dev.alloc_zeroed::<f64>(n);
    let report = dev.launch("event_stress", grid, block_dim, &|blk| {
        let bidx = blk.block_idx();
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let vals = warp.read_coalesced(&src, base, mask);
            let idx: [usize; WARP] = std::array::from_fn(|l| (base * 13 + l * 5 + bidx) % n);
            let tex = warp.gather_tex(&src, &idx, mask);
            let mut out = [0.0f64; WARP];
            for l in 0..WARP {
                out[l] = vals[l] + tex[l];
            }
            let red = warp.segmented_reduce_sum(&out, 8);
            warp.charge_fma(mask);
            let _ = red;
            warp.write_coalesced(&dst, base, &out, mask);
        });
    });
    (report, dst.into_vec())
}

/// Dynamic-parallelism cascade: parent warps launch child grids, so
/// later frontiers hold several SMs woken at the same child-wave cycle.
fn dp_run(dev: &Device, grid: usize, fan: usize) -> (RunReport, Vec<f64>) {
    let n = (grid * 64 * fan).max(WARP);
    let out = dev.alloc_zeroed::<f64>(n);
    let out_ref = &out;
    let report = dev.launch("event_dp", grid, 64, &|blk| {
        let bidx = blk.block_idx();
        blk.for_each_warp(&mut |warp| {
            if warp.warp_in_block() != 0 {
                return;
            }
            warp.launch_child(fan, 32, move |child| {
                let cb = child.block_idx();
                child.for_each_warp(&mut |cw| {
                    let base = (bidx * 64 * fan + cb * WARP) % n;
                    let vals = [3.0f64; WARP];
                    cw.write_coalesced(out_ref, base.min(n - WARP), &vals, u32::MAX);
                });
            });
        });
    });
    (report, out.into_vec())
}

fn assert_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.counters, b.counters, "{what}: counters diverged");
    assert_eq!(a.launches, b.launches, "{what}: launch counts diverged");
    assert_eq!(
        a.time_s.to_bits(),
        b.time_s.to_bits(),
        "{what}: time_s bits diverged"
    );
}

/// Run `f` under every (width, tie-break) pair and require bit-identical
/// reports and identical kernel-visible buffer contents.
fn sweep(what: &str, f: impl Fn() -> (RunReport, Vec<f64>)) {
    set_sim_threads(1);
    set_tie_break(TieBreak::Ascending);
    let (ref_report, ref_buf) = f();
    for &threads in &WIDTHS {
        for &order in &ORDERS {
            set_sim_threads(threads);
            set_tie_break(order);
            let (report, buf) = f();
            assert_identical(
                &ref_report,
                &report,
                &format!("{what}, {threads} workers, {order:?}"),
            );
            assert_eq!(
                ref_buf, buf,
                "{what}, {threads} workers, {order:?}: buffer contents diverged"
            );
        }
    }
    set_sim_threads(0);
    set_tie_break(TieBreak::Ascending);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reports_invariant_under_width_and_tie_break(
        grid in 1usize..48,
        block_pow in 0u32..=3,
    ) {
        let _guard = KNOB_LOCK.lock().unwrap();
        let dev = Device::new(presets::gtx_titan());
        let block_dim = 32usize << block_pow;
        sweep(
            &format!("grid {grid}x{block_dim}"),
            || stress_run(&dev, grid, block_dim),
        );
    }

    #[test]
    fn dp_cascades_invariant_under_width_and_tie_break(
        grid in 1usize..12,
        fan in 1usize..5,
    ) {
        let _guard = KNOB_LOCK.lock().unwrap();
        // GTX Titan is the only preset with dynamic parallelism.
        let dev = Device::new(presets::gtx_titan());
        sweep(&format!("dp grid {grid} fan {fan}"), || dp_run(&dev, grid, fan));
    }
}

/// The tie-break knob itself must round-trip (guards against the knob
/// silently becoming a no-op, which would turn the sweep above into
/// 2× redundant coverage).
#[test]
fn tie_break_knob_round_trips() {
    let _guard = KNOB_LOCK.lock().unwrap();
    set_tie_break(TieBreak::Descending);
    assert_eq!(gpu_sim::tie_break(), TieBreak::Descending);
    set_tie_break(TieBreak::Ascending);
    assert_eq!(gpu_sim::tie_break(), TieBreak::Ascending);
}
