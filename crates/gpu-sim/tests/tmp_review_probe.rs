//! Temporary review probe: do cross-shard float atomics produce
//! run-to-run varying buffer contents?

use gpu_sim::{presets, set_sim_threads, Device, WARP};

#[test]
fn probe_float_atomic_order_sensitivity() {
    let dev = Device::new(presets::gtx_titan());
    let run = |threads: usize| {
        set_sim_threads(threads);
        let acc = dev.alloc(vec![0.0f64]);
        // 256 blocks across 14 SM shards, each warp atomically adding a
        // non-exact f64 (0.1-ish) to acc[0].
        dev.launch("probe", 256, 64, &|blk| {
            let b = blk.block_idx();
            blk.for_each_warp(&mut |warp| {
                let v = [0.1 + (b as f64) * 1e-7; WARP];
                let idx = [0usize; WARP];
                warp.atomic_rmw(&acc, &idx, &v, 1, |a, b| a + b);
            });
        });
        set_sim_threads(0);
        acc.as_slice()[0].to_bits()
    };
    let seq = run(1);
    let mut distinct = std::collections::HashSet::new();
    distinct.insert(seq);
    for _ in 0..20 {
        distinct.insert(run(8));
    }
    assert_eq!(
        distinct.len(),
        1,
        "float atomic accumulation order varies: {} distinct bit patterns (seq={seq:x})",
        distinct.len()
    );
}
