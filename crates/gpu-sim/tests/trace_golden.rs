//! Golden-file test for the chrome-trace exporter: a fixed scenario must
//! produce byte-identical JSON (stable field ordering, stable float
//! formatting, stable span order) — the export is an artifact other
//! tooling parses, so accidental format drift should fail loudly.
//!
//! Regenerate after an intentional format change with
//! `ACSR_REGEN_GOLDEN=1 cargo test -p gpu-sim --test trace_golden`.

use gpu_sim::{lane_mask, presets, set_sim_threads, Device, WARP};

const GOLDEN: &str = include_str!("golden/trace_small.json");

/// Deterministic scenario covering every span kind: H2D upload, plain
/// launch, pooled concurrent group (two streams), dynamic-parallelism
/// child waves, D2H readback.
fn scenario_json() -> String {
    set_sim_threads(1);
    let mut dev = Device::new(presets::gtx_titan());
    let ledger = dev.enable_tracing();
    let n = 1024usize;
    let src = dev.alloc((0..n).map(|i| (i % 7) as f64).collect::<Vec<_>>());
    let dst = dev.alloc_zeroed::<f64>(n);

    dev.record_htod("x_upload", (n * 8) as u64);

    dev.launch("copy", 4, 64, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let vals = warp.read_coalesced(&src, base, mask);
            warp.write_coalesced(&dst, base, &vals, mask);
        });
    });

    let mut group = dev.launch_group("spmv");
    group.add("bin1", 2, 64, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread() % n;
            warp.read_coalesced(&src, base, u32::MAX);
        });
    });
    group.add("bin2", 1, 64, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let idx: [usize; WARP] = std::array::from_fn(|l| (l * 33) % n);
            warp.gather_tex(&src, &idx, u32::MAX);
        });
    });
    group.finish();

    let out = dev.alloc_zeroed::<f64>(2 * WARP);
    let out_ref = &out;
    dev.launch("dp_parent", 1, 32, &|blk| {
        blk.for_each_warp(&mut |warp| {
            warp.launch_child(2, 32, move |child| {
                let cb = child.block_idx();
                child.for_each_warp(&mut |cw| {
                    let vals = [5.0f64; WARP];
                    cw.write_coalesced(out_ref, cb * WARP, &vals, u32::MAX);
                });
            });
        });
    });

    dev.record_dtoh("y_readback", (n * 8) as u64);
    set_sim_threads(0);
    ledger.reconcile().expect("golden scenario must reconcile");
    ledger.chrome_trace_json()
}

#[test]
fn chrome_trace_export_matches_golden_file() {
    let json = scenario_json();
    serde_json::validate(&json).expect("export must be valid JSON");

    if std::env::var("ACSR_REGEN_GOLDEN").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_small.json");
        std::fs::write(path, &json).expect("write golden");
        eprintln!("regenerated {path}");
        return;
    }
    assert_eq!(
        json, GOLDEN,
        "chrome-trace export drifted from tests/golden/trace_small.json \
         (regenerate with ACSR_REGEN_GOLDEN=1 if intentional)"
    );
}
