//! The fused / specialized warp memory ops are documented as
//! bit-identical to their expanded forms: [`WarpCtx::gather2`] to two
//! gathers, [`WarpCtx::gather_grouped`] to a gather of the expanded
//! per-lane index array, [`WarpCtx::read_coalesced`] to a gather of
//! `base..base+32`. These properties pin that — values, counters, and
//! every timing field must agree for arbitrary index patterns and masks
//! (sorted, unsorted, duplicated, sparse), because kernels choose freely
//! between the forms and the profile goldens assume the choice is
//! unobservable.

use gpu_sim::{lane_mask, presets, Device, RunReport, WARP};
use proptest::prelude::*;

fn assert_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.counters, b.counters, "{what}: counters diverged");
    assert_eq!(
        a.time_s.to_bits(),
        b.time_s.to_bits(),
        "{what}: time_s bits diverged"
    );
}

/// Index strategy: sorted ascending, scattered, or heavily duplicated
/// runs over a buffer of `n` elements, chosen by a shape selector.
fn idx_strategy(n: usize) -> impl Strategy<Value = [usize; WARP]> {
    (
        0u8..3,
        0usize..n / 2,
        proptest::collection::vec(0usize..n, WARP),
    )
        .prop_map(move |(shape, b, v)| {
            let mut idx = [0usize; WARP];
            match shape {
                // ascending with small gaps (the sorted fast path)
                0 => {
                    let mut cur = b;
                    for (i, s) in v.iter().enumerate() {
                        cur = (cur + s % 3).min(n - 1);
                        idx[i] = cur;
                    }
                }
                // fully scattered (unsorted fallback)
                1 => idx.copy_from_slice(&v),
                // few distinct values, duplicated (conflict-heavy)
                _ => {
                    for (i, x) in v.iter().enumerate() {
                        idx[i] = (x % 4) * (n / 4);
                    }
                }
            }
            idx
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gather2_matches_two_gathers(
        idx in idx_strategy(1024),
        mask in any::<u32>(),
    ) {
        let dev = Device::new(presets::gtx_titan());
        let a = dev.alloc((0..1024u32).collect::<Vec<_>>());
        let b = dev.alloc((0..1024).map(|i| i as f64 * 0.5).collect::<Vec<_>>());
        // Kernel closures are `Fn` — results come back through device
        // buffers (written full-mask so both launches charge alike).
        let out_a = dev.alloc_zeroed::<u32>(WARP);
        let out_b = dev.alloc_zeroed::<f64>(WARP);
        let r_fused = dev.launch("fused", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let (va, vb) = warp.gather2(&a, &b, &idx, mask);
                warp.write_coalesced(&out_a, 0, &va, u32::MAX);
                warp.write_coalesced(&out_b, 0, &vb, u32::MAX);
            });
        });
        let fused = (out_a.as_slice().to_vec(), out_b.as_slice().to_vec());
        let r_split = dev.launch("split", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let va = warp.gather(&a, &idx, mask);
                let vb = warp.gather(&b, &idx, mask);
                warp.write_coalesced(&out_a, 0, &va, u32::MAX);
                warp.write_coalesced(&out_b, 0, &vb, u32::MAX);
            });
        });
        let split = (out_a.as_slice().to_vec(), out_b.as_slice().to_vec());
        prop_assert_eq!(fused, split, "values");
        assert_identical(&r_fused, &r_split, "gather2 vs two gathers");
    }

    #[test]
    fn gather_grouped_matches_expanded_gather(
        g_shift in 0usize..=5,
        groups in proptest::collection::vec(0usize..512, WARP),
        live in 0usize..=WARP,
    ) {
        let n_groups = WARP >> g_shift;
        let mut group_idx = vec![0usize; n_groups];
        group_idx.copy_from_slice(&groups[..n_groups]);
        // Both the grouped fast-path shape (prefix of whole groups) and
        // ragged masks that force the expansion fallback.
        let mask = lane_mask(live);
        let dev = Device::new(presets::gtx_titan());
        let buf = dev.alloc((0..512u32).collect::<Vec<_>>());
        let out = dev.alloc_zeroed::<u32>(WARP);
        let r_grouped = dev.launch("grouped", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let v = warp.gather_grouped(&buf, &group_idx, g_shift, mask);
                warp.write_coalesced(&out, 0, &v, u32::MAX);
            });
        });
        let grouped = out.as_slice().to_vec();
        let idx: [usize; WARP] = std::array::from_fn(|l| group_idx[l >> g_shift]);
        let r_plain = dev.launch("plain", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let v = warp.gather(&buf, &idx, mask);
                warp.write_coalesced(&out, 0, &v, u32::MAX);
            });
        });
        let plain = out.as_slice().to_vec();
        // Inactive lanes of the grouped fast path broadcast their group's
        // value where plain gather leaves T::default(); only active lanes
        // are contractual.
        for l in 0..WARP {
            if mask >> l & 1 == 1 {
                prop_assert_eq!(grouped[l], plain[l], "lane {}", l);
            }
        }
        assert_identical(&r_grouped, &r_plain, "grouped vs expanded");
    }

    #[test]
    fn read_coalesced_matches_gather(
        base in 0usize..(4096 - WARP),
        mask in any::<u32>(),
    ) {
        let dev = Device::new(presets::gtx_titan());
        let buf = dev.alloc((0..4096).map(|i| i as f64).collect::<Vec<_>>());
        let out = dev.alloc_zeroed::<f64>(WARP);
        let r_fast = dev.launch("coalesced", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let v = warp.read_coalesced(&buf, base, mask);
                warp.write_coalesced(&out, 0, &v, u32::MAX);
            });
        });
        let fast = out.as_slice().to_vec();
        let mut idx = [0usize; WARP];
        for (l, slot) in idx.iter_mut().enumerate() {
            if mask >> l & 1 == 1 {
                *slot = base + l;
            }
        }
        let r_plain = dev.launch("gather", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let v = warp.gather(&buf, &idx, mask);
                warp.write_coalesced(&out, 0, &v, u32::MAX);
            });
        });
        let plain = out.as_slice().to_vec();
        prop_assert_eq!(fast, plain, "values");
        assert_identical(&r_fast, &r_plain, "read_coalesced vs gather");
    }

    #[test]
    fn scatter_matches_scalar_model(
        idx in idx_strategy(256),
        mask in any::<u32>(),
    ) {
        // Last-writer-wins at conflicting indices, untouched elsewhere.
        let dev = Device::new(presets::gtx_titan());
        let dst = dev.alloc_zeroed::<f64>(256);
        let vals: [f64; WARP] = std::array::from_fn(|l| l as f64 + 1.0);
        dev.launch("scatter", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                warp.scatter(&dst, &idx, &vals, mask);
            });
        });
        let mut want = vec![0f64; 256];
        for l in 0..WARP {
            if mask >> l & 1 == 1 {
                want[idx[l]] = vals[l];
            }
        }
        prop_assert_eq!(dst.as_slice(), &want[..]);
    }
}

/// Out-of-bounds active indices must still panic (the fast paths hoist
/// the check to the run maximum — it must not be skipped).
#[test]
#[should_panic(expected = "out of bounds")]
fn gather_oob_panics() {
    let dev = Device::new(presets::gtx_titan());
    let buf = dev.alloc(vec![0u32; 8]);
    let mut idx = [0usize; WARP];
    idx[17] = 8; // one past the end, unsorted position
    dev.launch("oob", 1, 32, &|blk| {
        blk.for_each_warp(&mut |warp| {
            warp.gather(&buf, &idx, u32::MAX);
        });
    });
}

#[test]
#[should_panic(expected = "out of bounds")]
fn scatter_oob_panics() {
    let dev = Device::new(presets::gtx_titan());
    let buf = dev.alloc(vec![0u32; 8]);
    let mut idx = [0usize; WARP];
    idx[3] = 1000;
    let vals = [1u32; WARP];
    dev.launch("oob", 1, 32, &|blk| {
        blk.for_each_warp(&mut |warp| {
            warp.scatter(&buf, &idx, &vals, u32::MAX);
        });
    });
}
