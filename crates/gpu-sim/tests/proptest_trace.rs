//! Trace-ledger accounting properties: for ANY kernel mix, device preset
//! and host worker count, the ledger's span counters must sum *exactly*
//! (bit-identical integer sums) to the merged [`RunReport`] the caller
//! assembles itself, and the recorded spans must be identical across
//! worker widths (tracing, like parallelism, is pure mechanism).

use gpu_sim::{lane_mask, presets, set_sim_threads, Device, DeviceConfig, RunReport, Span, WARP};
use proptest::prelude::*;
use std::sync::Mutex;

/// `set_sim_threads` is process-global; hold this in every test that
/// flips the width (the harness runs `#[test]` fns concurrently).
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn preset(which: u8) -> DeviceConfig {
    match which % 3 {
        0 => presets::gtx_titan(),
        1 => presets::gtx_580(),
        _ => presets::tesla_k10_single(),
    }
}

/// A traced scenario covering every span source: an H2D transfer, a
/// plain launch, a concurrent group (pooled on HyperQ devices, serial on
/// Fermi), a dynamic-parallelism parent where supported, and a D2H
/// readback. Returns the caller-merged report, the ledger's reconciled
/// total, and the span list.
fn traced_scenario(
    cfg: DeviceConfig,
    threads: usize,
    grid: usize,
    block_dim: usize,
) -> (RunReport, RunReport, Vec<Span>) {
    set_sim_threads(threads);
    let mut dev = Device::new(cfg);
    let ledger = dev.enable_tracing();
    let n = grid * block_dim;
    let src = dev.alloc((0..n).map(|i| (i % 53) as f64).collect::<Vec<_>>());
    let dst = dev.alloc_zeroed::<f64>(n);
    let acc = dev.alloc_zeroed::<f64>(4);

    let mut merged = RunReport::default();
    merged = merged.then(&dev.record_htod("upload", (n * 8) as u64));

    merged = merged.then(&dev.launch("plain", grid, block_dim, &|blk| {
        let bidx = blk.block_idx();
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let vals = warp.read_coalesced(&src, base, mask);
            let idx: [usize; WARP] = std::array::from_fn(|l| (base + l * 17 + bidx) % n);
            warp.gather_tex(&src, &idx, mask);
            warp.charge_alu(1);
            warp.write_coalesced(&dst, base, &vals, mask);
            let ones = [1.0f64; WARP];
            let tgt = [bidx % 4; WARP];
            warp.atomic_rmw(&acc, &tgt, &ones, mask, |a, b| a + b);
        });
    }));

    let mut group = dev.launch_group("grp");
    for (i, g) in [grid, grid.div_ceil(2)].into_iter().enumerate() {
        group.add(&format!("s{i}"), g, block_dim, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let base = warp.first_thread() % n;
                let mask = lane_mask(n - base);
                warp.read_coalesced(&src, base, mask);
            });
        });
    }
    merged = merged.then(&group.finish());

    if dev.config().has_dynamic_parallelism() {
        let out = dev.alloc_zeroed::<f64>(n.max(2 * WARP));
        let out_ref = &out;
        merged = merged.then(&dev.launch("dp_parent", grid.min(4), 64, &|blk| {
            blk.for_each_warp(&mut |warp| {
                if warp.warp_in_block() != 0 {
                    return;
                }
                warp.launch_child(2, 32, move |child| {
                    let cb = child.block_idx();
                    child.for_each_warp(&mut |cw| {
                        let vals = [3.0f64; WARP];
                        cw.write_coalesced(out_ref, cb * WARP, &vals, u32::MAX);
                    });
                });
            });
        }));
    }

    merged = merged.then(&dev.record_dtoh("readback", (n * 8) as u64));
    set_sim_threads(0);

    let total = ledger.reconcile().expect("ledger must reconcile");
    (merged, total, ledger.spans())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Span counters sum exactly to the caller-merged report, at any
    /// `ACSR_SIM_THREADS`-style worker width. (Times agree to round-off:
    /// a serial group merges stream times before the caller's fold, so
    /// the association order can differ by an ulp — counters cannot.)
    #[test]
    fn span_counters_reconcile_with_caller_report(
        which in 0u8..3,
        grid in 1usize..24,
        block_pow in 0u32..=2,
        threads in 1usize..=8,
    ) {
        let _guard = WIDTH_LOCK.lock().unwrap();
        let block_dim = 32usize << block_pow;
        let (merged, total, _) = traced_scenario(preset(which), threads, grid, block_dim);
        prop_assert_eq!(merged.counters, total.counters);
        prop_assert_eq!(merged.launches, total.launches);
        let rel = (merged.time_s - total.time_s).abs() / merged.time_s.max(1e-300);
        prop_assert!(rel < 1e-12, "time drift {rel:e}");
    }

    /// The recorded spans — names, shapes, SM attribution, counters and
    /// modeled times — are identical at every worker width.
    #[test]
    fn spans_are_identical_across_worker_widths(
        which in 0u8..3,
        grid in 1usize..24,
        threads in 2usize..=8,
    ) {
        let _guard = WIDTH_LOCK.lock().unwrap();
        let (_, seq_total, seq_spans) = traced_scenario(preset(which), 1, grid, 64);
        let (_, par_total, par_spans) = traced_scenario(preset(which), threads, grid, 64);
        prop_assert_eq!(seq_spans, par_spans);
        prop_assert_eq!(seq_total.counters, par_total.counters);
        prop_assert_eq!(seq_total.time_s.to_bits(), par_total.time_s.to_bits());
    }
}

/// The exported chrome-trace JSON is valid JSON and stable across
/// worker widths (byte-identical export for the same scenario).
#[test]
fn chrome_export_is_valid_and_width_stable() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let export = |threads: usize| {
        set_sim_threads(threads);
        let mut dev = Device::new(presets::gtx_titan());
        let ledger = dev.enable_tracing();
        let buf = dev.alloc(vec![1.0f64; 4096]);
        dev.launch("k", 8, 128, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let base = warp.first_thread() % 2048;
                warp.read_coalesced(&buf, base, u32::MAX);
            });
        });
        dev.record_dtoh("y_readback", 4096 * 8);
        set_sim_threads(0);
        ledger.chrome_trace_json()
    };
    let seq = export(1);
    serde_json::validate(&seq).expect("chrome trace must be valid JSON");
    for threads in [2, 8] {
        assert_eq!(seq, export(threads), "{threads} workers");
    }
}
