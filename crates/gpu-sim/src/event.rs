//! Discrete-event execution core: components, a shared `u64` cycle
//! clock, and a min-heap event queue.
//!
//! Everything that evolves over simulated time is a **component**: the
//! per-SM execution slices of a launch ([`crate::engine`]'s
//! `SmComponent`), the PCIe copy engine ([`PcieLink`]), and — one level
//! up — the device itself, which owns the clock the components share.
//! A component answers two questions:
//!
//! * [`Component::next_tick`] — at which base cycle does it next want to
//!   run (`None` = idle)?
//! * [`Component::tick`] — advance internal state to `now`; returns the
//!   number of cycles the tick consumed (0 for instantaneous events).
//!
//! The scheduler is a global min-heap keyed by `(cycle, component)`.
//! [`EventQueue::pop_frontier`] pops *every* event scheduled at the
//! minimum cycle at once: components that fire on the same cycle are
//! logically concurrent, and the engine may tick them on several host
//! workers. Determinism therefore cannot depend on intra-frontier
//! order — each component mutates only its own state, and all merges
//! happen in fixed component order afterwards. The [`set_tie_break`]
//! knob exists to *prove* that: flipping the frontier order must never
//! change a single bit of any report, and the cross-scheduler proptests
//! pin exactly this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU8, Ordering};

/// Identifies a component within one scheduler (e.g. an SM index).
pub type CompId = u32;

/// A participant in discrete-event execution (see module docs).
pub trait Component {
    /// Shared, read-only context handed to every [`Component::tick`]
    /// (the engine passes the current wave's work description).
    type Ctx<'w>
    where
        Self: 'w;

    /// Base cycle at which this component next wants to run.
    fn next_tick(&self) -> Option<u64>;

    /// Advance internal state to cycle `now`; returns the cycles the
    /// tick consumed (the scheduler uses the frontier maximum to place
    /// the next dependent event).
    fn tick<'w>(&'w mut self, now: u64, ctx: Self::Ctx<'w>) -> u64;
}

/// Order in which same-cycle events are handed out by
/// [`EventQueue::pop_frontier`]. Results must never depend on it; the
/// knob exists so tests can prove that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// Ascending component id (the default).
    Ascending,
    /// Descending component id (validation only).
    Descending,
}

static TIE_BREAK: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide frontier tie-break order (see [`TieBreak`]).
/// Simulation output is bit-identical either way — the determinism
/// proptests run both and compare.
pub fn set_tie_break(order: TieBreak) {
    TIE_BREAK.store(order as u8, Ordering::SeqCst);
}

/// The currently configured tie-break order.
pub fn tie_break() -> TieBreak {
    match TIE_BREAK.load(Ordering::SeqCst) {
        0 => TieBreak::Ascending,
        _ => TieBreak::Descending,
    }
}

/// Min-heap event queue over `(cycle, component)` pairs. The backing
/// storage is reusable across launches (see [`EventQueue::clear`]); an
/// arena-held queue makes scheduling allocation-free on the hot path.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, CompId)>>,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedule `comp` to tick at `cycle`. Scheduling the same component
    /// twice for one cycle is allowed (the frontier dedups).
    pub fn schedule(&mut self, cycle: u64, comp: CompId) {
        self.heap.push(Reverse((cycle, comp)));
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every scheduled event, keeping the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Cycle of the earliest scheduled event.
    pub fn peek_cycle(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _))| *t)
    }

    /// Pop every event scheduled at the minimum cycle into `frontier`
    /// (deduped, ordered per [`tie_break`]) and return that cycle.
    /// Components of one frontier are logically concurrent — callers may
    /// tick them in any order or in parallel.
    pub fn pop_frontier(&mut self, frontier: &mut Vec<CompId>) -> Option<u64> {
        frontier.clear();
        let Reverse((cycle, first)) = self.heap.pop()?;
        frontier.push(first);
        while let Some(&Reverse((t, comp))) = self.heap.peek() {
            if t != cycle {
                break;
            }
            self.heap.pop();
            if !frontier.contains(&comp) {
                frontier.push(comp);
            }
        }
        // The heap yields ascending ids for equal cycles only by heap
        // accident; normalize, then apply the configured tie-break.
        frontier.sort_unstable();
        if tie_break() == TieBreak::Descending {
            frontier.reverse();
        }
        Some(cycle)
    }
}

/// The PCIe copy engine as a component: transfers occupy the link for a
/// modeled number of cycles and retire (in FIFO order) when the device
/// clock passes their completion cycle. The engine's
/// [`crate::Device::record_htod`]/[`crate::Device::record_dtoh`] push
/// completion events onto the device timeline's queue; `tick` retires
/// them.
#[derive(Debug, Default)]
pub struct PcieLink {
    /// Cycle at which the link finishes its last queued transfer.
    busy_until: u64,
    /// Transfers queued but not yet retired by a tick.
    in_flight: u32,
    /// Transfers retired so far.
    retired: u64,
}

impl PcieLink {
    /// Occupy the link for `cycles` starting no earlier than `now`;
    /// returns the completion cycle (the link is FIFO, so a transfer
    /// issued while busy starts when the previous one finishes).
    pub fn begin_transfer(&mut self, now: u64, cycles: u64) -> u64 {
        let start = self.busy_until.max(now);
        self.busy_until = start + cycles;
        self.in_flight += 1;
        self.busy_until
    }

    /// Transfers begun and not yet retired.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Transfers retired by past ticks.
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

impl Component for PcieLink {
    type Ctx<'w> = ();

    fn next_tick(&self) -> Option<u64> {
        (self.in_flight > 0).then_some(self.busy_until)
    }

    fn tick(&mut self, now: u64, _ctx: ()) -> u64 {
        if now >= self.busy_until && self.in_flight > 0 {
            self.retired += u64::from(self.in_flight);
            self.in_flight = 0;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_pops_all_events_at_min_cycle() {
        let mut q = EventQueue::new();
        q.schedule(5, 2);
        q.schedule(3, 7);
        q.schedule(3, 1);
        q.schedule(3, 7); // duplicate
        let mut f = Vec::new();
        assert_eq!(q.pop_frontier(&mut f), Some(3));
        assert_eq!(f, vec![1, 7]);
        assert_eq!(q.pop_frontier(&mut f), Some(5));
        assert_eq!(f, vec![2]);
        assert_eq!(q.pop_frontier(&mut f), None);
        assert!(f.is_empty());
    }

    #[test]
    fn tie_break_flips_frontier_order_only() {
        let mut q = EventQueue::new();
        for id in [4u32, 0, 9] {
            q.schedule(1, id);
        }
        set_tie_break(TieBreak::Descending);
        let mut f = Vec::new();
        q.pop_frontier(&mut f);
        set_tie_break(TieBreak::Ascending);
        assert_eq!(f, vec![9, 4, 0]);
        let mut q = EventQueue::new();
        for id in [4u32, 0, 9] {
            q.schedule(1, id);
        }
        q.pop_frontier(&mut f);
        assert_eq!(f, vec![0, 4, 9]);
    }

    #[test]
    fn clear_keeps_queue_usable() {
        let mut q = EventQueue::new();
        q.schedule(1, 1);
        q.clear();
        assert!(q.is_empty());
        q.schedule(2, 3);
        assert_eq!(q.peek_cycle(), Some(2));
    }

    #[test]
    fn pcie_link_serializes_transfers_and_retires() {
        let mut link = PcieLink::default();
        let done_a = link.begin_transfer(100, 50);
        let done_b = link.begin_transfer(120, 30); // queues behind a
        assert_eq!(done_a, 150);
        assert_eq!(done_b, 180);
        assert_eq!(link.in_flight(), 2);
        assert_eq!(link.next_tick(), Some(180));
        link.tick(160, ()); // too early: nothing retires
        assert_eq!(link.in_flight(), 2);
        link.tick(180, ());
        assert_eq!(link.in_flight(), 0);
        assert_eq!(link.retired(), 2);
        assert_eq!(link.next_tick(), None);
    }
}
