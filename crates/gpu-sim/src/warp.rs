//! Warp execution context — the API simulated kernels are written against.
//!
//! A kernel observes the machine the way CUDA device code does, one warp
//! at a time: 32 lanes executing in lockstep under an active mask. Every
//! method both *performs* the operation on host data (functional
//! correctness) and *charges* the timing model (issue slots, DRAM
//! transactions after coalescing, texture probes, critical-path latency).
//!
//! The key SIMT property the model preserves: **cost is per warp
//! instruction, not per active lane**. A warp with one active lane pays
//! the same issue slot as a full warp — that waste is precisely the
//! divergence ACSR's binning removes.
//!
//! All model mutations go to the warp's `ShardState` — the per-SM slice
//! of the launch this warp's block belongs to — so warps of blocks on
//! different SMs can execute on different host threads without sharing
//! any mutable state (see the engine module's sharding docs). Buffer
//! writes go through `&DeviceBuffer` interior mutability under the kernel
//! data contract; cross-shard read-modify-write races are prevented by
//! serializing [`WarpCtx::atomic_rmw`] under a process-wide lock.

use crate::buffer::{DevCopy, DeviceBuffer};
use crate::config::DeviceConfig;
use crate::engine::ShardState;
use std::sync::Mutex;

/// Lanes per warp (fixed at 32 on every NVIDIA GPU the paper uses).
pub const WARP: usize = 32;

/// All 32 lanes active.
pub const FULL_MASK: u32 = u32::MAX;

/// Serializes atomic read-modify-write sequences across host workers,
/// mirroring the L2 atomic unit. Counter and timing charges stay
/// shard-local; only the memory update itself is serialized, so the
/// final value is *some* association order of the contributions —
/// exactly the guarantee CUDA atomics give.
static ATOMIC_LOCK: Mutex<()> = Mutex::new(());

/// Mask with the first `n` lanes active (`n ≥ 32` ⇒ full mask).
#[inline]
pub fn lane_mask(n: usize) -> u32 {
    if n >= WARP {
        FULL_MASK
    } else {
        (1u32 << n) - 1
    }
}

/// Execution context of one warp inside one block.
pub struct WarpCtx<'r, 'd, 'k> {
    pub(crate) shard: &'r mut ShardState,
    /// Child grids queued for the launch's next wave (see the engine
    /// module's sharding docs).
    pub(crate) pending: &'r mut Vec<crate::engine::PendingChild<'k>>,
    pub(crate) cfg: &'d DeviceConfig,
    pub(crate) block_idx: usize,
    pub(crate) warp_in_block: usize,
    pub(crate) block_dim: usize,
    pub(crate) sm: usize,
    /// Local issue-slot count, flushed to the SM on drop.
    pub(crate) instr: u64,
    /// Local critical-path cycles, flushed (max) to the SM on drop.
    pub(crate) crit: u64,
    /// Local active-lane count (`lane_ops`), flushed on drop.
    pub(crate) lanes: u64,
    /// `ceil(mem_latency_cycles / mlp)`, precomputed by the engine so
    /// per-access charges never divide.
    pub(crate) mem_lat: u64,
    /// `ceil(tex_hit_latency_cycles / mlp)`, precomputed likewise.
    pub(crate) tex_hit_lat: u64,
}

impl<'r, 'd, 'k> WarpCtx<'r, 'd, 'k> {
    /// Index of this warp within its block.
    pub fn warp_in_block(&self) -> usize {
        self.warp_in_block
    }

    /// Block index in the grid.
    pub fn block_idx(&self) -> usize {
        self.block_idx
    }

    /// Global warp id (`block_idx * warps_per_block + warp_in_block`).
    pub fn global_warp_id(&self) -> usize {
        self.block_idx * self.block_dim.div_ceil(WARP) + self.warp_in_block
    }

    /// Global thread id of lane 0.
    pub fn first_thread(&self) -> usize {
        self.block_idx * self.block_dim + self.warp_in_block * WARP
    }

    /// Number of threads of this warp that exist in the block (the last
    /// warp of a non-multiple-of-32 block is partial).
    pub fn live_lanes(&self) -> usize {
        (self.block_dim - (self.warp_in_block * WARP).min(self.block_dim)).min(WARP)
    }

    /// Charge `n` ALU/control warp instructions. Modeled as uniform
    /// (full-warp) work: every lane counts active. Divergent arithmetic
    /// should go through [`WarpCtx::charge_fma`] instead so the wasted
    /// lanes show up in the profiler's warp execution efficiency.
    #[inline]
    pub fn charge_alu(&mut self, n: u64) {
        self.instr += n;
        self.crit += n;
        self.lanes += n * WARP as u64;
    }

    /// Charge one fused-multiply-add warp instruction executing under
    /// `mask`: one issue slot (identical timing to `charge_alu(1)`),
    /// `2 × active lanes` useful flops, and the active-lane histogram /
    /// `lane_ops` accounting the profiler derives divergence from.
    #[inline]
    pub fn charge_fma(&mut self, mask: u32) {
        self.instr += 1;
        self.crit += 1;
        let n_active = u64::from(mask.count_ones());
        self.lanes += n_active;
        self.shard.counters.flops += 2 * n_active;
        self.note_lanes(n_active);
    }

    /// Charge `n` useful floating-point operations (counter-only: no
    /// issue slots, no time — pair with [`WarpCtx::charge_alu`] for the
    /// instructions that perform them).
    #[inline]
    pub fn charge_flops(&mut self, n: u64) {
        self.shard.counters.flops += n;
    }

    /// Bump the active-lane divergence histogram for a masked warp
    /// operation with `n_active` lanes (no-op for an all-inactive mask).
    #[inline]
    fn note_lanes(&mut self, n_active: u64) {
        if n_active > 0 {
            self.shard.counters.lane_hist[crate::counters::lane_hist_bin(n_active)] += 1;
        }
    }

    /// Gather `buf[idx[i]]` for every active lane. One warp instruction;
    /// DRAM transactions per distinct segment touched. Inactive lanes
    /// return `T::default()` and their `idx` entries are ignored.
    #[inline]
    pub fn gather<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[usize; WARP],
        mask: u32,
    ) -> [T; WARP] {
        let mut out = [T::default(); WARP];
        let txn = self.cfg.dram_transaction_bytes as u64;
        let elem = T::SIZE as u64;
        // Fast path: scan coalescing structure directly in index space
        // (see `idx_shift`). For a power-of-two element size the element
        // granule `elem.next_power_of_two()` IS `elem`, so "distinct
        // elements" is the shift-0 segment count of the index run.
        if let Some(sa) = idx_shift(buf.base_addr(), elem, txn) {
            let full = mask == FULL_MASK;
            let mut lanes = [0usize; WARP];
            let n_active = if full {
                WARP
            } else {
                compact_idx(idx, mask, &mut lanes)
            };
            let scan = if full {
                scan_run(idx, sa, 0)
            } else {
                scan_run(&lanes[..n_active], sa, 0)
            };
            let (segs, distinct_elems) = if scan.sorted {
                (scan.segs_a, scan.segs_b)
            } else {
                if full {
                    lanes = *idx;
                }
                let run = &mut lanes[..n_active];
                sort_run(run);
                count_segments2(run, sa, 0)
            };
            if n_active > 0 {
                // One bounds check covers every active lane: the run's
                // maximum is its last element — of the original run when
                // it scanned sorted, of the sorted copy otherwise.
                let max = if scan.sorted && full {
                    idx[WARP - 1]
                } else {
                    lanes[n_active - 1]
                };
                assert!(
                    max < buf.len(),
                    "gather index {max} out of bounds (len {})",
                    buf.len()
                );
                // SAFETY: every active index is ≤ `max`, checked above;
                // inactive lanes read index 0 (in bounds: len > max ≥ 0)
                // and discard it — a branchless select, not a branch per
                // lane, so the loop vectorizes to a masked gather.
                unsafe {
                    if full {
                        for lane in 0..WARP {
                            out[lane] = buf.get_unchecked(idx[lane]);
                        }
                    } else {
                        for lane in 0..WARP {
                            let active = mask >> lane & 1 == 1;
                            let v = buf.get_unchecked(if active { idx[lane] } else { 0 });
                            out[lane] = if active { v } else { T::default() };
                        }
                    }
                }
            }
            let ideal = ideal_from_distinct(n_active, distinct_elems, elem, txn);
            self.charge_mem_read(n_active as u64, segs, ideal, txn);
            return out;
        }
        // General path (odd element sizes / unaligned bases): materialize
        // and scan raw addresses.
        let mut addrs = [0u64; WARP];
        let sa = txn.trailing_zeros();
        let sb = elem.next_power_of_two().max(1).trailing_zeros();
        let scan = collect_gather(buf, idx, mask, &mut out, &mut addrs, sa, sb);
        let (segs, distinct_elems) = if scan.sorted {
            (scan.segs_a, scan.segs_b)
        } else {
            let active = &mut addrs[..scan.n_active];
            sort_run(active);
            count_segments2(active, sa, sb)
        };
        let ideal = ideal_from_distinct(scan.n_active, distinct_elems, elem, txn);
        self.charge_mem_read(scan.n_active as u64, segs, ideal, txn);
        out
    }

    /// Gather where each *group* of `1 << g_shift` consecutive lanes
    /// reads the same buffer index: lane `l` reads
    /// `group_idx[l >> g_shift]` (the row-bounds fetch of every
    /// group-per-row kernel). Values, counters, and timing are
    /// bit-identical to [`WarpCtx::gather`] with the expanded per-lane
    /// index array; the grouped form skips the 32-lane coalescing scan —
    /// duplicating each element of a run `1 << g_shift` times changes
    /// neither its sortedness nor which granularity boundaries it
    /// crosses, so the expanded run's segment counts equal the group
    /// run's, and each buffer element is loaded once and broadcast.
    #[inline]
    pub fn gather_grouped<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        group_idx: &[usize],
        g_shift: usize,
        mask: u32,
    ) -> [T; WARP] {
        debug_assert_eq!(group_idx.len() << g_shift, WARP);
        let txn = self.cfg.dram_transaction_bytes as u64;
        let elem = T::SIZE as u64;
        // Fast path needs: index-space scanning available, the active
        // lanes a prefix of whole groups (so the compacted run is the
        // first `n_groups` group indices expanded), and that prefix
        // sorted.
        let n_active = mask.count_ones() as usize;
        let n_groups = n_active >> g_shift;
        if mask == lane_mask(n_active) && n_groups << g_shift == n_active {
            if let Some(sa) = idx_shift(buf.base_addr(), elem, txn) {
                let groups = &group_idx[..n_groups];
                let scan = scan_run(groups, sa, 0);
                if scan.sorted {
                    let mut out = [T::default(); WARP];
                    if n_groups > 0 {
                        let max = groups[n_groups - 1];
                        assert!(
                            max < buf.len(),
                            "gather index {max} out of bounds (len {})",
                            buf.len()
                        );
                        for (g, &i) in groups.iter().enumerate() {
                            // SAFETY: `i ≤ max < buf.len()` (sorted run).
                            let v = unsafe { buf.get_unchecked(i) };
                            out[g << g_shift..(g + 1) << g_shift].fill(v);
                        }
                    }
                    // Each expanded element duplicates its group's index,
                    // so boundaries (and the distinct count) are exactly
                    // the group run's.
                    let ideal = ideal_from_distinct(n_active, scan.segs_b, elem, txn);
                    self.charge_mem_read(n_active as u64, scan.segs_a, ideal, txn);
                    return out;
                }
            }
        }
        // General shape: expand and take the ordinary gather path.
        let mut idx = [0usize; WARP];
        for (lane, slot) in idx.iter_mut().enumerate() {
            *slot = group_idx[lane >> g_shift];
        }
        self.gather(buf, &idx, mask)
    }

    /// Fused gather of two buffers at the *same* indices — the common
    /// "col_indices + values at position k" pattern of every CSR-style
    /// kernel. Counters and timing are bit-identical to
    /// `(self.gather(buf_a, idx, mask), self.gather(buf_b, idx, mask))`;
    /// fusing merely shares the index compaction and coalescing scan
    /// between the two warp instructions.
    #[inline]
    pub fn gather2<A: DevCopy, B: DevCopy>(
        &mut self,
        buf_a: &DeviceBuffer<A>,
        buf_b: &DeviceBuffer<B>,
        idx: &[usize; WARP],
        mask: u32,
    ) -> ([A; WARP], [B; WARP]) {
        let txn = self.cfg.dram_transaction_bytes as u64;
        let ea = A::SIZE as u64;
        let eb = B::SIZE as u64;
        let (Some(sa), Some(sb)) = (
            idx_shift(buf_a.base_addr(), ea, txn),
            idx_shift(buf_b.base_addr(), eb, txn),
        ) else {
            return (self.gather(buf_a, idx, mask), self.gather(buf_b, idx, mask));
        };
        let mut out_a = [A::default(); WARP];
        let mut out_b = [B::default(); WARP];
        let full = mask == FULL_MASK;
        let mut lanes = [0usize; WARP];
        let n_active = if full {
            WARP
        } else {
            compact_idx(idx, mask, &mut lanes)
        };
        let scan = if full {
            scan_run3(idx, sa, sb)
        } else {
            scan_run3(&lanes[..n_active], sa, sb)
        };
        let (segs_a, segs_b, distinct) = if scan.sorted {
            (scan.segs_a, scan.segs_b, scan.distinct)
        } else {
            if full {
                lanes = *idx;
            }
            let run = &mut lanes[..n_active];
            sort_run(run);
            let (a, b) = count_segments2(run, sa, sb);
            let (d, _) = count_segments2(run, 0, 0);
            (a, b, d)
        };
        if n_active > 0 {
            // One bounds check per buffer: the run's maximum is its last
            // element — of the original run when it scanned sorted, of
            // the sorted copy otherwise.
            let max = if scan.sorted && full {
                idx[WARP - 1]
            } else {
                lanes[n_active - 1]
            };
            assert!(
                max < buf_a.len() && max < buf_b.len(),
                "gather index {max} out of bounds (lens {}, {})",
                buf_a.len(),
                buf_b.len()
            );
            // SAFETY: every active index is ≤ `max`, checked above;
            // inactive lanes read index 0 (in bounds) and discard it —
            // branchless select, as in `gather`.
            unsafe {
                if full {
                    for lane in 0..WARP {
                        out_a[lane] = buf_a.get_unchecked(idx[lane]);
                        out_b[lane] = buf_b.get_unchecked(idx[lane]);
                    }
                } else {
                    for lane in 0..WARP {
                        let active = mask >> lane & 1 == 1;
                        let j = if active { idx[lane] } else { 0 };
                        let va = buf_a.get_unchecked(j);
                        let vb = buf_b.get_unchecked(j);
                        out_a[lane] = if active { va } else { A::default() };
                        out_b[lane] = if active { vb } else { B::default() };
                    }
                }
            }
        }
        self.charge_mem_read(
            n_active as u64,
            segs_a,
            ideal_from_distinct(n_active, distinct, ea, txn),
            txn,
        );
        self.charge_mem_read(
            n_active as u64,
            segs_b,
            ideal_from_distinct(n_active, distinct, eb, txn),
            txn,
        );
        (out_a, out_b)
    }

    /// Gather through the texture / read-only cache path (the paper binds
    /// `x` to texture memory). Hits stay on chip; misses pay DRAM at
    /// cache-line granularity.
    #[inline]
    pub fn gather_tex<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[usize; WARP],
        mask: u32,
    ) -> [T; WARP] {
        let mut out = [T::default(); WARP];
        let line = self.cfg.tex_line_bytes as u64;
        let shift = line.trailing_zeros();
        let elem = T::SIZE as u64;
        let base = buf.base_addr();
        // Fast path: dedup lines in index space (see `idx_shift`); the
        // probed byte address of an index-space line id `li` is
        // `base + (li << shift)` — identical to the address-space
        // `l << shift` because the base is line-aligned.
        if let Some(ls) = idx_shift(base, elem, line) {
            let full = mask == FULL_MASK;
            let mut lanes = [0usize; WARP];
            let n_active = if full {
                WARP
            } else {
                compact_idx(idx, mask, &mut lanes)
            };
            let sorted = scan_run(if full { idx } else { &lanes[..n_active] }, ls, ls).sorted;
            if !sorted {
                if full {
                    lanes = *idx;
                }
                sort_run(&mut lanes[..n_active]);
            }
            if n_active > 0 {
                // One bounds check on the run's maximum — last element of
                // the original run if sorted, of the sorted copy if not.
                let max = if sorted && full {
                    idx[WARP - 1]
                } else {
                    lanes[n_active - 1]
                };
                assert!(
                    max < buf.len(),
                    "gather index {max} out of bounds (len {})",
                    buf.len()
                );
                // SAFETY: every active index is ≤ `max`, checked above;
                // inactive lanes read index 0 (in bounds) and discard it —
                // branchless select, as in `gather`.
                unsafe {
                    if full {
                        for lane in 0..WARP {
                            out[lane] = buf.get_unchecked(idx[lane]);
                        }
                    } else {
                        for lane in 0..WARP {
                            let active = mask >> lane & 1 == 1;
                            let v = buf.get_unchecked(if active { idx[lane] } else { 0 });
                            out[lane] = if active { v } else { T::default() };
                        }
                    }
                }
            }
            let run: &[usize] = if sorted && full {
                &idx[..]
            } else {
                &lanes[..n_active]
            };
            let (mut hits, mut misses) = (0u64, 0u64);
            if n_active > 0 {
                let cache = self.shard.cache_mut(self.cfg);
                // Probe each distinct line once, in ascending line order —
                // the same sequence the compacting dedup used to produce,
                // so the cache state stream is unchanged. The probed byte
                // address is `base + (li << shift)`, whose line id is
                // `(base >> shift) + li` (base is line-aligned).
                let base_line = base >> shift;
                let mut prev_line = usize::MAX;
                for &i in run {
                    let li = i >> ls;
                    if li == prev_line {
                        continue;
                    }
                    prev_line = li;
                    if cache.access_line(base_line + li as u64) {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                }
            }
            self.charge_tex(n_active as u64, hits, misses, line);
            return out;
        }
        // General path: materialize and scan raw addresses.
        let mut addrs = [0u64; WARP];
        let scan = collect_gather(buf, idx, mask, &mut out, &mut addrs, shift, shift);
        let n_active = scan.n_active;
        let active = &mut addrs[..n_active];
        if !scan.sorted {
            sort_run(active);
        }
        let (mut hits, mut misses) = (0u64, 0u64);
        if n_active > 0 {
            let cache = self.shard.cache_mut(self.cfg);
            let mut prev_line = u64::MAX;
            for &a in active.iter() {
                let l = a >> shift;
                if l == prev_line {
                    continue;
                }
                prev_line = l;
                if cache.access(l << shift) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        self.charge_tex(n_active as u64, hits, misses, line);
        out
    }

    /// Shared accounting tail of the texture gather paths.
    #[inline]
    fn charge_tex(&mut self, n_active: u64, hits: u64, misses: u64, line: u64) {
        self.instr += 1;
        self.lanes += n_active;
        self.note_lanes(n_active);
        self.shard.counters.tex_hits += hits;
        self.shard.counters.tex_misses += misses;
        self.shard.counters.dram_read_bytes += misses * line;
        self.shard.counters.transactions += misses;
        self.crit += if misses > 0 {
            self.mem_lat
        } else {
            self.tex_hit_lat
        };
    }

    /// Lane `i` reads `buf[base + i]` (the canonical coalesced pattern).
    pub fn read_coalesced<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        base: usize,
        mask: u32,
    ) -> [T; WARP] {
        let txn = self.cfg.dram_transaction_bytes as u64;
        let elem = T::SIZE as u64;
        // Full-mask fast path: `base..base+32` is a sorted run of 32
        // distinct consecutive indices, so the coalescing scan a `gather`
        // would run collapses to closed forms — consecutive indices have
        // consecutive segment ids, so the segment count is just the id
        // span, and "distinct elements" is exactly 32.
        if mask == FULL_MASK {
            if let Some(sa) = idx_shift(buf.base_addr(), elem, txn) {
                let max = base + WARP - 1;
                assert!(
                    max < buf.len(),
                    "gather index {max} out of bounds (len {})",
                    buf.len()
                );
                let mut out = [T::default(); WARP];
                // SAFETY: every index read is ≤ `max`, checked above.
                unsafe {
                    for (lane, slot) in out.iter_mut().enumerate() {
                        *slot = buf.get_unchecked(base + lane);
                    }
                }
                let segs = ((max >> sa) - (base >> sa) + 1) as u64;
                let ideal = ideal_from_distinct(WARP, WARP as u64, elem, txn);
                self.charge_mem_read(WARP as u64, segs, ideal, txn);
                return out;
            }
        }
        let mut idx = [0usize; WARP];
        for (lane, slot) in idx.iter_mut().enumerate() {
            if mask >> lane & 1 == 1 {
                *slot = base + lane;
            }
        }
        self.gather(buf, &idx, mask)
    }

    /// Lane `i` writes `vals[i]` to `buf[base + i]`.
    pub fn write_coalesced<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        base: usize,
        vals: &[T; WARP],
        mask: u32,
    ) {
        let mut idx = [0usize; WARP];
        for (lane, slot) in idx.iter_mut().enumerate() {
            if mask >> lane & 1 == 1 {
                *slot = base + lane;
            }
        }
        self.scatter(buf, &idx, vals, mask);
    }

    /// Scatter `vals[i]` to `buf[idx[i]]` for active lanes. Conflicting
    /// lanes (same index) resolve to the highest active lane, matching
    /// CUDA's undefined-but-last-writer-wins behaviour in practice.
    #[inline]
    pub fn scatter<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[usize; WARP],
        vals: &[T; WARP],
        mask: u32,
    ) {
        let txn = self.cfg.dram_transaction_bytes as u64;
        let elem = T::SIZE as u64;
        // Fast path: index-space scan, as in `gather`.
        if let Some(sa) = idx_shift(buf.base_addr(), elem, txn) {
            let full = mask == FULL_MASK;
            let mut lanes = [0usize; WARP];
            let n_active = if full {
                WARP
            } else {
                compact_idx(idx, mask, &mut lanes)
            };
            let scan = if full {
                scan_run(idx, sa, 0)
            } else {
                scan_run(&lanes[..n_active], sa, 0)
            };
            let (segs, distinct_elems) = if scan.sorted {
                (scan.segs_a, scan.segs_b)
            } else {
                if full {
                    lanes = *idx;
                }
                let run = &mut lanes[..n_active];
                sort_run(run);
                count_segments2(run, sa, 0)
            };
            if n_active > 0 {
                // One bounds check on the run's maximum, as in `gather`.
                let max = if scan.sorted && full {
                    idx[WARP - 1]
                } else {
                    lanes[n_active - 1]
                };
                assert!(
                    max < buf.len(),
                    "scatter index {max} out of bounds (len {})",
                    buf.len()
                );
                // SAFETY: every active index is ≤ `max`, checked above.
                // Writes run in ascending lane order, preserving the
                // last-writer-wins conflict resolution.
                unsafe {
                    if full {
                        for lane in 0..WARP {
                            buf.set_unchecked(idx[lane], vals[lane]);
                        }
                    } else {
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            m &= m - 1;
                            buf.set_unchecked(idx[lane], vals[lane]);
                        }
                    }
                }
            }
            let ideal = ideal_from_distinct(n_active, distinct_elems, elem, txn);
            self.charge_mem_write(n_active as u64, segs, ideal, txn);
            return;
        }
        // General path: materialize and scan raw addresses.
        let mut addrs = [0u64; WARP];
        let sa = txn.trailing_zeros();
        let sb = elem.next_power_of_two().max(1).trailing_zeros();
        let n = if mask == FULL_MASK {
            for lane in 0..WARP {
                buf.set(idx[lane], vals[lane]);
                addrs[lane] = buf.addr_of(idx[lane]);
            }
            WARP
        } else {
            let mut n = 0usize;
            let mut m = mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                buf.set(idx[lane], vals[lane]);
                addrs[n] = buf.addr_of(idx[lane]);
                n += 1;
            }
            n
        };
        let scan = scan_run(&addrs[..n], sa, sb);
        let (segs, distinct_elems) = if scan.sorted {
            (scan.segs_a, scan.segs_b)
        } else {
            let active = &mut addrs[..scan.n_active];
            sort_run(active);
            count_segments2(active, sa, sb)
        };
        let ideal = ideal_from_distinct(scan.n_active, distinct_elems, elem, txn);
        self.charge_mem_write(scan.n_active as u64, segs, ideal, txn);
    }

    /// Atomic read-modify-write: `buf[idx[i]] = op(buf[idx[i]], vals[i])`.
    /// Lanes hitting the same address serialize (charged as extra passes),
    /// and the result is the correct full combination. Across host
    /// workers, the whole warp-level sequence holds a process-wide lock,
    /// so concurrent shards never tear an update — their application
    /// *order* is unspecified, as on hardware.
    pub fn atomic_rmw<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[usize; WARP],
        vals: &[T; WARP],
        mask: u32,
        op: impl Fn(T, T) -> T,
    ) {
        let mut seen: [(usize, u32); WARP] = [(usize::MAX, 0); WARP];
        let mut n_distinct = 0usize;
        let mut n_active = 0u64;
        {
            let _serialize = ATOMIC_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            for lane in 0..WARP {
                if mask >> lane & 1 == 1 {
                    n_active += 1;
                    let cur = buf.get(idx[lane]);
                    buf.set(idx[lane], op(cur, vals[lane]));
                    match seen[..n_distinct].iter_mut().find(|(a, _)| *a == idx[lane]) {
                        Some((_, c)) => *c += 1,
                        None => {
                            seen[n_distinct] = (idx[lane], 1);
                            n_distinct += 1;
                        }
                    }
                }
            }
        }
        if n_active == 0 {
            return;
        }
        let max_mult = seen[..n_distinct]
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(1) as u64;
        self.instr += max_mult;
        self.lanes += n_active;
        self.note_lanes(n_active);
        self.shard.counters.atomic_ops += n_active;
        self.shard.counters.atomic_conflicts += (max_mult - 1) * n_distinct as u64;
        // atomics resolve in L2 at 32B granularity
        self.shard.counters.transactions += n_distinct as u64;
        self.shard.counters.dram_read_bytes += n_distinct as u64 * 32;
        self.shard.counters.dram_write_bytes += n_distinct as u64 * 32;
        self.crit += max_mult * self.cfg.atomic_serialize_cycles + self.mem_lat;
    }

    /// `__shfl_down_sync`: lane `i` receives lane `i + delta`'s value
    /// (its own when the source lane is out of range), one instruction.
    pub fn shfl_down<T: DevCopy>(&mut self, vals: &[T; WARP], delta: usize) -> [T; WARP] {
        self.charge_alu(1);
        let mut out = *vals;
        for lane in 0..WARP {
            if lane + delta < WARP {
                out[lane] = vals[lane + delta];
            }
        }
        out
    }

    /// Tree-reduce (+) within independent segments of `width` lanes
    /// (`width` must be a power of two ≤ 32). After the call, the first
    /// lane of each segment holds that segment's sum. Charges
    /// `log2(width)` shuffle instructions plus the adds — the intra-warp
    /// reduction of the paper's Algorithm 2.
    pub fn segmented_reduce_sum<T: DevCopy + std::ops::Add<Output = T>>(
        &mut self,
        vals: &[T; WARP],
        width: usize,
    ) -> [T; WARP] {
        assert!(
            width.is_power_of_two() && width <= WARP,
            "segment width must be a power of two ≤ 32"
        );
        let mut cur = *vals;
        let mut delta = width / 2;
        let mut rounds = 0u64;
        while delta > 0 {
            // Every combining lane reads `lane + delta`, a lane written
            // *later* in ascending order — so all reads of a round see
            // the round's input values, and the round is a pure map over
            // the snapshot `prev`. Working from an explicit snapshot
            // computes exactly what the shuffle-copy + masked add pair
            // did, and frees the compiler from the in-place aliasing
            // (the round vectorizes). The combining lanes of each round
            // are the first `width - delta` of every segment.
            let prev = cur;
            for seg in (0..WARP).step_by(width) {
                for lane in seg..seg + width - delta {
                    cur[lane] = prev[lane] + prev[lane + delta];
                }
            }
            delta /= 2;
            rounds += 1;
        }
        // One shuffle + one add warp instruction per round, charged in a
        // single call (charge_alu(2) per round sums to the same counters).
        self.charge_alu(2 * rounds);
        cur
    }

    /// `__ballot_sync`: mask of lanes whose predicate is true.
    pub fn ballot(&mut self, preds: &[bool; WARP], mask: u32) -> u32 {
        self.charge_alu(1);
        let mut out = 0u32;
        for (lane, &p) in preds.iter().enumerate() {
            if mask >> lane & 1 == 1 && p {
                out |= 1 << lane;
            }
        }
        out
    }

    /// Launch a child grid from this warp (dynamic parallelism,
    /// Algorithm 3). Panics on devices below compute capability 3.5,
    /// matching the hardware constraint the paper works around on the
    /// GTX 580 and K10.
    ///
    /// The child grid is queued and executes after the parent grid's
    /// blocks drain, mirroring the CUDA rule that a child grid is only
    /// guaranteed complete once the parent synchronizes. Its blocks are
    /// attributed round-robin across SMs starting at the shard's private
    /// launch sequence, and each runs on the shard of its attributed SM —
    /// see the engine module's sharding docs.
    pub fn launch_child<F>(&mut self, grid_blocks: usize, block_dim: usize, kernel: F)
    where
        F: for<'x, 'y> Fn(&mut crate::engine::BlockCtx<'x, 'y, 'k>) + Send + Sync + 'k,
    {
        assert!(
            self.cfg.has_dynamic_parallelism(),
            "device '{}' (cc {}.{}) does not support dynamic parallelism",
            self.cfg.name,
            self.cfg.compute_capability.0,
            self.cfg.compute_capability.1
        );
        assert!(
            block_dim > 0 && block_dim <= 1024,
            "block_dim {block_dim} out of range"
        );
        self.charge_alu(2); // launch setup on the parent thread
        self.shard.counters.child_launches += 1;
        self.shard.child_seq += 1;
        self.pending.push(crate::engine::PendingChild {
            seq: self.shard.child_seq,
            grid_blocks,
            block_dim,
            kernel: Box::new(kernel),
        });
    }

    fn charge_mem_read(&mut self, n_active: u64, segments: u64, ideal: u64, txn_bytes: u64) {
        self.instr += 1;
        self.lanes += n_active;
        self.note_lanes(n_active);
        self.shard.counters.mem_requests += 1;
        self.shard.counters.mem_transactions += segments;
        self.shard.counters.min_transactions += ideal;
        self.shard.counters.transactions += segments;
        self.shard.counters.dram_read_bytes += segments * txn_bytes;
        self.crit += self.mem_lat;
    }

    fn charge_mem_write(&mut self, n_active: u64, segments: u64, ideal: u64, txn_bytes: u64) {
        self.instr += 1;
        self.lanes += n_active;
        self.note_lanes(n_active);
        self.shard.counters.mem_requests += 1;
        self.shard.counters.mem_transactions += segments;
        self.shard.counters.min_transactions += ideal;
        self.shard.counters.transactions += segments;
        self.shard.counters.dram_write_bytes += segments * txn_bytes;
        // writes retire through the store queue; they cost issue + a small
        // fraction of latency on the critical path
        self.crit += 4;
    }
}

impl Drop for WarpCtx<'_, '_, '_> {
    fn drop(&mut self) {
        self.shard.sm_instr[self.sm] += self.instr;
        if self.crit > self.shard.sm_crit[self.sm] {
            self.shard.sm_crit[self.sm] = self.crit;
        }
        self.shard.counters.warp_instructions += self.instr;
        self.shard.counters.lane_ops += self.lanes;
        self.shard.counters.warps += 1;
    }
}

/// Element of a scannable access run: a raw byte address (`u64`) or an
/// element index (`usize`, for the index-space fast path).
trait RunElem: Copy + Ord + std::ops::Shr<u32, Output = Self> {}
impl RunElem for u64 {}
impl RunElem for usize {}

/// Result of scanning a warp's (lane-ordered, compacted) access run.
struct LaneScan {
    n_active: usize,
    /// Addresses came out non-decreasing (the common coalesced and
    /// row-major case).
    sorted: bool,
    /// Distinct segments at granularity `1 << shift_a` — valid only when
    /// `sorted`.
    segs_a: u64,
    /// Distinct segments at granularity `1 << shift_b` — valid only when
    /// `sorted`.
    segs_b: u64,
}

/// Scan a compacted access run for sortedness and — valid only when it
/// is sorted — the distinct-segment counts at two granularities.
/// Counting boundaries between neighbours of a sorted run is exactly
/// what [`count_segments2`] computes, so sorted runs skip the sort and
/// the second counting pass entirely. The loop carries only independent
/// accumulators (no data-dependent control flow), so it vectorizes.
#[inline]
fn scan_run<E: RunElem>(run: &[E], shift_a: u32, shift_b: u32) -> LaneScan {
    let n = run.len();
    if n == 0 {
        return LaneScan {
            n_active: 0,
            sorted: true,
            segs_a: 0,
            segs_b: 0,
        };
    }
    let mut sorted = true;
    let mut segs_a = 1u64;
    let mut segs_b = 1u64;
    for i in 1..n {
        let p = run[i - 1];
        let a = run[i];
        sorted &= a >= p;
        segs_a += u64::from(a >> shift_a != p >> shift_a);
        segs_b += u64::from(a >> shift_b != p >> shift_b);
    }
    LaneScan {
        n_active: n,
        sorted,
        segs_a,
        segs_b,
    }
}

/// As [`LaneScan`] but with a third count: distinct elements (shift 0),
/// shared by [`WarpCtx::gather2`]'s two charges. Same single pass, same
/// boundary-counting argument.
struct LaneScan3 {
    sorted: bool,
    segs_a: u64,
    segs_b: u64,
    distinct: u64,
}

/// Three-granularity variant of [`scan_run`] (see there for why the
/// boundary counts of a sorted run equal the dedup counts).
#[inline]
fn scan_run3<E: RunElem>(run: &[E], shift_a: u32, shift_b: u32) -> LaneScan3 {
    let n = run.len();
    if n == 0 {
        return LaneScan3 {
            sorted: true,
            segs_a: 0,
            segs_b: 0,
            distinct: 0,
        };
    }
    let mut sorted = true;
    let mut segs_a = 1u64;
    let mut segs_b = 1u64;
    let mut distinct = 1u64;
    for i in 1..n {
        let p = run[i - 1];
        let a = run[i];
        sorted &= a >= p;
        segs_a += u64::from(a >> shift_a != p >> shift_a);
        segs_b += u64::from(a >> shift_b != p >> shift_b);
        distinct += u64::from(a != p);
    }
    LaneScan3 {
        sorted,
        segs_a,
        segs_b,
        distinct,
    }
}

/// Compact the active lanes' indices into the front of `lanes` (lane
/// order preserved); returns the active count.
#[inline]
fn compact_idx(idx: &[usize; WARP], mask: u32, lanes: &mut [usize; WARP]) -> usize {
    // Unconditional store + masked advance: no data-dependent branches
    // (active masks are irregular, so a bit-iteration loop mispredicts),
    // and the fixed 32-iteration shape is the compress-store idiom
    // vector backends recognize.
    let mut n = 0usize;
    for (lane, &i) in idx.iter().enumerate() {
        lanes[n] = i;
        n += (mask >> lane & 1) as usize;
    }
    n
}

/// In index space, the shift mapping an element index to its
/// granularity-`1 << k` segment id — available whenever the element size
/// is a power of two no larger than the granule and the buffer base is
/// granule-aligned (always true for the page-aligned allocator). Then
/// `(base + i*elem) >> k == (base >> k) + (i >> (k - log2 elem))`: the
/// base contributes a constant, so segment *boundaries* (and sortedness)
/// of an index run coincide exactly with those of the address run, and
/// the per-lane address materialization can be skipped entirely.
#[inline]
fn idx_shift(base: u64, elem: u64, granule: u64) -> Option<u32> {
    if elem.is_power_of_two() && elem <= granule && base & (granule - 1) == 0 {
        Some(granule.trailing_zeros() - elem.trailing_zeros())
    } else {
        None
    }
}

/// Collect the active lanes' values and raw byte addresses (lane order,
/// compacted into the front of `addrs`), then scan the run. The
/// full-mask case is a straight-line 32-iteration loop — no bit
/// scanning, no cross-lane dependencies — so the compiler can unroll
/// and vectorize it.
#[inline]
fn collect_gather<T: DevCopy>(
    buf: &DeviceBuffer<T>,
    idx: &[usize; WARP],
    mask: u32,
    out: &mut [T; WARP],
    addrs: &mut [u64; WARP],
    shift_a: u32,
    shift_b: u32,
) -> LaneScan {
    let n = if mask == FULL_MASK {
        for lane in 0..WARP {
            out[lane] = buf.get(idx[lane]);
            addrs[lane] = buf.addr_of(idx[lane]);
        }
        WARP
    } else {
        let mut n = 0usize;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            out[lane] = buf.get(idx[lane]);
            addrs[n] = buf.addr_of(idx[lane]);
            n += 1;
        }
        n
    };
    scan_run(&addrs[..n], shift_a, shift_b)
}

/// Sort up to 32 run elements. Insertion sort: warp-sized inputs are
/// typically nearly sorted (ascending per-group runs), where it does
/// O(n + inversions) work.
#[inline]
fn sort_run<E: RunElem>(run: &mut [E]) {
    for i in 1..run.len() {
        let v = run[i];
        let mut j = i;
        while j > 0 && run[j - 1] > v {
            run[j] = run[j - 1];
            j -= 1;
        }
        run[j] = v;
    }
}

/// Count the distinct power-of-two segments a *sorted* run touches, at
/// two granularities (`1 << shift_a`, `1 << shift_b`) in one pass.
/// Shifting is monotonic, so segment ids of sorted elements are sorted
/// too and distinct ids appear as boundaries between neighbours — the
/// same counts the old sort-per-granularity dedup produced.
#[inline]
fn count_segments2<E: RunElem>(sorted: &[E], shift_a: u32, shift_b: u32) -> (u64, u64) {
    if sorted.is_empty() {
        return (0, 0);
    }
    let mut da = 1u64;
    let mut db = 1u64;
    for w in sorted.windows(2) {
        da += u64::from(w[0] >> shift_a != w[1] >> shift_a);
        db += u64::from(w[0] >> shift_b != w[1] >> shift_b);
    }
    (da, db)
}

/// Minimum DRAM transactions a request could have needed: the *distinct*
/// elements (duplicates coalesce for free — a broadcast is perfectly
/// efficient), densely packed into `txn_bytes`-sized transactions.
/// Always ≤ the distinct segments the access actually touched, so
/// coalescing efficiency stays in (0, 1].
#[inline]
fn ideal_from_distinct(n_active: usize, distinct_elems: u64, elem: u64, txn_bytes: u64) -> u64 {
    if n_active == 0 {
        0
    } else {
        (distinct_elems * elem).div_ceil(txn_bytes).max(1)
    }
}

/// Reference implementation of segment counting (kept for the
/// equivalence tests): compact `addrs` to the distinct
/// `granularity`-sized segment ids it touches; returns the count.
/// `granularity` must be a power of two.
#[cfg(test)]
fn distinct_segments(addrs: &mut [u64], granularity: u64) -> usize {
    debug_assert!(granularity.is_power_of_two());
    if addrs.is_empty() {
        return 0;
    }
    let shift = granularity.trailing_zeros();
    for a in addrs.iter_mut() {
        *a >>= shift;
    }
    addrs.sort_unstable();
    let mut n = 1;
    for i in 1..addrs.len() {
        if addrs[i] != addrs[i - 1] {
            addrs[n] = addrs[i];
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_mask_edges() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(5), 0b11111);
        assert_eq!(lane_mask(32), FULL_MASK);
        assert_eq!(lane_mask(100), FULL_MASK);
    }

    #[test]
    fn distinct_segments_counts_unique_blocks() {
        let mut a = [0u64, 64, 127, 128, 129, 4096];
        assert_eq!(distinct_segments(&mut a, 128), 3); // {0,1,32}
        let mut b: [u64; 0] = [];
        assert_eq!(distinct_segments(&mut b, 128), 0);
        let mut c = [5u64, 5, 5];
        assert_eq!(distinct_segments(&mut c, 32), 1);
    }

    #[test]
    fn distinct_segments_fully_scattered() {
        let mut a: Vec<u64> = (0..32).map(|i| i * 1024).collect();
        assert_eq!(distinct_segments(&mut a, 128), 32);
    }

    #[test]
    fn count_segments2_matches_reference_dedup() {
        let cases: &[&[u64]] = &[
            &[],
            &[5],
            &[0, 64, 127, 128, 129, 4096],
            &[7, 7, 7, 7],
            &[1024, 0, 4096, 32, 33, 4095],
            &[8, 16, 24, 32, 40, 48, 56, 64],
        ];
        for case in cases {
            for (ga, gb) in [(32u64, 8u64), (128, 4), (32, 32)] {
                let mut sorted = case.to_vec();
                sorted.sort_unstable();
                let (da, db) = count_segments2(&sorted, ga.trailing_zeros(), gb.trailing_zeros());
                let mut ra = case.to_vec();
                let mut rb = case.to_vec();
                assert_eq!(
                    da as usize,
                    distinct_segments(&mut ra, ga),
                    "{case:?} g={ga}"
                );
                assert_eq!(
                    db as usize,
                    distinct_segments(&mut rb, gb),
                    "{case:?} g={gb}"
                );
            }
        }
    }

    #[test]
    fn sort_run_sorts() {
        let mut a = [9u64, 3, 7, 3, 1];
        sort_run(&mut a);
        assert_eq!(a, [1, 3, 3, 7, 9]);
    }

    #[test]
    fn scan_addrs_sorted_counts_match_recount() {
        // On sorted input the one-pass counts must equal count_segments2.
        let runs: &[&[u64]] = &[
            &[],
            &[5],
            &[7, 7, 7],
            &[0, 8, 16, 24, 32, 64, 64, 120],
            &[0, 31, 32, 33, 4096],
        ];
        for run in runs {
            let scan = scan_run(run, 5, 3);
            assert!(scan.sorted, "{run:?}");
            let (da, db) = count_segments2(run, 5, 3);
            assert_eq!((scan.segs_a, scan.segs_b), (da, db), "{run:?}");
        }
        // Unsorted input must be flagged so callers fall back.
        assert!(!scan_run(&[64u64, 0, 32], 5, 3).sorted);
    }
}
