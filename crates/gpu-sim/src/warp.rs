//! Warp execution context — the API simulated kernels are written against.
//!
//! A kernel observes the machine the way CUDA device code does, one warp
//! at a time: 32 lanes executing in lockstep under an active mask. Every
//! method both *performs* the operation on host data (functional
//! correctness) and *charges* the timing model (issue slots, DRAM
//! transactions after coalescing, texture probes, critical-path latency).
//!
//! The key SIMT property the model preserves: **cost is per warp
//! instruction, not per active lane**. A warp with one active lane pays
//! the same issue slot as a full warp — that waste is precisely the
//! divergence ACSR's binning removes.
//!
//! All model mutations go to the warp's `ShardState` — the per-SM slice
//! of the launch this warp's block belongs to — so warps of blocks on
//! different SMs can execute on different host threads without sharing
//! any mutable state (see the engine module's sharding docs). Buffer
//! writes go through `&DeviceBuffer` interior mutability under the kernel
//! data contract; cross-shard read-modify-write races are prevented by
//! serializing [`WarpCtx::atomic_rmw`] under a process-wide lock.

use crate::buffer::{DevCopy, DeviceBuffer};
use crate::config::DeviceConfig;
use crate::engine::ShardState;
use std::sync::Mutex;

/// Lanes per warp (fixed at 32 on every NVIDIA GPU the paper uses).
pub const WARP: usize = 32;

/// All 32 lanes active.
pub const FULL_MASK: u32 = u32::MAX;

/// Serializes atomic read-modify-write sequences across host workers,
/// mirroring the L2 atomic unit. Counter and timing charges stay
/// shard-local; only the memory update itself is serialized, so the
/// final value is *some* association order of the contributions —
/// exactly the guarantee CUDA atomics give.
static ATOMIC_LOCK: Mutex<()> = Mutex::new(());

/// Mask with the first `n` lanes active (`n ≥ 32` ⇒ full mask).
#[inline]
pub fn lane_mask(n: usize) -> u32 {
    if n >= WARP {
        FULL_MASK
    } else {
        (1u32 << n) - 1
    }
}

/// Execution context of one warp inside one block.
pub struct WarpCtx<'r, 'd, 'k> {
    pub(crate) shard: &'r mut ShardState,
    /// Child grids queued for the launch's next wave (see the engine
    /// module's sharding docs).
    pub(crate) pending: &'r mut Vec<crate::engine::PendingChild<'k>>,
    pub(crate) cfg: &'d DeviceConfig,
    pub(crate) block_idx: usize,
    pub(crate) warp_in_block: usize,
    pub(crate) block_dim: usize,
    pub(crate) sm: usize,
    /// Local issue-slot count, flushed to the SM on drop.
    pub(crate) instr: u64,
    /// Local critical-path cycles, flushed (max) to the SM on drop.
    pub(crate) crit: u64,
    /// Local active-lane count (`lane_ops`), flushed on drop.
    pub(crate) lanes: u64,
}

impl<'r, 'd, 'k> WarpCtx<'r, 'd, 'k> {
    /// Index of this warp within its block.
    pub fn warp_in_block(&self) -> usize {
        self.warp_in_block
    }

    /// Block index in the grid.
    pub fn block_idx(&self) -> usize {
        self.block_idx
    }

    /// Global warp id (`block_idx * warps_per_block + warp_in_block`).
    pub fn global_warp_id(&self) -> usize {
        self.block_idx * self.block_dim.div_ceil(WARP) + self.warp_in_block
    }

    /// Global thread id of lane 0.
    pub fn first_thread(&self) -> usize {
        self.block_idx * self.block_dim + self.warp_in_block * WARP
    }

    /// Number of threads of this warp that exist in the block (the last
    /// warp of a non-multiple-of-32 block is partial).
    pub fn live_lanes(&self) -> usize {
        (self.block_dim - (self.warp_in_block * WARP).min(self.block_dim)).min(WARP)
    }

    /// Charge `n` ALU/control warp instructions. Modeled as uniform
    /// (full-warp) work: every lane counts active. Divergent arithmetic
    /// should go through [`WarpCtx::charge_fma`] instead so the wasted
    /// lanes show up in the profiler's warp execution efficiency.
    #[inline]
    pub fn charge_alu(&mut self, n: u64) {
        self.instr += n;
        self.crit += n;
        self.lanes += n * WARP as u64;
    }

    /// Charge one fused-multiply-add warp instruction executing under
    /// `mask`: one issue slot (identical timing to `charge_alu(1)`),
    /// `2 × active lanes` useful flops, and the active-lane histogram /
    /// `lane_ops` accounting the profiler derives divergence from.
    #[inline]
    pub fn charge_fma(&mut self, mask: u32) {
        self.instr += 1;
        self.crit += 1;
        let n_active = u64::from(mask.count_ones());
        self.lanes += n_active;
        self.shard.counters.flops += 2 * n_active;
        self.note_lanes(n_active);
    }

    /// Charge `n` useful floating-point operations (counter-only: no
    /// issue slots, no time — pair with [`WarpCtx::charge_alu`] for the
    /// instructions that perform them).
    #[inline]
    pub fn charge_flops(&mut self, n: u64) {
        self.shard.counters.flops += n;
    }

    /// Bump the active-lane divergence histogram for a masked warp
    /// operation with `n_active` lanes (no-op for an all-inactive mask).
    #[inline]
    fn note_lanes(&mut self, n_active: u64) {
        if n_active > 0 {
            self.shard.counters.lane_hist[crate::counters::lane_hist_bin(n_active)] += 1;
        }
    }

    /// Gather `buf[idx[i]]` for every active lane. One warp instruction;
    /// DRAM transactions per distinct segment touched. Inactive lanes
    /// return `T::default()` and their `idx` entries are ignored.
    pub fn gather<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[usize; WARP],
        mask: u32,
    ) -> [T; WARP] {
        let mut out = [T::default(); WARP];
        let mut addrs = [u64::MAX; WARP];
        let mut n_active = 0;
        for lane in 0..WARP {
            if mask >> lane & 1 == 1 {
                out[lane] = buf.get(idx[lane]);
                addrs[n_active] = buf.addr_of(idx[lane]);
                n_active += 1;
            }
        }
        let txn = self.cfg.dram_transaction_bytes as u64;
        let ideal = ideal_transactions::<T>(&addrs[..n_active], txn);
        let segs = distinct_segments(&mut addrs[..n_active], txn);
        self.charge_mem_read(n_active as u64, segs, ideal, txn);
        out
    }

    /// Gather through the texture / read-only cache path (the paper binds
    /// `x` to texture memory). Hits stay on chip; misses pay DRAM at
    /// cache-line granularity.
    pub fn gather_tex<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[usize; WARP],
        mask: u32,
    ) -> [T; WARP] {
        let mut out = [T::default(); WARP];
        let mut addrs = [u64::MAX; WARP];
        let mut n_active = 0;
        for lane in 0..WARP {
            if mask >> lane & 1 == 1 {
                out[lane] = buf.get(idx[lane]);
                addrs[n_active] = buf.addr_of(idx[lane]);
                n_active += 1;
            }
        }
        let line = self.cfg.tex_line_bytes as u64;
        let lines = distinct_segments(&mut addrs[..n_active], line);
        self.instr += 1;
        self.lanes += n_active as u64;
        self.note_lanes(n_active as u64);
        let mut hits = 0u64;
        let mut misses = 0u64;
        {
            let cache = self.shard.cache_mut(self.cfg);
            // distinct_segments compacts in place
            for &line_addr in &addrs[..lines] {
                if cache.access(line_addr * line) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        self.shard.counters.tex_hits += hits;
        self.shard.counters.tex_misses += misses;
        self.shard.counters.dram_read_bytes += misses * line;
        self.shard.counters.transactions += misses;
        let lat = if misses > 0 {
            self.cfg.mem_latency_cycles
        } else {
            self.cfg.tex_hit_latency_cycles
        };
        self.crit += (lat as f64 / self.cfg.mlp).ceil() as u64;
        out
    }

    /// Lane `i` reads `buf[base + i]` (the canonical coalesced pattern).
    pub fn read_coalesced<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        base: usize,
        mask: u32,
    ) -> [T; WARP] {
        let mut idx = [0usize; WARP];
        for (lane, slot) in idx.iter_mut().enumerate() {
            if mask >> lane & 1 == 1 {
                *slot = base + lane;
            }
        }
        self.gather(buf, &idx, mask)
    }

    /// Lane `i` writes `vals[i]` to `buf[base + i]`.
    pub fn write_coalesced<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        base: usize,
        vals: &[T; WARP],
        mask: u32,
    ) {
        let mut idx = [0usize; WARP];
        for (lane, slot) in idx.iter_mut().enumerate() {
            if mask >> lane & 1 == 1 {
                *slot = base + lane;
            }
        }
        self.scatter(buf, &idx, vals, mask);
    }

    /// Scatter `vals[i]` to `buf[idx[i]]` for active lanes. Conflicting
    /// lanes (same index) resolve to the highest active lane, matching
    /// CUDA's undefined-but-last-writer-wins behaviour in practice.
    pub fn scatter<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[usize; WARP],
        vals: &[T; WARP],
        mask: u32,
    ) {
        let mut addrs = [u64::MAX; WARP];
        let mut n_active = 0;
        for lane in 0..WARP {
            if mask >> lane & 1 == 1 {
                buf.set(idx[lane], vals[lane]);
                addrs[n_active] = buf.addr_of(idx[lane]);
                n_active += 1;
            }
        }
        let txn = self.cfg.dram_transaction_bytes as u64;
        let ideal = ideal_transactions::<T>(&addrs[..n_active], txn);
        let segs = distinct_segments(&mut addrs[..n_active], txn);
        self.charge_mem_write(n_active as u64, segs, ideal, txn);
    }

    /// Atomic read-modify-write: `buf[idx[i]] = op(buf[idx[i]], vals[i])`.
    /// Lanes hitting the same address serialize (charged as extra passes),
    /// and the result is the correct full combination. Across host
    /// workers, the whole warp-level sequence holds a process-wide lock,
    /// so concurrent shards never tear an update — their application
    /// *order* is unspecified, as on hardware.
    pub fn atomic_rmw<T: DevCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[usize; WARP],
        vals: &[T; WARP],
        mask: u32,
        op: impl Fn(T, T) -> T,
    ) {
        let mut seen: [(usize, u32); WARP] = [(usize::MAX, 0); WARP];
        let mut n_distinct = 0usize;
        let mut n_active = 0u64;
        {
            let _serialize = ATOMIC_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            for lane in 0..WARP {
                if mask >> lane & 1 == 1 {
                    n_active += 1;
                    let cur = buf.get(idx[lane]);
                    buf.set(idx[lane], op(cur, vals[lane]));
                    match seen[..n_distinct].iter_mut().find(|(a, _)| *a == idx[lane]) {
                        Some((_, c)) => *c += 1,
                        None => {
                            seen[n_distinct] = (idx[lane], 1);
                            n_distinct += 1;
                        }
                    }
                }
            }
        }
        if n_active == 0 {
            return;
        }
        let max_mult = seen[..n_distinct]
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(1) as u64;
        self.instr += max_mult;
        self.lanes += n_active;
        self.note_lanes(n_active);
        self.shard.counters.atomic_ops += n_active;
        self.shard.counters.atomic_conflicts += (max_mult - 1) * n_distinct as u64;
        // atomics resolve in L2 at 32B granularity
        self.shard.counters.transactions += n_distinct as u64;
        self.shard.counters.dram_read_bytes += n_distinct as u64 * 32;
        self.shard.counters.dram_write_bytes += n_distinct as u64 * 32;
        self.crit += max_mult * self.cfg.atomic_serialize_cycles
            + (self.cfg.mem_latency_cycles as f64 / self.cfg.mlp).ceil() as u64;
    }

    /// `__shfl_down_sync`: lane `i` receives lane `i + delta`'s value
    /// (its own when the source lane is out of range), one instruction.
    pub fn shfl_down<T: DevCopy>(&mut self, vals: &[T; WARP], delta: usize) -> [T; WARP] {
        self.charge_alu(1);
        let mut out = *vals;
        for lane in 0..WARP {
            if lane + delta < WARP {
                out[lane] = vals[lane + delta];
            }
        }
        out
    }

    /// Tree-reduce (+) within independent segments of `width` lanes
    /// (`width` must be a power of two ≤ 32). After the call, the first
    /// lane of each segment holds that segment's sum. Charges
    /// `log2(width)` shuffle instructions plus the adds — the intra-warp
    /// reduction of the paper's Algorithm 2.
    pub fn segmented_reduce_sum<T: DevCopy + std::ops::Add<Output = T>>(
        &mut self,
        vals: &[T; WARP],
        width: usize,
    ) -> [T; WARP] {
        assert!(
            width.is_power_of_two() && width <= WARP,
            "segment width must be a power of two ≤ 32"
        );
        let mut cur = *vals;
        let mut delta = width / 2;
        while delta > 0 {
            let shifted = self.shfl_down(&cur, delta);
            for lane in 0..WARP {
                // only combine within the same segment
                if (lane % width) + delta < width {
                    cur[lane] = cur[lane] + shifted[lane];
                }
            }
            self.charge_alu(1); // the adds issue as one warp instruction
            delta /= 2;
        }
        cur
    }

    /// `__ballot_sync`: mask of lanes whose predicate is true.
    pub fn ballot(&mut self, preds: &[bool; WARP], mask: u32) -> u32 {
        self.charge_alu(1);
        let mut out = 0u32;
        for (lane, &p) in preds.iter().enumerate() {
            if mask >> lane & 1 == 1 && p {
                out |= 1 << lane;
            }
        }
        out
    }

    /// Launch a child grid from this warp (dynamic parallelism,
    /// Algorithm 3). Panics on devices below compute capability 3.5,
    /// matching the hardware constraint the paper works around on the
    /// GTX 580 and K10.
    ///
    /// The child grid is queued and executes after the parent grid's
    /// blocks drain, mirroring the CUDA rule that a child grid is only
    /// guaranteed complete once the parent synchronizes. Its blocks are
    /// attributed round-robin across SMs starting at the shard's private
    /// launch sequence, and each runs on the shard of its attributed SM —
    /// see the engine module's sharding docs.
    pub fn launch_child<F>(&mut self, grid_blocks: usize, block_dim: usize, kernel: F)
    where
        F: for<'x, 'y> Fn(&mut crate::engine::BlockCtx<'x, 'y, 'k>) + Send + Sync + 'k,
    {
        assert!(
            self.cfg.has_dynamic_parallelism(),
            "device '{}' (cc {}.{}) does not support dynamic parallelism",
            self.cfg.name,
            self.cfg.compute_capability.0,
            self.cfg.compute_capability.1
        );
        assert!(
            block_dim > 0 && block_dim <= 1024,
            "block_dim {block_dim} out of range"
        );
        self.charge_alu(2); // launch setup on the parent thread
        self.shard.counters.child_launches += 1;
        self.shard.child_seq += 1;
        self.pending.push(crate::engine::PendingChild {
            seq: self.shard.child_seq,
            grid_blocks,
            block_dim,
            kernel: Box::new(kernel),
        });
    }

    fn charge_mem_read(&mut self, n_active: u64, segments: usize, ideal: u64, txn_bytes: u64) {
        self.instr += 1;
        self.lanes += n_active;
        self.note_lanes(n_active);
        self.shard.counters.mem_requests += 1;
        self.shard.counters.mem_transactions += segments as u64;
        self.shard.counters.min_transactions += ideal;
        self.shard.counters.transactions += segments as u64;
        self.shard.counters.dram_read_bytes += segments as u64 * txn_bytes;
        self.crit += (self.cfg.mem_latency_cycles as f64 / self.cfg.mlp).ceil() as u64;
    }

    fn charge_mem_write(&mut self, n_active: u64, segments: usize, ideal: u64, txn_bytes: u64) {
        self.instr += 1;
        self.lanes += n_active;
        self.note_lanes(n_active);
        self.shard.counters.mem_requests += 1;
        self.shard.counters.mem_transactions += segments as u64;
        self.shard.counters.min_transactions += ideal;
        self.shard.counters.transactions += segments as u64;
        self.shard.counters.dram_write_bytes += segments as u64 * txn_bytes;
        // writes retire through the store queue; they cost issue + a small
        // fraction of latency on the critical path
        self.crit += 4;
    }
}

impl Drop for WarpCtx<'_, '_, '_> {
    fn drop(&mut self) {
        self.shard.sm_instr[self.sm] += self.instr;
        if self.crit > self.shard.sm_crit[self.sm] {
            self.shard.sm_crit[self.sm] = self.crit;
        }
        self.shard.counters.warp_instructions += self.instr;
        self.shard.counters.lane_ops += self.lanes;
        self.shard.counters.warps += 1;
    }
}

/// Minimum DRAM transactions a request for these element addresses could
/// have needed: the *distinct* elements (duplicates coalesce for free —
/// a broadcast is perfectly efficient), densely packed into
/// `txn_bytes`-sized transactions. Always ≤ the distinct segments the
/// access actually touched, so coalescing efficiency stays in (0, 1].
fn ideal_transactions<T: DevCopy>(active_addrs: &[u64], txn_bytes: u64) -> u64 {
    if active_addrs.is_empty() {
        return 0;
    }
    let elem = std::mem::size_of::<T>() as u64;
    let mut tmp = [0u64; WARP];
    tmp[..active_addrs.len()].copy_from_slice(active_addrs);
    let distinct = distinct_segments(
        &mut tmp[..active_addrs.len()],
        elem.next_power_of_two().max(1),
    ) as u64;
    (distinct * elem).div_ceil(txn_bytes).max(1)
}

/// Compact `addrs` to the distinct `granularity`-sized segment ids it
/// touches; returns the count. `granularity` must be a power of two.
fn distinct_segments(addrs: &mut [u64], granularity: u64) -> usize {
    debug_assert!(granularity.is_power_of_two());
    if addrs.is_empty() {
        return 0;
    }
    let shift = granularity.trailing_zeros();
    for a in addrs.iter_mut() {
        *a >>= shift;
    }
    addrs.sort_unstable();
    let mut n = 1;
    for i in 1..addrs.len() {
        if addrs[i] != addrs[i - 1] {
            addrs[n] = addrs[i];
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_mask_edges() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(5), 0b11111);
        assert_eq!(lane_mask(32), FULL_MASK);
        assert_eq!(lane_mask(100), FULL_MASK);
    }

    #[test]
    fn distinct_segments_counts_unique_blocks() {
        let mut a = [0u64, 64, 127, 128, 129, 4096];
        assert_eq!(distinct_segments(&mut a, 128), 3); // {0,1,32}
        let mut b: [u64; 0] = [];
        assert_eq!(distinct_segments(&mut b, 128), 0);
        let mut c = [5u64, 5, 5];
        assert_eq!(distinct_segments(&mut c, 32), 1);
    }

    #[test]
    fn distinct_segments_fully_scattered() {
        let mut a: Vec<u64> = (0..32).map(|i| i * 1024).collect();
        assert_eq!(distinct_segments(&mut a, 128), 32);
    }
}
