//! Device configuration and the Table II presets.

use serde::{Deserialize, Serialize};

/// Performance-model parameters of one simulated GPU.
///
/// The defaults in [`presets`] are taken from the public specifications
/// of the paper's testbed (Table II) plus standard microarchitectural
/// constants (transaction sizes, launch overheads, latencies) from the
/// CUDA programming guides of that era.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name ("GTX Titan").
    pub name: String,
    /// Streaming multiprocessor count.
    pub sm_count: usize,
    /// CUDA compute capability `(major, minor)`.
    pub compute_capability: (u32, u32),
    /// Shader clock, GHz.
    pub clock_ghz: f64,
    /// Sustained DRAM bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Device memory, GiB — formats that exceed it get the paper's ∅.
    pub memory_gib: f64,
    /// Warp instructions issued per cycle per SM (scheduler count).
    pub ipc_per_sm: f64,
    /// Peak single-precision throughput, GFLOP/s (cores × 2 × clock).
    /// Only the roofline classifier reads this; it never affects
    /// modeled time.
    pub peak_gflops: f64,
    /// Resident-warp limit per SM (Fermi: 48, Kepler: 64) — the
    /// occupancy denominator.
    pub max_warps_per_sm: usize,
    /// Resident-block limit per SM (Fermi: 8, Kepler: 16).
    pub max_blocks_per_sm: usize,
    /// Global-memory transaction size in bytes (coalescing granularity).
    /// Kepler global loads bypass L1 and fetch 32-byte L2 segments;
    /// Fermi's L1-cached path fetched 128-byte lines — scattered access
    /// is proportionally costlier there.
    pub dram_transaction_bytes: usize,
    /// Texture/read-only cache per SM, bytes.
    pub tex_cache_bytes: usize,
    /// Texture cache line size, bytes.
    pub tex_line_bytes: usize,
    /// Texture cache associativity (ways).
    pub tex_ways: usize,
    /// Global memory latency, cycles.
    pub mem_latency_cycles: u64,
    /// Texture-cache hit latency, cycles.
    pub tex_hit_latency_cycles: u64,
    /// Memory-level parallelism: outstanding loads one warp overlaps.
    pub mlp: f64,
    /// Per-launch overhead, seconds. Modeled as the *pipelined*
    /// back-to-back kernel gap (launches are enqueued asynchronously, so
    /// sequences of kernels pay the enqueue/dispatch gap, not the full
    /// cold host-side launch latency).
    pub kernel_launch_s: f64,
    /// Device-side (dynamic parallelism) child launch overhead, seconds.
    pub child_launch_s: f64,
    /// Concurrent device-side launch units (child launches amortize over
    /// this many parallel launch slots).
    pub child_launch_parallelism: usize,
    /// `cudaLimitDevRuntimePendingLaunchCount` (2048 on Kepler).
    pub pending_launch_limit: usize,
    /// Extra stall per child launch beyond the pending limit, seconds
    /// (the "reserve memory for pending launches" degradation, §III-B).
    pub pending_overflow_penalty_s: f64,
    /// Extra cycles charged per serialized atomic conflict.
    pub atomic_serialize_cycles: u64,
    /// PCIe host→device bandwidth, GB/s.
    pub pcie_gbs: f64,
    /// PCIe device→host bandwidth, GB/s. Readback is asymmetric in
    /// practice (host-side write-combining and smaller read requests),
    /// so D2H sustains slightly less than H2D on these parts.
    pub pcie_d2h_gbs: f64,
    /// PCIe fixed per-copy latency, seconds.
    pub pcie_latency_s: f64,
    /// Independent kernels that can execute concurrently when launched on
    /// separate streams (Fermi: up to 16; Kepler HyperQ: 32).
    pub concurrent_kernels: usize,
}

impl DeviceConfig {
    /// Dynamic parallelism requires compute capability ≥ 3.5 (§III-B).
    pub fn has_dynamic_parallelism(&self) -> bool {
        self.compute_capability >= (3, 5)
    }

    /// Peak warp-instruction issue rate, instructions/second.
    pub fn issue_rate(&self) -> f64 {
        self.clock_ghz * 1e9 * self.sm_count as f64 * self.ipc_per_sm
    }

    /// DRAM bandwidth in bytes/second.
    pub fn bandwidth_bytes_s(&self) -> f64 {
        self.mem_bandwidth_gbs * 1e9
    }

    /// Roofline ridge point, flops/byte: arithmetic intensity below this
    /// is bandwidth-bound, above it compute-bound (§II's classifier).
    pub fn ridge_flops_per_byte(&self) -> f64 {
        self.peak_gflops * 1e9 / self.bandwidth_bytes_s()
    }

    /// Device memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.memory_gib * (1u64 << 30) as f64) as usize
    }

    /// Modeled host→device copy time for `bytes`.
    pub fn copy_seconds(&self, bytes: u64) -> f64 {
        self.pcie_latency_s + bytes as f64 / (self.pcie_gbs * 1e9)
    }

    /// Modeled device→host copy time for `bytes` (asymmetric bandwidth).
    pub fn copy_seconds_d2h(&self, bytes: u64) -> f64 {
        self.pcie_latency_s + bytes as f64 / (self.pcie_d2h_gbs * 1e9)
    }
}

/// The paper's Table II devices.
pub mod presets {
    use super::DeviceConfig;

    /// NVIDIA GTX 580 — Fermi GF110, compute capability 2.0.
    /// No dynamic parallelism: ACSR runs binning-only here (§V).
    pub fn gtx_580() -> DeviceConfig {
        DeviceConfig {
            name: "GTX 580".into(),
            sm_count: 16,
            compute_capability: (2, 0),
            clock_ghz: 1.544,
            mem_bandwidth_gbs: 192.4,
            memory_gib: 1.5,
            ipc_per_sm: 2.0,
            // 512 CUDA cores x 2 flops x 1.544 GHz
            peak_gflops: 1581.1,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            dram_transaction_bytes: 128,
            tex_cache_bytes: 12 * 1024,
            tex_line_bytes: 32,
            tex_ways: 4,
            mem_latency_cycles: 600,
            tex_hit_latency_cycles: 120,
            mlp: 4.0,
            kernel_launch_s: 3e-6,
            child_launch_s: 0.0,
            child_launch_parallelism: 1,
            pending_launch_limit: 0,
            pending_overflow_penalty_s: 0.0,
            atomic_serialize_cycles: 40,
            pcie_gbs: 5.5,
            pcie_d2h_gbs: 5.0,
            pcie_latency_s: 10e-6,
            concurrent_kernels: 16,
        }
    }

    /// NVIDIA Tesla K10, one of its two GK104 GPUs — compute 3.0.
    /// Has Kepler's read-only cache but no dynamic parallelism.
    pub fn tesla_k10_single() -> DeviceConfig {
        DeviceConfig {
            name: "Tesla K10 (1 GPU)".into(),
            sm_count: 8,
            compute_capability: (3, 0),
            clock_ghz: 0.745,
            mem_bandwidth_gbs: 160.0,
            memory_gib: 4.0,
            ipc_per_sm: 4.0,
            // 1536 CUDA cores x 2 flops x 0.745 GHz
            peak_gflops: 2288.6,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            dram_transaction_bytes: 32,
            tex_cache_bytes: 48 * 1024,
            tex_line_bytes: 32,
            tex_ways: 8,
            mem_latency_cycles: 650,
            tex_hit_latency_cycles: 110,
            mlp: 6.0,
            kernel_launch_s: 2e-6,
            child_launch_s: 0.0,
            child_launch_parallelism: 1,
            pending_launch_limit: 0,
            pending_overflow_penalty_s: 0.0,
            atomic_serialize_cycles: 30,
            pcie_gbs: 6.0,
            pcie_d2h_gbs: 5.2,
            pcie_latency_s: 10e-6,
            concurrent_kernels: 32,
        }
    }

    /// NVIDIA GTX Titan — Kepler GK110, compute capability 3.5.
    /// The only Table II device with dynamic parallelism; all DP results
    /// in the paper are from this GPU.
    pub fn gtx_titan() -> DeviceConfig {
        DeviceConfig {
            name: "GTX Titan".into(),
            sm_count: 14,
            compute_capability: (3, 5),
            clock_ghz: 0.837,
            mem_bandwidth_gbs: 288.4,
            memory_gib: 6.0,
            ipc_per_sm: 4.0,
            // 2688 CUDA cores x 2 flops x 0.837 GHz
            peak_gflops: 4499.7,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            dram_transaction_bytes: 32,
            tex_cache_bytes: 48 * 1024,
            tex_line_bytes: 32,
            tex_ways: 8,
            mem_latency_cycles: 620,
            tex_hit_latency_cycles: 108,
            mlp: 6.0,
            kernel_launch_s: 2e-6,
            child_launch_s: 1e-6,
            child_launch_parallelism: 32,
            pending_launch_limit: 2048,
            pending_overflow_penalty_s: 3e-6,
            atomic_serialize_cycles: 30,
            pcie_gbs: 6.0,
            pcie_d2h_gbs: 5.2,
            pcie_latency_s: 10e-6,
            concurrent_kernels: 32,
        }
    }

    /// All three presets, in the order the paper reports them.
    pub fn table2() -> Vec<DeviceConfig> {
        vec![gtx_titan(), gtx_580(), tesla_k10_single()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_titan_has_dynamic_parallelism() {
        assert!(presets::gtx_titan().has_dynamic_parallelism());
        assert!(!presets::gtx_580().has_dynamic_parallelism());
        assert!(!presets::tesla_k10_single().has_dynamic_parallelism());
    }

    #[test]
    fn titan_has_highest_bandwidth() {
        let t = presets::gtx_titan();
        assert!(t.mem_bandwidth_gbs > presets::gtx_580().mem_bandwidth_gbs);
        assert!(t.mem_bandwidth_gbs > presets::tesla_k10_single().mem_bandwidth_gbs);
    }

    #[test]
    fn derived_rates_are_positive_and_sane() {
        for cfg in presets::table2() {
            assert!(cfg.issue_rate() > 1e9, "{}", cfg.name);
            assert!(cfg.bandwidth_bytes_s() > 1e11, "{}", cfg.name);
            assert!(cfg.memory_bytes() > 1 << 30, "{}", cfg.name);
            assert!(cfg.copy_seconds(1 << 20) > 0.0);
        }
    }

    #[test]
    fn gtx_580_memory_is_smallest() {
        // drives the ∅ cells: HOL/UK2 don't fit on the 580 (§V)
        let m580 = presets::gtx_580().memory_bytes();
        assert!(m580 < presets::gtx_titan().memory_bytes());
        assert!(m580 < presets::tesla_k10_single().memory_bytes());
    }

    #[test]
    fn ridge_point_is_far_above_spmv_intensity() {
        // SpMV moves ≥ 12 bytes per 2-flop non-zero (value + column index
        // + x element), so its arithmetic intensity sits below 0.2
        // flops/byte. All three presets' ridge points are an order of
        // magnitude higher — the §II bandwidth-bound claim is structural.
        for cfg in presets::table2() {
            let ridge = cfg.ridge_flops_per_byte();
            assert!(ridge > 2.0, "{}: ridge {ridge}", cfg.name);
            assert!(cfg.max_warps_per_sm >= 48, "{}", cfg.name);
            assert!(cfg.max_blocks_per_sm >= 8, "{}", cfg.name);
        }
    }

    #[test]
    fn copy_seconds_has_latency_floor() {
        let cfg = presets::gtx_titan();
        assert!(cfg.copy_seconds(0) >= cfg.pcie_latency_s);
        assert!(cfg.copy_seconds_d2h(0) >= cfg.pcie_latency_s);
    }

    #[test]
    fn readback_is_slower_than_upload() {
        for cfg in presets::table2() {
            assert!(
                cfg.copy_seconds_d2h(1 << 20) > cfg.copy_seconds(1 << 20),
                "{}",
                cfg.name
            );
        }
    }
}
