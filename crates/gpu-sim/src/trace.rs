//! Launch-level trace ledger.
//!
//! Every [`crate::Device::launch`], every kernel added to a
//! [`crate::ConcurrentGroup`], every dynamic child wave (per shard), and
//! every modeled PCIe transfer can emit a *span*: name, grid/block shape,
//! SM attribution, [`Counters`], and [`TimeBreakdown`], appended to a
//! [`TraceLedger`]. The ledger supports
//!
//! * a chrome://tracing-compatible JSON exporter
//!   ([`TraceLedger::chrome_trace_json`]) so a bench run can be opened in
//!   a trace viewer,
//! * a reconciliation check ([`TraceLedger::reconcile`]) asserting that
//!   the per-span counters sum *bit-identically* to the merged
//!   [`RunReport`] — a standing accounting invariant wired into the
//!   determinism proptests.
//!
//! Tracing is strictly opt-in: a [`crate::Device`] without a ledger
//! attached skips every snapshot (one branch per launch), so the default
//! path is unchanged. Attach a private ledger with
//! [`crate::Device::enable_tracing`], or flip the process-global capture
//! flag ([`enable_global_capture`]) so every *subsequently created*
//! device records into the shared [`global_ledger`] — the hook the bench
//! binary's `--trace` flag uses, since experiments construct their
//! devices internally.
//!
//! Span *times* are model times, not host wall-clock: launches are laid
//! end to end on a per-ledger virtual clock (`t_start` of a launch is
//! the sum of all earlier spans' durations), and stream/child spans are
//! placed inside their parent with a roofline-attributed duration. This
//! keeps the export deterministic — same run, same bytes.

use crate::config::DeviceConfig;
use crate::counters::{Counters, RunReport, TimeBreakdown};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// What a [`Span`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One [`crate::Device::launch`] or one finished
    /// [`crate::ConcurrentGroup`] (the merged report).
    Launch,
    /// One kernel added to a concurrent group (its slice of the pooled
    /// counters), child of a `Launch` span.
    Stream,
    /// One dynamic child grid's blocks on one shard (SM), child of a
    /// `Launch` span.
    ChildWave,
    /// A modeled PCIe transfer (H2D upload or D2H readback).
    Transfer,
}

impl SpanKind {
    fn cat(self) -> &'static str {
        match self {
            SpanKind::Launch => "launch",
            SpanKind::Stream => "stream",
            SpanKind::ChildWave => "child",
            SpanKind::Transfer => "transfer",
        }
    }
}

/// One trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    pub kind: SpanKind,
    /// Kernel / transfer name.
    pub name: String,
    /// Device the span executed on (config name).
    pub device: String,
    /// Grid blocks (0 for transfers and merged group spans).
    pub grid_blocks: usize,
    /// Threads per block (0 for transfers and merged group spans).
    pub block_dim: usize,
    /// Home SM for `ChildWave` spans.
    pub sm: Option<usize>,
    /// Stream index (`Stream`) or child launch sequence (`ChildWave`).
    pub seq: Option<usize>,
    /// Index of the parent `Launch` span within the ledger.
    pub parent: Option<usize>,
    /// Start on the ledger's virtual clock, seconds.
    pub t_start_s: f64,
    /// Modeled duration, seconds.
    pub dur_s: f64,
    /// Event counts attributed to this span.
    pub counters: Counters,
    /// Full breakdown (top-level spans only).
    pub breakdown: Option<TimeBreakdown>,
    /// Kernel launches merged into this span (0 for sub-spans/transfers).
    pub launches: u32,
    /// Issue slots attributed per SM (`Launch` spans only) — the
    /// profiler's load-imbalance input.
    pub sm_issue_cycles: Option<Vec<u64>>,
    /// Serving-plane correlation id: the wave that issued this span, set
    /// via [`TraceLedger::set_wave`] while the wave executes. `None`
    /// outside the serving path — and then absent from the JSON export,
    /// so kernel-plane traces are unchanged.
    pub wave: Option<u64>,
}

impl Span {
    /// Top-level spans carry the authoritative counters; `Stream` and
    /// `ChildWave` spans re-slice their parent's.
    pub fn is_top_level(&self) -> bool {
        self.parent.is_none()
    }
}

/// One group-stream's slice of a pooled launch, recorded by
/// `ConcurrentGroup::add` while tracing.
#[derive(Clone, Debug)]
pub(crate) struct StreamRec {
    pub(crate) name: String,
    pub(crate) grid_blocks: usize,
    pub(crate) block_dim: usize,
    pub(crate) counters: Counters,
}

/// One dynamic child grid's blocks on one shard, recorded by the child
/// wave executor while tracing.
#[derive(Clone, Debug)]
pub(crate) struct ChildRec {
    pub(crate) seq: usize,
    pub(crate) sm: usize,
    pub(crate) grid_blocks: usize,
    pub(crate) block_dim: usize,
    pub(crate) counters: Counters,
}

#[derive(Default)]
struct Inner {
    spans: Vec<Span>,
    /// Sequence-merge of every recorded top-level report, in record order.
    total: RunReport,
    /// Virtual clock: sum of recorded top-level durations so far.
    clock_s: f64,
    /// Wave id stamped onto every span recorded while set.
    wave: Option<u64>,
}

/// Append-only ledger of launch spans (see module docs). Thread-safe;
/// recording takes one short mutex hold per launch.
#[derive(Default)]
pub struct TraceLedger {
    inner: Mutex<Inner>,
}

/// Roofline share of a counter slice: the larger of its issue time and
/// its DRAM time. Used to give sub-spans a plausible duration inside
/// their parent; sub-span durations are schematic and do *not* take part
/// in reconciliation.
fn attributed_seconds(cfg: &DeviceConfig, c: &Counters) -> f64 {
    let compute = c.warp_instructions as f64 / cfg.issue_rate();
    let memory = c.dram_bytes() as f64 / cfg.bandwidth_bytes_s();
    compute.max(memory)
}

impl TraceLedger {
    pub fn new() -> TraceLedger {
        TraceLedger::default()
    }

    /// Record one top-level launch report plus its sub-spans.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_launch(
        &self,
        cfg: &DeviceConfig,
        report: &RunReport,
        grid_blocks: usize,
        block_dim: usize,
        sm_issue: Vec<u64>,
        streams: Vec<StreamRec>,
        children: Vec<ChildRec>,
    ) {
        let mut inner = self.inner.lock();
        let parent = inner.spans.len();
        let t0 = inner.clock_s;
        let wave = inner.wave;
        inner.spans.push(Span {
            kind: SpanKind::Launch,
            name: report.name.clone(),
            device: cfg.name.clone(),
            grid_blocks,
            block_dim,
            sm: None,
            seq: None,
            parent: None,
            t_start_s: t0,
            dur_s: report.time_s,
            counters: report.counters,
            breakdown: Some(report.breakdown),
            launches: report.launches,
            sm_issue_cycles: Some(sm_issue),
            wave,
        });
        // Sub-spans start after the parent's launch overhead.
        let t_body = t0 + report.breakdown.launch_s;
        for (i, s) in streams.into_iter().enumerate() {
            let dur = attributed_seconds(cfg, &s.counters);
            inner.spans.push(Span {
                kind: SpanKind::Stream,
                name: s.name,
                device: cfg.name.clone(),
                grid_blocks: s.grid_blocks,
                block_dim: s.block_dim,
                sm: None,
                seq: Some(i),
                parent: Some(parent),
                t_start_s: t_body,
                dur_s: dur,
                counters: s.counters,
                breakdown: None,
                launches: 1,
                sm_issue_cycles: None,
                wave,
            });
        }
        for c in children {
            let dur = attributed_seconds(cfg, &c.counters);
            let name = format!("{}.child{}", report.name, c.seq);
            inner.spans.push(Span {
                kind: SpanKind::ChildWave,
                name,
                device: cfg.name.clone(),
                grid_blocks: c.grid_blocks,
                block_dim: c.block_dim,
                sm: Some(c.sm),
                seq: Some(c.seq),
                parent: Some(parent),
                t_start_s: t_body,
                dur_s: dur,
                counters: c.counters,
                breakdown: None,
                launches: 0,
                sm_issue_cycles: None,
                wave,
            });
        }
        inner.total = std::mem::take(&mut inner.total).then(report);
        inner.clock_s += report.time_s;
    }

    /// Record a modeled PCIe transfer (the report carries `htod_bytes`
    /// or `dtoh_bytes` and a pure-`transfer_s` breakdown).
    pub(crate) fn record_transfer(&self, cfg: &DeviceConfig, report: &RunReport) {
        let mut inner = self.inner.lock();
        let t0 = inner.clock_s;
        let wave = inner.wave;
        inner.spans.push(Span {
            kind: SpanKind::Transfer,
            name: report.name.clone(),
            device: cfg.name.clone(),
            grid_blocks: 0,
            block_dim: 0,
            sm: None,
            seq: None,
            parent: None,
            t_start_s: t0,
            dur_s: report.time_s,
            counters: report.counters,
            breakdown: Some(report.breakdown),
            launches: report.launches,
            sm_issue_cycles: None,
            wave,
        });
        inner.total = std::mem::take(&mut inner.total).then(report);
        inner.clock_s += report.time_s;
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all spans, in record order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().spans.clone()
    }

    /// The sequence-merge of every recorded top-level report — what the
    /// caller would get by `.then()`-chaining the same reports itself.
    pub fn total(&self) -> RunReport {
        self.inner.lock().total.clone()
    }

    /// Drop all recorded spans and reset the clock/total.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.spans.clear();
        inner.total = RunReport::default();
        inner.clock_s = 0.0;
        inner.wave = None;
    }

    /// Set (or clear) the serving-plane wave id stamped onto every span
    /// recorded from now on. The serving scheduler wraps each wave's
    /// device dispatch in `set_wave(Some(id))` / `set_wave(None)`, which
    /// is what joins a query's request span to its kernel launches in
    /// the correlated timeline export.
    pub fn set_wave(&self, wave: Option<u64>) {
        self.inner.lock().wave = wave;
    }

    /// Verify the ledger's accounting invariants and return the merged
    /// total on success:
    ///
    /// 1. Top-level span counters sum *exactly* (integer equality) to the
    ///    merged total's counters; launches likewise.
    /// 2. Top-level span durations, folded in record order, equal the
    ///    total's `time_s` *bit-identically* (same fold the merge does).
    /// 3. Each pooled group's stream counters sum exactly to the parent
    ///    launch's counters.
    pub fn reconcile(&self) -> Result<RunReport, String> {
        let inner = self.inner.lock();
        let mut counters = Counters::default();
        let mut time_s = 0.0f64;
        let mut launches = 0u32;
        for span in inner.spans.iter().filter(|s| s.is_top_level()) {
            counters.merge(&span.counters);
            time_s += span.dur_s;
            launches += span.launches;
        }
        if counters != inner.total.counters {
            return Err(format!(
                "span counters do not reconcile:\n spans  {:?}\n total  {:?}",
                counters, inner.total.counters
            ));
        }
        if launches != inner.total.launches {
            return Err(format!(
                "span launches {} != total launches {}",
                launches, inner.total.launches
            ));
        }
        if time_s.to_bits() != inner.total.time_s.to_bits() {
            return Err(format!(
                "span time fold {:e} is not bit-identical to total {:e}",
                time_s, inner.total.time_s
            ));
        }
        for (idx, span) in inner.spans.iter().enumerate() {
            if span.kind != SpanKind::Launch {
                continue;
            }
            let streams: Vec<&Span> = inner
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::Stream && s.parent == Some(idx))
                .collect();
            if streams.is_empty() {
                continue;
            }
            let sum = Counters::sum(streams.iter().map(|s| &s.counters));
            if sum != span.counters {
                return Err(format!(
                    "stream counters of '{}' do not sum to the pooled launch:\n streams {:?}\n launch  {:?}",
                    span.name, sum, span.counters
                ));
            }
        }
        Ok(inner.total.clone())
    }

    /// Export every span as chrome://tracing "trace event format" JSON
    /// (complete-event `ph:"X"` records, timestamps in microseconds).
    /// Open the result at `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// The writer is hand-rolled with a fixed field order and `{:?}`
    /// float formatting, so the same run produces byte-identical output
    /// (the golden test relies on this). Processes are devices; track 0
    /// holds top-level launches/transfers, tracks `1+i` the group
    /// streams, tracks `64+sm` the child waves.
    pub fn chrome_trace_json(&self) -> String {
        let (events, _) = self.chrome_trace_events();
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(&events);
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// The chrome trace-event records for every span *without* the
    /// enclosing `traceEvents` wrapper: the events joined by `",\n"`,
    /// plus the number of distinct device processes emitted.
    /// [`chrome_trace_json`](TraceLedger::chrome_trace_json) wraps this
    /// verbatim; the serving timeline exporter (`acsr-telemetry`) appends
    /// its own request/wave events under `pid = device count` instead.
    pub fn chrome_trace_events(&self) -> (String, usize) {
        let inner = self.inner.lock();
        let mut devices: Vec<&str> = Vec::new();
        for span in &inner.spans {
            if !devices.contains(&span.device.as_str()) {
                devices.push(&span.device);
            }
        }
        let mut out = String::new();
        let mut first = true;
        for (pid, dev) in devices.iter().enumerate() {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(dev)
            );
        }
        for (span_id, span) in inner.spans.iter().enumerate() {
            sep(&mut out, &mut first);
            let pid = devices
                .iter()
                .position(|d| *d == span.device.as_str())
                .unwrap_or(0);
            let tid = match span.kind {
                SpanKind::Launch | SpanKind::Transfer => 0,
                SpanKind::Stream => 1 + span.seq.unwrap_or(0),
                SpanKind::ChildWave => 64 + span.sm.unwrap_or(0),
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:?},\"dur\":{:?},\
                 \"pid\":{pid},\"tid\":{tid},\"args\":{{",
                escape(&span.name),
                span.kind.cat(),
                span.t_start_s * 1e6,
                span.dur_s * 1e6,
            );
            // `span_id` is the span's ledger index — the key a
            // PROFILE_*.json metric row's `span_ids` refer back to.
            let _ = write!(
                out,
                "\"span_id\":{span_id},\"grid_blocks\":{},\"block_dim\":{},\"launches\":{}",
                span.grid_blocks, span.block_dim, span.launches
            );
            if let Some(p) = span.parent {
                let _ = write!(out, ",\"parent\":{p}");
            }
            if let Some(sm) = span.sm {
                let _ = write!(out, ",\"sm\":{sm}");
            }
            if let Some(seq) = span.seq {
                let _ = write!(out, ",\"seq\":{seq}");
            }
            if let Some(wave) = span.wave {
                let _ = write!(out, ",\"wave\":{wave}");
            }
            write_counters(&mut out, &span.counters);
            if let Some(b) = &span.breakdown {
                write_breakdown(&mut out, b);
            }
            out.push_str("}}");
        }
        (out, devices.len())
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

fn write_counters(out: &mut String, c: &Counters) {
    let _ = write!(
        out,
        ",\"counters\":{{\"warp_instructions\":{},\"lane_ops\":{},\"flops\":{},\
         \"mem_requests\":{},\"mem_transactions\":{},\"min_transactions\":{},\
         \"lane_hist\":[{}],\"dram_read_bytes\":{},\
         \"dram_write_bytes\":{},\"transactions\":{},\"tex_hits\":{},\"tex_misses\":{},\
         \"atomic_ops\":{},\"atomic_conflicts\":{},\"child_launches\":{},\"blocks\":{},\
         \"warps\":{},\"htod_bytes\":{},\"dtoh_bytes\":{}}}",
        c.warp_instructions,
        c.lane_ops,
        c.flops,
        c.mem_requests,
        c.mem_transactions,
        c.min_transactions,
        c.lane_hist.map(|v| v.to_string()).join(","),
        c.dram_read_bytes,
        c.dram_write_bytes,
        c.transactions,
        c.tex_hits,
        c.tex_misses,
        c.atomic_ops,
        c.atomic_conflicts,
        c.child_launches,
        c.blocks,
        c.warps,
        c.htod_bytes,
        c.dtoh_bytes,
    );
}

fn write_breakdown(out: &mut String, b: &TimeBreakdown) {
    let _ = write!(
        out,
        ",\"breakdown\":{{\"launch_s\":{:?},\"compute_s\":{:?},\"memory_s\":{:?},\
         \"latency_s\":{:?},\"dynamic_launch_s\":{:?},\"transfer_s\":{:?}}}",
        b.launch_s, b.compute_s, b.memory_s, b.latency_s, b.dynamic_launch_s, b.transfer_s,
    );
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Process-global capture flag read by [`crate::Device::new`].
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Arc<TraceLedger>> = OnceLock::new();

/// Make every *subsequently created* [`crate::Device`] record into the
/// shared [`global_ledger`]. Used by the bench binary's `--trace` flag,
/// whose experiments construct devices internally.
pub fn enable_global_capture() {
    GLOBAL_ENABLED.store(true, Ordering::SeqCst);
}

/// Stop attaching the global ledger to new devices (already-attached
/// devices keep recording).
pub fn disable_global_capture() {
    GLOBAL_ENABLED.store(false, Ordering::SeqCst);
}

/// Whether [`enable_global_capture`] is in effect.
pub fn global_capture_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::SeqCst)
}

/// The process-wide shared ledger (created on first use).
pub fn global_ledger() -> Arc<TraceLedger> {
    GLOBAL.get_or_init(|| Arc::new(TraceLedger::new())).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;
    use crate::engine::Device;
    use crate::warp::FULL_MASK;

    #[test]
    fn untraced_device_records_nothing() {
        let dev = Device::new(presets::gtx_titan());
        assert!(dev.ledger().is_none());
        dev.launch("k", 4, 64, &|_b| {});
    }

    #[test]
    fn launch_and_transfer_spans_reconcile() {
        let mut dev = Device::new(presets::gtx_titan());
        let ledger = dev.enable_tracing();
        let buf = dev.alloc(vec![1.0f64; 4096]);
        let r1 = dev.launch("read", 8, 128, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let base = warp.first_thread() % 2048;
                warp.read_coalesced(&buf, base, FULL_MASK);
            });
        });
        let r2 = dev.record_dtoh("readback", 4096 * 8);
        assert_eq!(r2.counters.dtoh_bytes, 4096 * 8);
        assert!(r2.breakdown.transfer_s > 0.0);
        let total = ledger.reconcile().expect("ledger reconciles");
        let manual = RunReport::sequence([&r1, &r2]);
        assert_eq!(total.counters, manual.counters);
        assert_eq!(total.time_s.to_bits(), manual.time_s.to_bits());
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn group_streams_sum_to_pooled_launch() {
        let mut dev = Device::new(presets::gtx_titan());
        let ledger = dev.enable_tracing();
        let buf = dev.alloc(vec![0u32; 1 << 14]);
        let mut group = dev.launch_group("grp");
        for i in 0..3 {
            group.add(&format!("k{i}"), 4 + i, 64, &|blk| {
                blk.for_each_warp(&mut |warp| {
                    let base = warp.first_thread() % (1 << 13);
                    warp.read_coalesced(&buf, base, FULL_MASK);
                });
            });
        }
        let report = group.finish();
        ledger.reconcile().expect("ledger reconciles");
        let spans = ledger.spans();
        let launch = spans.iter().find(|s| s.kind == SpanKind::Launch).unwrap();
        assert_eq!(launch.counters, report.counters);
        let streams: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Stream)
            .collect();
        assert_eq!(streams.len(), 3);
        let sum = Counters::sum(streams.iter().map(|s| &s.counters));
        assert_eq!(sum, report.counters);
    }

    #[test]
    fn chrome_json_is_stable_and_escapes() {
        let mut dev = Device::new(presets::gtx_titan());
        let ledger = dev.enable_tracing();
        dev.launch("weird\"name\\", 2, 32, &|_b| {});
        let a = ledger.chrome_trace_json();
        let b = ledger.chrome_trace_json();
        assert_eq!(a, b);
        assert!(a.contains("weird\\\"name\\\\"));
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn set_wave_stamps_spans_and_exports_in_args() {
        let mut dev = Device::new(presets::gtx_titan());
        let ledger = dev.enable_tracing();
        dev.launch("before", 2, 32, &|_b| {});
        ledger.set_wave(Some(42));
        dev.launch("during", 2, 32, &|_b| {});
        ledger.set_wave(None);
        dev.launch("after", 2, 32, &|_b| {});
        let spans = ledger.spans();
        assert_eq!(spans[0].wave, None);
        assert_eq!(spans[1].wave, Some(42));
        assert_eq!(spans[2].wave, None);
        let json = ledger.chrome_trace_json();
        assert!(json.contains("\"wave\":42"));
        assert_eq!(json.matches("\"wave\":").count(), 1);
        ledger
            .reconcile()
            .expect("wave stamps do not disturb accounting");
    }

    #[test]
    fn clear_resets_everything() {
        let mut dev = Device::new(presets::gtx_titan());
        let ledger = dev.enable_tracing();
        dev.launch("k", 2, 32, &|_b| {});
        assert!(!ledger.is_empty());
        ledger.clear();
        assert!(ledger.is_empty());
        assert_eq!(ledger.total(), RunReport::default());
        ledger.reconcile().expect("empty ledger reconciles");
    }
}
