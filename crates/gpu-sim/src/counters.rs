//! Execution counters and launch reports.

use serde::{Deserialize, Serialize};

/// Buckets of the active-lane divergence histogram
/// ([`Counters::lane_hist`]): bucket `b` counts masked warp operations
/// with `2^(b-1) < active lanes ≤ 2^b`, i.e. ≤1, ≤2, ≤4, ≤8, ≤16, ≤32.
pub const LANE_HIST_BINS: usize = 6;

/// Display labels for the [`Counters::lane_hist`] buckets.
pub const LANE_HIST_LABELS: [&str; LANE_HIST_BINS] = ["<=1", "<=2", "<=4", "<=8", "<=16", "<=32"];

/// Histogram bucket for a masked warp operation with `n_active` (≥ 1)
/// active lanes: `ceil(log2(n_active))`, so power-of-two bucket edges
/// match the bin kernels' row-length classes.
#[inline]
pub fn lane_hist_bin(n_active: u64) -> usize {
    debug_assert!((1..=32).contains(&n_active));
    (64 - (n_active - 1).leading_zeros()) as usize
}

/// Raw event counts accumulated while a kernel (and its dynamic children)
/// execute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Warp instructions issued (ALU, control, shuffles, and one per
    /// memory access) — SIMT issue slots, *independent of active lanes*.
    pub warp_instructions: u64,
    /// Active lanes summed over issued warp instructions. Divided by
    /// `32 * warp_instructions` this is Nsight's *warp execution
    /// efficiency* — the SIMT-lane waste ACSR's binning removes.
    pub lane_ops: u64,
    /// Useful floating-point operations (an FMA counts 2). Drives the
    /// roofline's arithmetic intensity; never affects modeled time.
    pub flops: u64,
    /// Global-memory load/store warp instructions (coalescer requests;
    /// texture reads and atomics are accounted separately).
    pub mem_requests: u64,
    /// DRAM transactions serving `mem_requests` (subset of
    /// `transactions`).
    pub mem_transactions: u64,
    /// Minimum transactions `mem_requests` could have needed if every
    /// request were perfectly coalesced: `ceil(active_lanes *
    /// elem_bytes / transaction_bytes)` per request. `min / actual` is
    /// Nsight's *coalescing (global load/store) efficiency*.
    pub min_transactions: u64,
    /// Active-lane histogram over masked warp operations (memory ops,
    /// texture reads, atomics, masked FMAs) — see [`lane_hist_bin`].
    pub lane_hist: [u64; LANE_HIST_BINS],
    /// DRAM bytes read (after coalescing into transactions and after the
    /// texture cache filtered hits).
    pub dram_read_bytes: u64,
    /// DRAM bytes written.
    pub dram_write_bytes: u64,
    /// Global-memory transactions issued (reads + writes).
    pub transactions: u64,
    /// Texture-path reads that hit in the per-SM cache.
    pub tex_hits: u64,
    /// Texture-path reads that missed to DRAM.
    pub tex_misses: u64,
    /// Atomic operations executed.
    pub atomic_ops: u64,
    /// Extra serialization passes due to intra-warp address conflicts.
    pub atomic_conflicts: u64,
    /// Dynamically launched child grids.
    pub child_launches: u64,
    /// Thread blocks executed.
    pub blocks: u64,
    /// Warps executed.
    pub warps: u64,
    /// Host→device bytes shipped over PCIe (modeled transfers).
    pub htod_bytes: u64,
    /// Device→host bytes read back over PCIe (modeled transfers).
    pub dtoh_bytes: u64,
}

impl Counters {
    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Texture hit rate in [0, 1]; `None` when no texture reads occurred
    /// (an undefined ratio — profiler output prints it as "n/a" rather
    /// than a misleading 1.0).
    pub fn tex_hit_rate(&self) -> Option<f64> {
        ratio(self.tex_hits, self.tex_hits + self.tex_misses)
    }

    /// Nsight's warp execution efficiency: average fraction of active
    /// lanes per issued warp instruction. `None` when nothing issued.
    pub fn warp_execution_efficiency(&self) -> Option<f64> {
        ratio(self.lane_ops, 32 * self.warp_instructions)
    }

    /// Global load/store coalescing efficiency: minimum possible DRAM
    /// transactions over the ones actually issued. `None` when no
    /// global-memory requests were made.
    pub fn coalescing_efficiency(&self) -> Option<f64> {
        ratio(self.min_transactions, self.mem_transactions)
    }

    /// Atomic serialization factor: average passes the L2 atomic unit
    /// executes per atomic operation (1.0 ⇔ conflict-free). `None` when
    /// no atomics ran.
    pub fn atomic_serialization(&self) -> Option<f64> {
        if self.atomic_ops == 0 {
            None
        } else {
            Some(1.0 + self.atomic_conflicts as f64 / self.atomic_ops as f64)
        }
    }

    /// Reduce a sequence of per-shard counters in iteration order (the
    /// engine passes shards in SM order, making the merge deterministic
    /// regardless of which host worker ran which shard).
    pub fn sum<'a>(shards: impl IntoIterator<Item = &'a Counters>) -> Counters {
        let mut acc = Counters::default();
        for c in shards {
            acc.merge(c);
        }
        acc
    }

    /// Elementwise accumulate.
    pub fn merge(&mut self, o: &Counters) {
        self.warp_instructions += o.warp_instructions;
        self.lane_ops += o.lane_ops;
        self.flops += o.flops;
        self.mem_requests += o.mem_requests;
        self.mem_transactions += o.mem_transactions;
        self.min_transactions += o.min_transactions;
        for (b, ob) in self.lane_hist.iter_mut().zip(o.lane_hist.iter()) {
            *b += ob;
        }
        self.dram_read_bytes += o.dram_read_bytes;
        self.dram_write_bytes += o.dram_write_bytes;
        self.transactions += o.transactions;
        self.tex_hits += o.tex_hits;
        self.tex_misses += o.tex_misses;
        self.atomic_ops += o.atomic_ops;
        self.atomic_conflicts += o.atomic_conflicts;
        self.child_launches += o.child_launches;
        self.blocks += o.blocks;
        self.warps += o.warps;
        self.htod_bytes += o.htod_bytes;
        self.dtoh_bytes += o.dtoh_bytes;
    }

    /// Elementwise difference against an earlier snapshot of the same
    /// (monotonically growing) counter set. Panics on non-monotonic
    /// input — in every build profile: bare `-` would only check in
    /// debug and silently wrap in release, so each field goes through
    /// `checked_sub`.
    pub fn delta_from(&self, earlier: &Counters) -> Counters {
        fn sub(field: &str, now: u64, then: u64) -> u64 {
            now.checked_sub(then).unwrap_or_else(|| {
                panic!("non-monotonic counter snapshot: {field} went {then} -> {now}")
            })
        }
        let mut lane_hist = [0u64; LANE_HIST_BINS];
        for (i, slot) in lane_hist.iter_mut().enumerate() {
            *slot = sub("lane_hist", self.lane_hist[i], earlier.lane_hist[i]);
        }
        Counters {
            warp_instructions: sub(
                "warp_instructions",
                self.warp_instructions,
                earlier.warp_instructions,
            ),
            lane_ops: sub("lane_ops", self.lane_ops, earlier.lane_ops),
            flops: sub("flops", self.flops, earlier.flops),
            mem_requests: sub("mem_requests", self.mem_requests, earlier.mem_requests),
            mem_transactions: sub(
                "mem_transactions",
                self.mem_transactions,
                earlier.mem_transactions,
            ),
            min_transactions: sub(
                "min_transactions",
                self.min_transactions,
                earlier.min_transactions,
            ),
            lane_hist,
            dram_read_bytes: sub(
                "dram_read_bytes",
                self.dram_read_bytes,
                earlier.dram_read_bytes,
            ),
            dram_write_bytes: sub(
                "dram_write_bytes",
                self.dram_write_bytes,
                earlier.dram_write_bytes,
            ),
            transactions: sub("transactions", self.transactions, earlier.transactions),
            tex_hits: sub("tex_hits", self.tex_hits, earlier.tex_hits),
            tex_misses: sub("tex_misses", self.tex_misses, earlier.tex_misses),
            atomic_ops: sub("atomic_ops", self.atomic_ops, earlier.atomic_ops),
            atomic_conflicts: sub(
                "atomic_conflicts",
                self.atomic_conflicts,
                earlier.atomic_conflicts,
            ),
            child_launches: sub(
                "child_launches",
                self.child_launches,
                earlier.child_launches,
            ),
            blocks: sub("blocks", self.blocks, earlier.blocks),
            warps: sub("warps", self.warps, earlier.warps),
            htod_bytes: sub("htod_bytes", self.htod_bytes, earlier.htod_bytes),
            dtoh_bytes: sub("dtoh_bytes", self.dtoh_bytes, earlier.dtoh_bytes),
        }
    }
}

/// `num / den` as `Some` fraction, `None` when the denominator is zero
/// (the profiler's "n/a").
fn ratio(num: u64, den: u64) -> Option<f64> {
    if den == 0 {
        None
    } else {
        Some(num as f64 / den as f64)
    }
}

/// Where a launch's modeled time went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Host-side launch overhead.
    pub launch_s: f64,
    /// Throughput-bound compute time (max over SMs of issue time).
    pub compute_s: f64,
    /// Bandwidth-bound memory time.
    pub memory_s: f64,
    /// Latency-bound critical-path time (longest warp).
    pub latency_s: f64,
    /// Dynamic-parallelism launch overhead (incl. pending-limit stalls).
    pub dynamic_launch_s: f64,
    /// Modeled PCIe transfer time (H2D uploads and D2H readbacks).
    pub transfer_s: f64,
}

/// Result of one simulated kernel launch (or a merged sequence).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Kernel name(s).
    pub name: String,
    /// Modeled execution time, seconds.
    pub time_s: f64,
    /// Raw event counts.
    pub counters: Counters,
    /// Component times (the max of compute/memory/latency plus overheads
    /// forms `time_s`).
    pub breakdown: TimeBreakdown,
    /// Number of kernel launches merged into this report.
    pub launches: u32,
}

impl RunReport {
    /// GFLOP/s given `flops` useful floating-point operations
    /// (SpMV: `2 * nnz`).
    pub fn gflops(&self, flops: u64) -> f64 {
        if self.time_s <= 0.0 {
            return 0.0;
        }
        flops as f64 / self.time_s / 1e9
    }

    /// Combine with another launch executed *sequentially after* this one.
    pub fn then(mut self, other: &RunReport) -> RunReport {
        if self.name.is_empty() {
            self.name = other.name.clone();
        } else if !other.name.is_empty() && self.launches < 8 {
            self.name.push('+');
            self.name.push_str(&other.name);
        }
        self.time_s += other.time_s;
        self.counters.merge(&other.counters);
        self.breakdown.launch_s += other.breakdown.launch_s;
        self.breakdown.compute_s += other.breakdown.compute_s;
        self.breakdown.memory_s += other.breakdown.memory_s;
        self.breakdown.latency_s += other.breakdown.latency_s;
        self.breakdown.dynamic_launch_s += other.breakdown.dynamic_launch_s;
        self.breakdown.transfer_s += other.breakdown.transfer_s;
        self.launches += other.launches;
        self
    }

    /// Merge a sequence of reports (empty sequence ⇒ zero report).
    pub fn sequence<'a>(reports: impl IntoIterator<Item = &'a RunReport>) -> RunReport {
        reports
            .into_iter()
            .fold(RunReport::default(), |acc, r| acc.then(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Counters {
            warp_instructions: 10,
            dram_read_bytes: 100,
            ..Default::default()
        };
        let b = Counters {
            warp_instructions: 5,
            dram_write_bytes: 50,
            tex_hits: 3,
            tex_misses: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.warp_instructions, 15);
        assert_eq!(a.dram_bytes(), 150);
        assert_eq!(a.tex_hit_rate(), Some(0.75));
    }

    #[test]
    fn undefined_ratios_are_none() {
        let c = Counters::default();
        assert_eq!(c.tex_hit_rate(), None);
        assert_eq!(c.warp_execution_efficiency(), None);
        assert_eq!(c.coalescing_efficiency(), None);
        assert_eq!(c.atomic_serialization(), None);
    }

    #[test]
    fn derived_ratios_compute() {
        let c = Counters {
            warp_instructions: 10,
            lane_ops: 160,
            mem_requests: 4,
            mem_transactions: 16,
            min_transactions: 8,
            atomic_ops: 32,
            atomic_conflicts: 16,
            ..Default::default()
        };
        assert_eq!(c.warp_execution_efficiency(), Some(0.5));
        assert_eq!(c.coalescing_efficiency(), Some(0.5));
        assert_eq!(c.atomic_serialization(), Some(1.5));
    }

    #[test]
    fn lane_hist_bin_matches_power_of_two_edges() {
        assert_eq!(lane_hist_bin(1), 0);
        assert_eq!(lane_hist_bin(2), 1);
        assert_eq!(lane_hist_bin(3), 2);
        assert_eq!(lane_hist_bin(4), 2);
        assert_eq!(lane_hist_bin(5), 3);
        assert_eq!(lane_hist_bin(8), 3);
        assert_eq!(lane_hist_bin(9), 4);
        assert_eq!(lane_hist_bin(16), 4);
        assert_eq!(lane_hist_bin(17), 5);
        assert_eq!(lane_hist_bin(32), 5);
    }

    #[test]
    fn delta_from_subtracts_every_field() {
        let mut earlier = Counters {
            warp_instructions: 5,
            lane_ops: 100,
            flops: 7,
            ..Default::default()
        };
        earlier.lane_hist[3] = 2;
        let mut now = earlier;
        now.warp_instructions += 10;
        now.lane_ops += 20;
        now.flops += 30;
        now.lane_hist[3] += 4;
        let d = now.delta_from(&earlier);
        assert_eq!(d.warp_instructions, 10);
        assert_eq!(d.lane_ops, 20);
        assert_eq!(d.flops, 30);
        assert_eq!(d.lane_hist[3], 4);
        assert_eq!(d.lane_hist[0], 0);
    }

    #[test]
    #[should_panic(expected = "non-monotonic counter snapshot")]
    fn delta_from_panics_on_non_monotonic_input() {
        // A snapshot with *more* events than "now" — bare subtraction
        // would wrap in release builds; delta_from must panic instead.
        let now = Counters {
            blocks: 3,
            ..Default::default()
        };
        let earlier = Counters {
            blocks: 4,
            ..Default::default()
        };
        let _ = now.delta_from(&earlier);
    }

    #[test]
    fn gflops_computes_rate() {
        let r = RunReport {
            time_s: 1e-3,
            ..Default::default()
        };
        assert!((r.gflops(2_000_000) - 2.0).abs() < 1e-9);
        let zero = RunReport::default();
        assert_eq!(zero.gflops(100), 0.0);
    }

    #[test]
    fn then_sums_times_and_launches() {
        let a = RunReport {
            name: "k1".into(),
            time_s: 1.0,
            launches: 1,
            ..Default::default()
        };
        let b = RunReport {
            name: "k2".into(),
            time_s: 2.0,
            launches: 1,
            ..Default::default()
        };
        let c = a.then(&b);
        assert_eq!(c.time_s, 3.0);
        assert_eq!(c.launches, 2);
        assert_eq!(c.name, "k1+k2");
    }

    #[test]
    fn sequence_of_none_is_zero() {
        let r = RunReport::sequence([]);
        assert_eq!(r.time_s, 0.0);
        assert_eq!(r.launches, 0);
    }
}
