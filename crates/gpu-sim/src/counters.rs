//! Execution counters and launch reports.

use serde::{Deserialize, Serialize};

/// Raw event counts accumulated while a kernel (and its dynamic children)
/// execute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Warp instructions issued (ALU, control, shuffles, and one per
    /// memory access) — SIMT issue slots, *independent of active lanes*.
    pub warp_instructions: u64,
    /// DRAM bytes read (after coalescing into transactions and after the
    /// texture cache filtered hits).
    pub dram_read_bytes: u64,
    /// DRAM bytes written.
    pub dram_write_bytes: u64,
    /// Global-memory transactions issued (reads + writes).
    pub transactions: u64,
    /// Texture-path reads that hit in the per-SM cache.
    pub tex_hits: u64,
    /// Texture-path reads that missed to DRAM.
    pub tex_misses: u64,
    /// Atomic operations executed.
    pub atomic_ops: u64,
    /// Extra serialization passes due to intra-warp address conflicts.
    pub atomic_conflicts: u64,
    /// Dynamically launched child grids.
    pub child_launches: u64,
    /// Thread blocks executed.
    pub blocks: u64,
    /// Warps executed.
    pub warps: u64,
    /// Host→device bytes shipped over PCIe (modeled transfers).
    pub htod_bytes: u64,
    /// Device→host bytes read back over PCIe (modeled transfers).
    pub dtoh_bytes: u64,
}

impl Counters {
    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Texture hit rate in [0, 1]; 1.0 when no texture reads occurred.
    pub fn tex_hit_rate(&self) -> f64 {
        let total = self.tex_hits + self.tex_misses;
        if total == 0 {
            1.0
        } else {
            self.tex_hits as f64 / total as f64
        }
    }

    /// Reduce a sequence of per-shard counters in iteration order (the
    /// engine passes shards in SM order, making the merge deterministic
    /// regardless of which host worker ran which shard).
    pub fn sum<'a>(shards: impl IntoIterator<Item = &'a Counters>) -> Counters {
        let mut acc = Counters::default();
        for c in shards {
            acc.merge(c);
        }
        acc
    }

    /// Elementwise accumulate.
    pub fn merge(&mut self, o: &Counters) {
        self.warp_instructions += o.warp_instructions;
        self.dram_read_bytes += o.dram_read_bytes;
        self.dram_write_bytes += o.dram_write_bytes;
        self.transactions += o.transactions;
        self.tex_hits += o.tex_hits;
        self.tex_misses += o.tex_misses;
        self.atomic_ops += o.atomic_ops;
        self.atomic_conflicts += o.atomic_conflicts;
        self.child_launches += o.child_launches;
        self.blocks += o.blocks;
        self.warps += o.warps;
        self.htod_bytes += o.htod_bytes;
        self.dtoh_bytes += o.dtoh_bytes;
    }

    /// Elementwise difference against an earlier snapshot of the same
    /// (monotonically growing) counter set. Panics on non-monotonic input.
    pub fn delta_from(&self, earlier: &Counters) -> Counters {
        Counters {
            warp_instructions: self.warp_instructions - earlier.warp_instructions,
            dram_read_bytes: self.dram_read_bytes - earlier.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes - earlier.dram_write_bytes,
            transactions: self.transactions - earlier.transactions,
            tex_hits: self.tex_hits - earlier.tex_hits,
            tex_misses: self.tex_misses - earlier.tex_misses,
            atomic_ops: self.atomic_ops - earlier.atomic_ops,
            atomic_conflicts: self.atomic_conflicts - earlier.atomic_conflicts,
            child_launches: self.child_launches - earlier.child_launches,
            blocks: self.blocks - earlier.blocks,
            warps: self.warps - earlier.warps,
            htod_bytes: self.htod_bytes - earlier.htod_bytes,
            dtoh_bytes: self.dtoh_bytes - earlier.dtoh_bytes,
        }
    }
}

/// Where a launch's modeled time went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Host-side launch overhead.
    pub launch_s: f64,
    /// Throughput-bound compute time (max over SMs of issue time).
    pub compute_s: f64,
    /// Bandwidth-bound memory time.
    pub memory_s: f64,
    /// Latency-bound critical-path time (longest warp).
    pub latency_s: f64,
    /// Dynamic-parallelism launch overhead (incl. pending-limit stalls).
    pub dynamic_launch_s: f64,
    /// Modeled PCIe transfer time (H2D uploads and D2H readbacks).
    pub transfer_s: f64,
}

/// Result of one simulated kernel launch (or a merged sequence).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Kernel name(s).
    pub name: String,
    /// Modeled execution time, seconds.
    pub time_s: f64,
    /// Raw event counts.
    pub counters: Counters,
    /// Component times (the max of compute/memory/latency plus overheads
    /// forms `time_s`).
    pub breakdown: TimeBreakdown,
    /// Number of kernel launches merged into this report.
    pub launches: u32,
}

impl RunReport {
    /// GFLOP/s given `flops` useful floating-point operations
    /// (SpMV: `2 * nnz`).
    pub fn gflops(&self, flops: u64) -> f64 {
        if self.time_s <= 0.0 {
            return 0.0;
        }
        flops as f64 / self.time_s / 1e9
    }

    /// Combine with another launch executed *sequentially after* this one.
    pub fn then(mut self, other: &RunReport) -> RunReport {
        if self.name.is_empty() {
            self.name = other.name.clone();
        } else if !other.name.is_empty() && self.launches < 8 {
            self.name.push('+');
            self.name.push_str(&other.name);
        }
        self.time_s += other.time_s;
        self.counters.merge(&other.counters);
        self.breakdown.launch_s += other.breakdown.launch_s;
        self.breakdown.compute_s += other.breakdown.compute_s;
        self.breakdown.memory_s += other.breakdown.memory_s;
        self.breakdown.latency_s += other.breakdown.latency_s;
        self.breakdown.dynamic_launch_s += other.breakdown.dynamic_launch_s;
        self.breakdown.transfer_s += other.breakdown.transfer_s;
        self.launches += other.launches;
        self
    }

    /// Merge a sequence of reports (empty sequence ⇒ zero report).
    pub fn sequence<'a>(reports: impl IntoIterator<Item = &'a RunReport>) -> RunReport {
        reports
            .into_iter()
            .fold(RunReport::default(), |acc, r| acc.then(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Counters {
            warp_instructions: 10,
            dram_read_bytes: 100,
            ..Default::default()
        };
        let b = Counters {
            warp_instructions: 5,
            dram_write_bytes: 50,
            tex_hits: 3,
            tex_misses: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.warp_instructions, 15);
        assert_eq!(a.dram_bytes(), 150);
        assert_eq!(a.tex_hit_rate(), 0.75);
    }

    #[test]
    fn hit_rate_defaults_to_one() {
        assert_eq!(Counters::default().tex_hit_rate(), 1.0);
    }

    #[test]
    fn gflops_computes_rate() {
        let r = RunReport {
            time_s: 1e-3,
            ..Default::default()
        };
        assert!((r.gflops(2_000_000) - 2.0).abs() < 1e-9);
        let zero = RunReport::default();
        assert_eq!(zero.gflops(100), 0.0);
    }

    #[test]
    fn then_sums_times_and_launches() {
        let a = RunReport {
            name: "k1".into(),
            time_s: 1.0,
            launches: 1,
            ..Default::default()
        };
        let b = RunReport {
            name: "k2".into(),
            time_s: 2.0,
            launches: 1,
            ..Default::default()
        };
        let c = a.then(&b);
        assert_eq!(c.time_s, 3.0);
        assert_eq!(c.launches, 2);
        assert_eq!(c.name, "k1+k2");
    }

    #[test]
    fn sequence_of_none_is_zero() {
        let r = RunReport::sequence([]);
        assert_eq!(r.time_s, 0.0);
        assert_eq!(r.launches, 0);
    }
}
