//! Launch engine and timing model.
//!
//! A launch executes every block of the grid (functionally, on the host),
//! attributing each block to an SM round-robin. Afterwards the model
//! combines three bounds into a kernel time:
//!
//! ```text
//! t_comp    = max over SMs of  max(issue_slots / IPC, longest_warp_critical_path) / clock
//! t_mem     = DRAM bytes / bandwidth
//! t         = t_launch + max(t_comp, t_mem) + t_dynamic_launch
//! ```
//!
//! * `issue_slots / IPC` is the throughput bound — SIMT issue pressure,
//!   including every wasted lane.
//! * the *critical path* term is the latency bound — a single warp
//!   grinding through a 20 000-non-zero row cannot hide its memory
//!   latency once its SM has nothing else left, which is exactly the
//!   long-tail pathology of Figure 3 that dynamic parallelism removes.
//! * dynamic child launches pay device-side overhead, amortized over the
//!   hardware launch units, plus a stall penalty beyond the pending-launch
//!   limit (`cudaLimitDevRuntimePendingLaunchCount`, §III-B).
//!
//! ## Discrete-event sharded host execution
//!
//! Execution is *always* partitioned into one shard per SM: shard `s`
//! runs exactly the blocks the round-robin scheduler places on SM `s`,
//! in ascending block order, against shard-private counters and texture
//! caches. CUDA guarantees blocks of a grid are independent and may run
//! in any order, so this partition is semantically faithful — and it
//! makes the host-side worker count ([`sim_threads`]) pure mechanism:
//! whether one thread walks the shards in order or eight threads claim
//! them from a pool, every shard computes the same numbers and the
//! SM-ordered merge in `assemble_report` produces a bit-identical
//! [`RunReport`].
//!
//! The launch scheduler is discrete-event (see [`crate::event`]): each
//! SM is a [`crate::event::Component`] (`SmComponent`) with its own
//! shard and pending-child queue, driven off a min-heap event queue on
//! a shared `u64` cycle clock. A launch schedules wave 0 — the parent
//! grid — at cycle 0 for every SM that owns at least one block; ticking
//! a frontier executes those SMs' block slices (on up to
//! [`effective_workers`] host workers), and the children they queue are
//! merged in SM order into the next wave, scheduled after the frontier's
//! longest issue-slot tick. The device itself keeps a persistent cycle
//! timeline whose PCIe copy engine is another component
//! ([`crate::event::PcieLink`]); kernel launches and transfers advance
//! it. Per-launch state (shards, queues, wave buffers) lives in a pooled
//! `LaunchArena` reused across launches, so the hot loop allocates
//! nothing.
//!
//! Dynamic child grids are *queued* at launch and executed as follow-on
//! waves after the parent grid's blocks drain: the per-shard queues are
//! merged in SM order (deterministic at any worker count and any
//! event-queue tie-break order) and each child block then runs on the
//! shard of the SM it is attributed to, `(block + seq) % SMs`. Because
//! blocks attributed to SM `s` always execute on shard `s` — for
//! top-level grids and child grids alike — shard `s`'s texture cache
//! sees exactly the access stream SM `s`'s cache sees in a fully
//! sequential walk, so child grids reuse the lines earlier kernels of
//! the same launch group already pulled.

use crate::arena::LaunchArena;
use crate::buffer::{DevCopy, DeviceBuffer};
use crate::cache::SetAssocCache;
use crate::config::DeviceConfig;
use crate::counters::{Counters, RunReport, TimeBreakdown};
use crate::event::{CompId, Component, EventQueue, PcieLink};
use crate::trace::{self, ChildRec, StreamRec, TraceLedger};
use crate::warp::{WarpCtx, WARP};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Kernel body: called once per thread block. Kernels must be `Fn + Sync`
/// because blocks of one grid may execute on several host threads; all
/// writes to simulation state go through [`crate::WarpCtx`] and
/// [`DeviceBuffer`]'s interior mutability (see the buffer module's kernel
/// data contract). The pinned third lifetime lets kernel bodies launch
/// child grids whose closures borrow from the same scope the kernel
/// itself borrows from.
pub type KernelFn<'a> = &'a (dyn for<'r, 'c> Fn(&mut BlockCtx<'r, 'c, 'a>) + Sync);

/// A dynamically launched child grid, queued by [`WarpCtx::launch_child`]
/// and executed as part of the next follow-on wave (module docs).
pub(crate) struct PendingChild<'k> {
    /// Launch sequence number of the owning shard at launch time;
    /// rotates the child's block→SM attribution.
    pub(crate) seq: usize,
    pub(crate) grid_blocks: usize,
    pub(crate) block_dim: usize,
    pub(crate) kernel: Box<dyn for<'r, 'c> Fn(&mut BlockCtx<'r, 'c, 'k>) + Send + Sync + 'k>,
}

/// Host-thread override set by [`set_sim_threads`] (0 = no override).
static SIM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the number of host threads simulated launches execute on.
/// `0` clears the override, returning to `ACSR_SIM_THREADS` / the
/// machine's available parallelism. `1` forces the sequential path.
///
/// Thread count is pure mechanism: reports are bit-identical at every
/// width (see the module docs), so this knob only trades wall-clock
/// simulation speed.
pub fn set_sim_threads(n: usize) {
    SIM_THREADS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Host threads a launch will use: the [`set_sim_threads`] override if
/// set, else the `ACSR_SIM_THREADS` environment variable (read once), else
/// the machine's available parallelism.
pub fn sim_threads() -> usize {
    match SIM_THREADS_OVERRIDE.load(Ordering::SeqCst) {
        0 => env_or_auto_threads(),
        n => n,
    }
}

fn env_or_auto_threads() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    let from_env = *ENV.get_or_init(|| {
        std::env::var("ACSR_SIM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
    });
    from_env
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Host-core override set by [`override_host_cores`] (0 = no override).
static HOST_CORES_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the detected host core count (`0` clears the override).
/// Test/bench knob for exercising the single-core fan-out short-circuit
/// deterministically on any machine.
pub fn override_host_cores(n: usize) {
    HOST_CORES_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Physical cores available to this process (detected once), unless
/// overridden via [`override_host_cores`].
pub fn host_cores() -> usize {
    match HOST_CORES_OVERRIDE.load(Ordering::SeqCst) {
        0 => {
            static CORES: OnceLock<usize> = OnceLock::new();
            *CORES.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        }
        n => n,
    }
}

/// Grids below this many threads run their shards sequentially even when
/// more workers are requested: the pool round-trip (wake, claim, park)
/// costs more host time than the work it distributes.
const PAR_MIN_GRID_THREADS: usize = 16 * 1024;

/// Host workers a wave actually fans out to. Requesting more workers
/// than can help is where the historical `workers>1` *slowdown* came
/// from: on a single-core host, or for a small grid, the pool round-trip
/// is pure overhead, so those cases short-circuit to the sequential
/// path. Worker count never affects results (see the module docs), so
/// this is purely a wall-clock policy.
pub fn effective_workers(requested: usize, active_shards: usize, grid_threads: usize) -> usize {
    if requested <= 1
        || active_shards <= 1
        || grid_threads < PAR_MIN_GRID_THREADS
        || host_cores() <= 1
    {
        1
    } else {
        requested.min(active_shards)
    }
}

/// Per-SM slice of an in-flight launch: the blocks scheduled on one SM
/// plus every model structure they touch. Shards are mutated by exactly
/// one host worker at a time and merged in SM order afterwards.
pub(crate) struct ShardState {
    /// The SM whose blocks this shard executes.
    pub(crate) home_sm: usize,
    pub(crate) counters: Counters,
    /// Issue slots attributed per SM (full length: child blocks launched
    /// from this shard may be attributed to any SM).
    pub(crate) sm_instr: Vec<u64>,
    /// Longest warp critical path attributed per SM.
    pub(crate) sm_crit: Vec<u64>,
    /// SM `home_sm`'s texture cache, allocated on first touch. Every
    /// block attributed to `home_sm` executes on this shard — top-level
    /// blocks directly, child blocks via the follow-on wave — so the
    /// cache's access stream matches a sequential round-robin walk
    /// exactly, at any host worker count.
    pub(crate) tex_cache: Option<SetAssocCache>,
    /// Child-launch sequence of this shard's parent blocks. Shard-private
    /// (hence deterministic); pre-incremented per launch so the first
    /// child grid gets `seq == 1`, matching a global launch counter
    /// whenever a single block does the launching.
    pub(crate) child_seq: usize,
    /// Per-child-grid counter slices executed on this shard, recorded
    /// only while tracing (empty otherwise).
    pub(crate) child_recs: Vec<ChildRec>,
}

impl ShardState {
    pub(crate) fn new(home_sm: usize, sm_count: usize) -> Self {
        ShardState {
            home_sm,
            counters: Counters::default(),
            sm_instr: vec![0; sm_count],
            sm_crit: vec![0; sm_count],
            tex_cache: None,
            child_seq: 0,
            child_recs: Vec::new(),
        }
    }

    /// Restore the logical fresh-launch state without dropping any
    /// allocation (the arena reuses shards across launches). A flushed
    /// texture cache is observationally identical to a new one, so a
    /// reset shard behaves exactly like `ShardState::new`.
    pub(crate) fn reset(&mut self) {
        self.counters = Counters::default();
        self.sm_instr.fill(0);
        self.sm_crit.fill(0);
        if let Some(cache) = &mut self.tex_cache {
            cache.flush();
        }
        self.child_seq = 0;
        self.child_recs.clear();
    }

    /// This shard's texture cache (SM `home_sm`'s cache).
    pub(crate) fn cache_mut(&mut self, cfg: &DeviceConfig) -> &mut SetAssocCache {
        self.tex_cache.get_or_insert_with(|| {
            SetAssocCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes, cfg.tex_ways)
        })
    }
}

/// Mutable state of one in-flight launch (shared with child grids):
/// a pooled arena holding one `ShardState` per SM, in SM order, plus
/// the event scheduler's storage.
pub struct RunState<'d> {
    pub(crate) cfg: &'d DeviceConfig,
    pub(crate) arena: LaunchArena,
    /// Whether the owning device has a trace ledger attached (enables
    /// the per-stream / per-child counter snapshots).
    pub(crate) trace: bool,
}

/// Per-block kernel context.
pub struct BlockCtx<'r, 'd, 'k> {
    pub(crate) shard: &'r mut ShardState,
    /// Child grids this shard queued for the next wave.
    pub(crate) pending: &'r mut Vec<PendingChild<'k>>,
    pub(crate) cfg: &'d DeviceConfig,
    pub(crate) block_idx: usize,
    pub(crate) block_dim: usize,
    pub(crate) sm: usize,
}

impl<'r, 'd, 'k> BlockCtx<'r, 'd, 'k> {
    /// Block index within the grid.
    pub fn block_idx(&self) -> usize {
        self.block_idx
    }

    /// Threads per block of this launch.
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Global thread id of this block's thread 0.
    pub fn thread_offset(&self) -> usize {
        self.block_idx * self.block_dim
    }

    /// Number of warps in this block.
    pub fn warp_count(&self) -> usize {
        self.block_dim.div_ceil(WARP)
    }

    /// SM this block was scheduled on.
    pub fn sm(&self) -> usize {
        self.sm
    }

    /// Run `f` once for every warp of this block. Warps of one block run
    /// on one host thread, so `f` may be a stateful `FnMut`. Generic
    /// (rather than `&mut dyn FnMut`) so the warp loop monomorphizes and
    /// inlines into the kernel body; `&mut` closures and
    /// `&mut dyn FnMut` both still work unchanged.
    pub fn for_each_warp<F>(&mut self, f: &mut F)
    where
        F: FnMut(&mut WarpCtx<'_, 'd, 'k>) + ?Sized,
    {
        // Config-derived latency charges, hoisted so the per-access charge
        // paths never divide.
        let mem_lat = (self.cfg.mem_latency_cycles as f64 / self.cfg.mlp).ceil() as u64;
        let tex_hit_lat = (self.cfg.tex_hit_latency_cycles as f64 / self.cfg.mlp).ceil() as u64;
        for w in 0..self.warp_count() {
            let mut warp = WarpCtx {
                block_idx: self.block_idx,
                warp_in_block: w,
                block_dim: self.block_dim,
                sm: self.sm,
                instr: 0,
                crit: 0,
                lanes: 0,
                mem_lat,
                tex_hit_lat,
                shard: &mut *self.shard,
                pending: &mut *self.pending,
                cfg: self.cfg,
            };
            f(&mut warp);
        }
    }
}

/// Execute the blocks of one shard: every block the round-robin scheduler
/// maps to `shard.home_sm`, in ascending block order. Child launches land
/// in `pending` for the follow-on wave.
fn run_shard<'k>(
    cfg: &DeviceConfig,
    shard: &mut ShardState,
    pending: &mut Vec<PendingChild<'k>>,
    grid_blocks: usize,
    block_dim: usize,
    sm_offset: usize,
    kernel: KernelFn<'k>,
) {
    let sms = cfg.sm_count;
    // Smallest b with (b + sm_offset) % sms == home_sm.
    let mut b = (shard.home_sm + sms - sm_offset % sms) % sms;
    while b < grid_blocks {
        shard.counters.blocks += 1;
        let home = shard.home_sm;
        let mut blk = BlockCtx {
            shard: &mut *shard,
            pending: &mut *pending,
            cfg,
            block_idx: b,
            block_dim,
            sm: home,
        };
        kernel(&mut blk);
        b += sms;
    }
}

/// Execute one shard's slice of a child wave: for every queued child
/// grid, in wave order, the blocks attributed to `shard.home_sm`
/// (`(block + seq) % SMs == home_sm`) in ascending block order.
/// Grandchild launches land in `next`.
fn run_wave_shard<'k>(
    cfg: &DeviceConfig,
    shard: &mut ShardState,
    wave: &[PendingChild<'k>],
    next: &mut Vec<PendingChild<'k>>,
    trace: bool,
) {
    let sms = cfg.sm_count;
    for child in wave {
        let before = if trace { Some(shard.counters) } else { None };
        let mut b = (shard.home_sm + sms - child.seq % sms) % sms;
        while b < child.grid_blocks {
            shard.counters.blocks += 1;
            let home = shard.home_sm;
            let mut blk = BlockCtx {
                shard: &mut *shard,
                pending: &mut *next,
                cfg,
                block_idx: b,
                block_dim: child.block_dim,
                sm: home,
            };
            (child.kernel)(&mut blk);
            b += sms;
        }
        if let Some(before) = before {
            let delta = shard.counters.delta_from(&before);
            // Only record slices that actually ran blocks here; the
            // block→shard attribution is width-independent, so the
            // recorded set is too.
            if delta.blocks > 0 {
                shard.child_recs.push(ChildRec {
                    seq: child.seq,
                    sm: shard.home_sm,
                    grid_blocks: child.grid_blocks,
                    block_dim: child.block_dim,
                    counters: delta,
                });
            }
        }
    }
}

/// Smallest block index the round-robin scheduler places on `home_sm`
/// for a grid whose block 0 lands on SM `offset % sms`.
#[inline]
fn first_block(home_sm: usize, offset: usize, sms: usize) -> usize {
    (home_sm + sms - offset % sms) % sms
}

/// Work assigned to the SM components for one event frontier.
enum SmWork<'w, 'k> {
    /// Wave 0: the parent grid itself.
    Grid {
        grid_blocks: usize,
        block_dim: usize,
        sm_offset: usize,
        kernel: KernelFn<'k>,
    },
    /// A follow-on wave of queued child grids.
    Children(&'w [PendingChild<'k>]),
}

/// Read-only tick context shared by every SM component of one frontier.
struct SmCtx<'w, 'k> {
    cfg: &'w DeviceConfig,
    trace: bool,
    work: &'w SmWork<'w, 'k>,
}

impl<'w, 'k> Clone for SmCtx<'w, 'k> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'w, 'k> Copy for SmCtx<'w, 'k> {}

/// One SM as a discrete-event component: its shard plus the child-grid
/// queue it feeds. Ticking it executes the SM's slice of the frontier's
/// work (the parent grid or a child wave); the returned duration is the
/// issue slots the slice consumed, which places the next wave on the
/// cycle clock.
struct SmComponent<'r, 'k> {
    shard: &'r mut ShardState,
    /// Child grids this SM queued for the next wave.
    pending: Vec<PendingChild<'k>>,
    /// Cycle this component is scheduled to tick at (`None` = idle).
    wake: Option<u64>,
}

impl<'r, 'k> Component for SmComponent<'r, 'k> {
    type Ctx<'w>
        = SmCtx<'w, 'k>
    where
        Self: 'w;

    fn next_tick(&self) -> Option<u64> {
        self.wake
    }

    fn tick<'w>(&'w mut self, _now: u64, ctx: SmCtx<'w, 'k>) -> u64 {
        self.wake = None;
        let before = self.shard.counters.warp_instructions;
        match ctx.work {
            SmWork::Grid {
                grid_blocks,
                block_dim,
                sm_offset,
                kernel,
            } => run_shard(
                ctx.cfg,
                self.shard,
                &mut self.pending,
                *grid_blocks,
                *block_dim,
                *sm_offset,
                *kernel,
            ),
            SmWork::Children(wave) => {
                run_wave_shard(ctx.cfg, self.shard, wave, &mut self.pending, ctx.trace)
            }
        }
        self.shard.counters.warp_instructions - before
    }
}

/// Tick every frontier component, on up to `width` host workers, and
/// return the longest tick duration. Shards are independent, so the
/// result is identical at any width and any frontier order.
fn tick_frontier<'r, 'k>(
    comps: &mut [SmComponent<'r, 'k>],
    frontier: &[CompId],
    width: usize,
    now: u64,
    ctx: SmCtx<'_, 'k>,
) -> u64 {
    if width <= 1 || frontier.len() <= 1 {
        let mut dur = 0u64;
        for &id in frontier {
            dur = dur.max(comps[id as usize].tick(now, ctx));
        }
        dur
    } else {
        let dur = AtomicU64::new(0);
        let base = comps.as_mut_ptr() as usize;
        par_runtime::par_shards(width, frontier.len(), |i| {
            // SAFETY: frontier ids are deduped, so each component is
            // handed to exactly one invocation, and `comps` stays
            // mutably borrowed for the whole call.
            let comp =
                unsafe { &mut *(base as *mut SmComponent<'r, 'k>).add(frontier[i] as usize) };
            dur.fetch_max(comp.tick(now, ctx), Ordering::Relaxed);
        });
        dur.load(Ordering::Relaxed)
    }
}

/// Execute a grid into `run`. `sm_offset` rotates the block→SM mapping.
///
/// Discrete-event core: each SM is an [`SmComponent`]; wave 0 (the
/// parent grid) is scheduled at cycle 0 for every SM owning at least one
/// block, and each popped frontier is ticked on up to
/// [`effective_workers`] host workers. Children queued during a tick are
/// merged in SM order — deterministic at any worker count and any
/// tie-break order — into the next wave, scheduled after the frontier's
/// longest tick. All storage comes from the run's pooled arena. The
/// result is identical at any width.
pub(crate) fn execute_grid<'k>(
    run: &mut RunState,
    grid_blocks: usize,
    block_dim: usize,
    sm_offset: usize,
    kernel: KernelFn<'k>,
) {
    assert!(
        block_dim > 0 && block_dim <= 1024,
        "block_dim {block_dim} out of range"
    );
    if grid_blocks == 0 {
        return;
    }
    let cfg = run.cfg;
    let trace = run.trace;
    let sms = cfg.sm_count;
    let requested = sim_threads().min(sms);

    let arena = &mut run.arena;
    let pending = arena.take_pending(sms);
    let mut wave: Vec<PendingChild<'k>> = arena.take_wave();
    let mut next: Vec<PendingChild<'k>> = arena.take_wave();
    let mut comps: Vec<SmComponent<'_, 'k>> = arena
        .shards
        .iter_mut()
        .zip(pending)
        .map(|(shard, pending)| SmComponent {
            shard,
            pending,
            wake: None,
        })
        .collect();
    let queue = &mut arena.queue;
    let frontier = &mut arena.frontier;
    queue.clear();

    // Wave 0: the parent grid, on every SM that owns at least one block.
    for (sm, comp) in comps.iter_mut().enumerate() {
        if first_block(sm, sm_offset, sms) < grid_blocks {
            comp.wake = Some(0);
            queue.schedule(0, sm as CompId);
        }
    }

    let mut first = true;
    while let Some(now) = queue.pop_frontier(frontier) {
        let dur = {
            let work = if first {
                SmWork::Grid {
                    grid_blocks,
                    block_dim,
                    sm_offset,
                    kernel,
                }
            } else {
                SmWork::Children(&wave)
            };
            let grid_threads = match &work {
                SmWork::Grid { .. } => grid_blocks * block_dim,
                SmWork::Children(w) => w.iter().map(|c| c.grid_blocks * c.block_dim).sum(),
            };
            let width = effective_workers(requested, frontier.len(), grid_threads);
            let ctx = SmCtx {
                cfg,
                trace,
                work: &work,
            };
            tick_frontier(&mut comps, frontier, width, now, ctx)
        };
        first = false;
        // Merge queued children in SM order into the next wave and
        // schedule it after the frontier's longest tick.
        next.clear();
        for comp in comps.iter_mut() {
            next.append(&mut comp.pending);
        }
        std::mem::swap(&mut wave, &mut next);
        if !wave.is_empty() {
            let at = now.saturating_add(dur.max(1));
            for (sm, comp) in comps.iter_mut().enumerate() {
                if wave
                    .iter()
                    .any(|c| first_block(sm, c.seq, sms) < c.grid_blocks)
                {
                    comp.wake = Some(at);
                    queue.schedule(at, sm as CompId);
                }
            }
        }
    }

    // Return pooled storage to the arena.
    let pending: Vec<Vec<PendingChild<'k>>> = comps.into_iter().map(|c| c.pending).collect();
    arena.restore_pending(pending);
    arena.restore_wave(wave);
    arena.restore_wave(next);
}

/// The device timeline's PCIe copy-engine component id.
const PCIE_COMP: CompId = 0;

/// The device-level discrete-event timeline: a persistent `u64` cycle
/// clock shared by everything the device does, plus the components that
/// evolve on it (currently the PCIe copy engine). Kernel launches and
/// transfers advance the clock by their modeled cycles; advancing pops
/// due events and ticks their components.
struct DeviceTimeline {
    now: u64,
    pcie: PcieLink,
    queue: EventQueue,
    frontier: Vec<CompId>,
}

impl DeviceTimeline {
    fn new() -> DeviceTimeline {
        DeviceTimeline {
            now: 0,
            pcie: PcieLink::default(),
            queue: EventQueue::new(),
            frontier: Vec::new(),
        }
    }

    /// Advance the clock by `cycles`, ticking every component whose
    /// event falls due on the way.
    fn advance(&mut self, cycles: u64) {
        let target = self.now.saturating_add(cycles);
        while let Some(t) = self.queue.peek_cycle() {
            if t > target {
                break;
            }
            let now = self
                .queue
                .pop_frontier(&mut self.frontier)
                .expect("peeked event must pop");
            for &comp in self.frontier.iter() {
                if comp == PCIE_COMP {
                    self.pcie.tick(now, ());
                }
            }
        }
        self.now = target;
    }
}

/// A simulated GPU.
pub struct Device {
    cfg: DeviceConfig,
    /// Trace ledger, when attached (see [`crate::trace`]). `None` keeps
    /// launches on the zero-overhead path.
    ledger: Option<Arc<TraceLedger>>,
    /// Recycled launch arenas (see [`crate::arena`]): launches pop one,
    /// reports push it back reset, so steady-state launches allocate
    /// nothing.
    arenas: Mutex<Vec<LaunchArena>>,
    /// Persistent device clock + components (see [`DeviceTimeline`]).
    timeline: Mutex<DeviceTimeline>,
}

/// Most arenas a device keeps pooled (one is typical; concurrent groups
/// overlapping plain launches can briefly need a second).
const ARENA_POOL_CAP: usize = 4;

impl Device {
    /// Create a device from a configuration (see [`crate::presets`]).
    /// If process-global trace capture is on
    /// ([`trace::enable_global_capture`]), the device records into the
    /// shared [`trace::global_ledger`].
    pub fn new(cfg: DeviceConfig) -> Device {
        let ledger = if trace::global_capture_enabled() {
            Some(trace::global_ledger())
        } else {
            None
        };
        Device {
            cfg,
            ledger,
            arenas: Mutex::new(Vec::new()),
            timeline: Mutex::new(DeviceTimeline::new()),
        }
    }

    /// Current device clock in cycles. Launches and transfers advance it
    /// by their modeled duration.
    pub fn clock_cycles(&self) -> u64 {
        self.timeline.lock().now
    }

    /// PCIe transfers whose completion events the copy-engine component
    /// has retired so far (transfers still occupying the link at the
    /// current clock are not yet counted).
    pub fn transfers_retired(&self) -> u64 {
        let mut tl = self.timeline.lock();
        tl.advance(0);
        tl.pcie.retired()
    }

    /// Modeled cycles for a wall-clock duration on this device's clock.
    fn model_cycles(&self, seconds: f64) -> u64 {
        (seconds * self.cfg.clock_ghz * 1e9).round() as u64
    }

    /// Attach a fresh private trace ledger to this device and return it.
    pub fn enable_tracing(&mut self) -> Arc<TraceLedger> {
        let ledger = Arc::new(TraceLedger::new());
        self.ledger = Some(ledger.clone());
        ledger
    }

    /// Attach an existing trace ledger (possibly shared with other
    /// devices — multi-GPU executors record all devices into one ledger,
    /// distinguished by each device's configured name).
    pub fn attach_ledger(&mut self, ledger: Arc<TraceLedger>) {
        self.ledger = Some(ledger);
    }

    /// The attached trace ledger, if any.
    pub fn ledger(&self) -> Option<&Arc<TraceLedger>> {
        self.ledger.as_ref()
    }

    /// The device's configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Allocate a device buffer from host data.
    pub fn alloc<T: DevCopy>(&self, data: Vec<T>) -> DeviceBuffer<T> {
        DeviceBuffer::new(data)
    }

    /// Allocate a zeroed device buffer.
    pub fn alloc_zeroed<T: DevCopy>(&self, len: usize) -> DeviceBuffer<T> {
        DeviceBuffer::zeroed(len)
    }

    /// Modeled host→device copy time for `bytes`.
    pub fn htod_seconds(&self, bytes: u64) -> f64 {
        self.cfg.copy_seconds(bytes)
    }

    /// Modeled device→host copy time for `bytes` (asymmetric PCIe
    /// readback bandwidth — see [`DeviceConfig::copy_seconds_d2h`]).
    pub fn dtoh_seconds(&self, bytes: u64) -> f64 {
        self.cfg.copy_seconds_d2h(bytes)
    }

    /// Charge a host→device transfer: returns a report carrying the
    /// copy time (as `transfer_s`) and `htod_bytes`, and records a
    /// transfer span when tracing.
    pub fn record_htod(&self, name: &str, bytes: u64) -> RunReport {
        self.transfer_report(name, self.htod_seconds(bytes), bytes, 0)
    }

    /// Charge a device→host readback: returns a report carrying the
    /// copy time (as `transfer_s`) and `dtoh_bytes`, and records a
    /// transfer span when tracing.
    pub fn record_dtoh(&self, name: &str, bytes: u64) -> RunReport {
        self.transfer_report(name, self.dtoh_seconds(bytes), bytes, 1)
    }

    /// Charge an inbound peer-to-peer copy whose duration was modeled
    /// externally (interconnect links are scheduled by the multi-device
    /// exchange planner, not by this device's host-PCIe model). The
    /// bytes land on this device, so they count as `htod_bytes`, occupy
    /// the copy-engine component, and record a transfer span when
    /// tracing — exactly like [`Self::record_htod`] with a caller-set
    /// time.
    pub fn record_peer_recv(&self, name: &str, bytes: u64, seconds: f64) -> RunReport {
        self.transfer_report(name, seconds, bytes, 0)
    }

    fn transfer_report(&self, name: &str, time_s: f64, bytes: u64, dtoh: u32) -> RunReport {
        let counters = if dtoh != 0 {
            Counters {
                dtoh_bytes: bytes,
                ..Default::default()
            }
        } else {
            Counters {
                htod_bytes: bytes,
                ..Default::default()
            }
        };
        let report = RunReport {
            name: name.to_string(),
            time_s,
            counters,
            breakdown: TimeBreakdown {
                transfer_s: time_s,
                ..Default::default()
            },
            launches: 0,
        };
        if let Some(ledger) = &self.ledger {
            ledger.record_transfer(&self.cfg, &report);
        }
        // The transfer occupies the PCIe copy-engine component; its
        // completion event retires when the clock passes it.
        {
            let mut tl = self.timeline.lock();
            let cycles = self.model_cycles(time_s);
            let t_now = tl.now;
            let done = tl.pcie.begin_transfer(t_now, cycles);
            tl.queue.schedule(done, PCIE_COMP);
            tl.advance(cycles);
        }
        report
    }

    /// Launch `kernel` over `grid_blocks x block_dim` threads and return
    /// the modeled report. Execution is functional (all writes through
    /// [`WarpCtx`] happen for real); time is assembled from the counters.
    pub fn launch(
        &self,
        name: &str,
        grid_blocks: usize,
        block_dim: usize,
        kernel: KernelFn,
    ) -> RunReport {
        let mut run = self.fresh_run();
        execute_grid(&mut run, grid_blocks, block_dim, 0, kernel);
        self.assemble_report(
            name,
            run,
            self.cfg.kernel_launch_s,
            1,
            (grid_blocks, block_dim),
            Vec::new(),
        )
    }

    /// Begin a group of *independent* kernels launched on separate
    /// streams. On devices with HyperQ (`concurrent_kernels > 1`) the
    /// group's kernels execute concurrently and are modeled as one pooled
    /// roofline; on single-queue devices (Fermi) they serialize exactly
    /// like individual [`Device::launch`] calls.
    pub fn launch_group<'d>(&'d self, name: &str) -> ConcurrentGroup<'d> {
        let concurrent = self.cfg.concurrent_kernels > 1;
        ConcurrentGroup {
            dev: self,
            name: name.to_string(),
            pooled: if concurrent {
                Some(self.fresh_run())
            } else {
                None
            },
            serial: RunReport::default(),
            launches: 0,
            grid_offset: 0,
            streams: Vec::new(),
        }
    }

    fn fresh_run(&self) -> RunState<'_> {
        let arena = self
            .arenas
            .lock()
            .pop()
            .unwrap_or_else(|| LaunchArena::new(self.cfg.sm_count));
        RunState {
            cfg: &self.cfg,
            arena,
            trace: self.ledger.is_some(),
        }
    }

    fn assemble_report(
        &self,
        name: &str,
        mut run: RunState,
        launch_s: f64,
        launches: u32,
        shape: (usize, usize),
        streams: Vec<StreamRec>,
    ) -> RunReport {
        let cfg = &self.cfg;
        let sms = cfg.sm_count;
        // Deterministic merge: shards are reduced in SM order. (All shard
        // fields are integers, so the sums are order-independent anyway —
        // the fixed order keeps that true by construction if a float
        // counter is ever added.)
        let counters = Counters::sum(run.arena.shards.iter().map(|s| &s.counters));
        let mut sm_instr = vec![0u64; sms];
        let mut sm_crit = vec![0u64; sms];
        for shard in &run.arena.shards {
            for t in 0..sms {
                sm_instr[t] += shard.sm_instr[t];
                sm_crit[t] = sm_crit[t].max(shard.sm_crit[t]);
            }
        }
        let clock_hz = cfg.clock_ghz * 1e9;
        let mut comp_cycles = 0u64;
        let mut lat_cycles = 0u64;
        for sm in 0..sms {
            let throughput = (sm_instr[sm] as f64 / cfg.ipc_per_sm).ceil() as u64;
            comp_cycles = comp_cycles.max(throughput);
            lat_cycles = lat_cycles.max(sm_crit[sm]);
        }
        let compute_s = comp_cycles as f64 / clock_hz;
        let latency_s = lat_cycles as f64 / clock_hz;
        let memory_s = counters.dram_bytes() as f64 / cfg.bandwidth_bytes_s();
        let n_children = counters.child_launches;
        let dynamic_launch_s = if n_children > 0 {
            let batches = (n_children as usize).div_ceil(cfg.child_launch_parallelism.max(1));
            let overflow = n_children.saturating_sub(cfg.pending_launch_limit as u64);
            batches as f64 * cfg.child_launch_s + overflow as f64 * cfg.pending_overflow_penalty_s
        } else {
            0.0
        };
        let time_s = launch_s + compute_s.max(memory_s).max(latency_s) + dynamic_launch_s;
        let report = RunReport {
            name: name.to_string(),
            time_s,
            counters,
            breakdown: TimeBreakdown {
                launch_s,
                compute_s,
                memory_s,
                latency_s,
                dynamic_launch_s,
                transfer_s: 0.0,
            },
            launches,
        };
        if let Some(ledger) = &self.ledger {
            // Drain the per-shard child slices in SM order — the same
            // deterministic order the counter merge uses.
            let mut children = Vec::new();
            for shard in &mut run.arena.shards {
                children.append(&mut shard.child_recs);
            }
            ledger.record_launch(
                &self.cfg, &report, shape.0, shape.1, sm_instr, streams, children,
            );
        }
        // The kernel occupied the device: advance the shared clock and
        // recycle the launch's arena (reset = logically fresh).
        self.timeline
            .lock()
            .advance(self.model_cycles(report.time_s));
        let mut arena = run.arena;
        arena.reset();
        let mut pool = self.arenas.lock();
        if pool.len() < ARENA_POOL_CAP {
            pool.push(arena);
        }
        report
    }
}

/// A set of independent kernels launched on separate streams
/// (see [`Device::launch_group`]).
pub struct ConcurrentGroup<'d> {
    dev: &'d Device,
    name: String,
    /// Shared state when the device supports concurrent kernels.
    pooled: Option<RunState<'d>>,
    /// Accumulated sequential reports otherwise.
    serial: RunReport,
    launches: u32,
    /// Rotates block→SM placement so concurrent small grids spread out.
    grid_offset: usize,
    /// Per-stream counter slices, recorded only while tracing.
    streams: Vec<StreamRec>,
}

impl ConcurrentGroup<'_> {
    /// Add one kernel to the group (executed immediately; timing is
    /// pooled or accumulated per the device's concurrency).
    pub fn add(&mut self, name: &str, grid_blocks: usize, block_dim: usize, kernel: KernelFn) {
        self.launches += 1;
        match &mut self.pooled {
            Some(run) => {
                // Group adds are sequential host-side, so snapshotting
                // the pooled counters around each add attributes every
                // increment (child waves included) to its stream.
                let before = if run.trace {
                    Some(Counters::sum(run.arena.shards.iter().map(|s| &s.counters)))
                } else {
                    None
                };
                execute_grid(run, grid_blocks, block_dim, self.grid_offset, kernel);
                if let Some(before) = before {
                    let after = Counters::sum(run.arena.shards.iter().map(|s| &s.counters));
                    self.streams.push(StreamRec {
                        name: name.to_string(),
                        grid_blocks,
                        block_dim,
                        counters: after.delta_from(&before),
                    });
                }
                self.grid_offset += grid_blocks.max(1);
            }
            None => {
                let r = self.dev.launch(name, grid_blocks, block_dim, kernel);
                self.serial = std::mem::take(&mut self.serial).then(&r);
            }
        }
    }

    /// Number of kernels added so far.
    pub fn launches(&self) -> u32 {
        self.launches
    }

    /// Close the group and return the combined report. Concurrent groups
    /// pay one full launch gap plus a small per-stream enqueue cost; the
    /// pooled roofline takes one `max` over the group's aggregate work.
    pub fn finish(self) -> RunReport {
        match self.pooled {
            Some(run) => {
                let cfg = self.dev.config();
                let extra = (self.launches.saturating_sub(1)) as f64 * 0.25 * cfg.kernel_launch_s;
                self.dev.assemble_report(
                    &self.name,
                    run,
                    cfg.kernel_launch_s + extra,
                    self.launches.max(1),
                    (0, 0),
                    self.streams,
                )
            }
            None => {
                let mut r = self.serial;
                if r.name.is_empty() {
                    r.name = self.name;
                }
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;
    use crate::warp::{lane_mask, FULL_MASK};

    fn titan() -> Device {
        Device::new(presets::gtx_titan())
    }

    #[test]
    fn empty_kernel_costs_one_launch() {
        let dev = titan();
        let r = dev.launch("empty", 0, 32, &|_b| {});
        assert!((r.time_s - dev.config().kernel_launch_s).abs() < 1e-12);
        assert_eq!(r.counters.blocks, 0);
    }

    #[test]
    fn functional_copy_kernel_is_correct() {
        let dev = titan();
        let n = 1000usize;
        let src = dev.alloc((0..n as u32).collect::<Vec<_>>());
        let dst = dev.alloc_zeroed::<u32>(n);
        let blocks = n.div_ceil(128);
        let r = dev.launch("copy", blocks, 128, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let base = warp.first_thread();
                if base >= n {
                    return;
                }
                let live = (n - base).min(WARP);
                let mask = lane_mask(live);
                let vals = warp.read_coalesced(&src, base, mask);
                warp.write_coalesced(&dst, base, &vals, mask);
            });
        });
        assert_eq!(dst.as_slice(), src.as_slice());
        assert!(r.counters.dram_read_bytes >= (n * 4) as u64);
        assert!(r.counters.dram_write_bytes >= (n * 4) as u64);
    }

    #[test]
    fn coalesced_access_uses_fewer_transactions_than_scattered() {
        let dev = titan();
        let buf = dev.alloc(vec![1.0f64; 32 * 64]);
        let r_coal = dev.launch("coalesced", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                warp.read_coalesced(&buf, 0, FULL_MASK);
            });
        });
        let r_scat = dev.launch("scattered", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let mut idx = [0usize; WARP];
                for (lane, slot) in idx.iter_mut().enumerate() {
                    *slot = lane * 64; // one 128B segment each
                }
                warp.gather(&buf, &idx, FULL_MASK);
            });
        });
        // Kepler 32B segments: a coalesced f64 warp read is 8 transactions,
        // a fully scattered one is 32 — a 4x penalty (16x on Fermi's 128B).
        assert!(r_scat.counters.transactions >= 4 * r_coal.counters.transactions);
        assert!(r_scat.counters.dram_read_bytes > r_coal.counters.dram_read_bytes);
    }

    #[test]
    fn texture_reuse_hits_cache() {
        let dev = titan();
        let x = dev.alloc(vec![2.0f32; 1024]);
        let r = dev.launch("tex", 4, 256, &|blk| {
            blk.for_each_warp(&mut |warp| {
                // every warp reads the same 32 elements: first warp per SM
                // misses, the rest hit
                let idx = std::array::from_fn(|i| i);
                warp.gather_tex(&x, &idx, FULL_MASK);
            });
        });
        assert!(r.counters.tex_hits > r.counters.tex_misses);
    }

    #[test]
    fn atomic_conflicts_serialize() {
        let dev = titan();
        let acc = dev.alloc(vec![0.0f64; 4]);
        let r_conflict = dev.launch("atomic-same", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let idx = [0usize; WARP];
                let vals = [1.0f64; WARP];
                warp.atomic_rmw(&acc, &idx, &vals, FULL_MASK, |a, b| a + b);
            });
        });
        assert_eq!(acc.as_slice()[0], 32.0);
        assert!(r_conflict.counters.atomic_conflicts > 0);

        let acc2 = dev.alloc(vec![0.0f64; 32]);
        let r_free = dev.launch("atomic-distinct", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let idx = std::array::from_fn(|i| i);
                let vals = [1.0f64; WARP];
                warp.atomic_rmw(&acc2, &idx, &vals, FULL_MASK, |a, b| a + b);
            });
        });
        assert_eq!(r_free.counters.atomic_conflicts, 0);
        assert!(r_conflict.time_s >= r_free.time_s);
    }

    #[test]
    fn segmented_reduce_sums_segments() {
        let dev = titan();
        dev.launch("reduce", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let vals: [f64; WARP] = std::array::from_fn(|i| i as f64);
                let red = warp.segmented_reduce_sum(&vals, 8);
                // segment 0 = 0+1+..+7 = 28, segment 1 = 8+..+15 = 92
                assert_eq!(red[0], 28.0);
                assert_eq!(red[8], 92.0);
                assert_eq!(
                    red[24],
                    0.0 + (24..32).map(|i| i as f64).sum::<f64>() - 24.0 + 24.0
                );
                let full = warp.segmented_reduce_sum(&vals, 32);
                assert_eq!(full[0], (0..32).map(|i| i as f64).sum::<f64>());
            });
        });
    }

    #[test]
    fn shfl_down_shifts_lanes() {
        let dev = titan();
        dev.launch("shfl", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let vals: [u32; WARP] = std::array::from_fn(|i| i as u32);
                let s = warp.shfl_down(&vals, 4);
                assert_eq!(s[0], 4);
                assert_eq!(s[27], 31);
                assert_eq!(s[28], 28); // out of range: keeps own value
            });
        });
    }

    #[test]
    fn ballot_collects_predicates() {
        let dev = titan();
        dev.launch("ballot", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let preds: [bool; WARP] = std::array::from_fn(|i| i % 2 == 0);
                let m = warp.ballot(&preds, FULL_MASK);
                assert_eq!(m, 0x5555_5555);
                let m2 = warp.ballot(&preds, 0b1111);
                assert_eq!(m2, 0b0101);
            });
        });
    }

    #[test]
    fn dynamic_child_launches_run_and_charge_overhead() {
        let dev = titan();
        let out = dev.alloc_zeroed::<u32>(64);
        let out_ref = &out;
        let r = dev.launch("parent", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                warp.launch_child(2, 32, move |child_blk| {
                    let off = child_blk.thread_offset();
                    child_blk.for_each_warp(&mut |cw| {
                        let vals = [7u32; WARP];
                        cw.write_coalesced(out_ref, off, &vals, FULL_MASK);
                    });
                });
            });
        });
        assert!(out.as_slice().iter().all(|&v| v == 7));
        assert_eq!(r.counters.child_launches, 1);
        assert!(r.breakdown.dynamic_launch_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "dynamic parallelism")]
    fn child_launch_panics_on_fermi() {
        let dev = Device::new(presets::gtx_580());
        dev.launch("parent", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                warp.launch_child(1, 32, |_b| {});
            });
        });
    }

    #[test]
    fn pending_limit_overflow_charges_penalty() {
        let mut cfg = presets::gtx_titan();
        cfg.pending_launch_limit = 4;
        let dev = Device::new(cfg);
        let r = dev.launch("parent", 1, 32 * 8, &|blk| {
            blk.for_each_warp(&mut |warp| {
                warp.launch_child(1, 32, |_b| {});
            });
        });
        assert_eq!(r.counters.child_launches, 8);
        let penalty = 4.0 * dev.config().pending_overflow_penalty_s;
        assert!(r.breakdown.dynamic_launch_s > penalty * 0.99);
    }

    #[test]
    fn divergent_long_row_inflates_latency_bound() {
        let dev = titan();
        let buf = dev.alloc(vec![1.0f64; 1 << 20]);
        // One warp walks 4096 strided reads (a long-row critical path);
        // the balanced version spreads the same reads over 128 warps.
        let r_tail = dev.launch("tail", 1, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                for it in 0..4096usize {
                    let idx = std::array::from_fn(|i| (it * WARP + i) % (1 << 20));
                    warp.gather(&buf, &idx, FULL_MASK);
                }
            });
        });
        let r_flat = dev.launch("flat", 128, 32, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let wid = warp.global_warp_id();
                for it in 0..32usize {
                    let idx =
                        std::array::from_fn(|i| (wid * 32 * WARP + it * WARP + i) % (1 << 20));
                    warp.gather(&buf, &idx, FULL_MASK);
                }
            });
        });
        // identical traffic, very different modeled time
        assert_eq!(
            r_tail.counters.dram_read_bytes,
            r_flat.counters.dram_read_bytes
        );
        assert!(
            r_tail.time_s > 5.0 * r_flat.time_s,
            "tail {} flat {}",
            r_tail.time_s,
            r_flat.time_s
        );
    }

    #[test]
    fn report_merging_accumulates_time() {
        let dev = titan();
        let buf = dev.alloc(vec![0u32; 1024]);
        let mk = || {
            dev.launch("k", 4, 256, &|blk| {
                blk.for_each_warp(&mut |warp| {
                    warp.read_coalesced(&buf, 0, FULL_MASK);
                });
            })
        };
        let a = mk();
        let b = mk();
        let seq = RunReport::sequence([&a, &b]);
        assert!((seq.time_s - (a.time_s + b.time_s)).abs() < 1e-15);
        assert_eq!(seq.launches, 2);
    }

    /// Mixed-feature kernel (coalesced + texture + reduce + atomics) used
    /// to compare reports across worker widths.
    fn stress_report(dev: &Device, threads: usize) -> RunReport {
        set_sim_threads(threads);
        let n = 96 * 64;
        let src = dev.alloc((0..n).map(|i| i as f64).collect::<Vec<_>>());
        let dst = dev.alloc_zeroed::<f64>(n);
        let acc = dev.alloc_zeroed::<f64>(8);
        let r = dev.launch("stress", 96, 64, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let base = warp.first_thread();
                let vals = warp.read_coalesced(&src, base, FULL_MASK);
                let idx = std::array::from_fn(|i| (base + i * 31) % n);
                warp.gather_tex(&src, &idx, FULL_MASK);
                let red = warp.segmented_reduce_sum(&vals, 8);
                warp.write_coalesced(&dst, base, &red, FULL_MASK);
                let aidx = [warp.block_idx() % 8; WARP];
                // integer-valued adds: exact at any association order
                let ones = [1.0f64; WARP];
                warp.atomic_rmw(&acc, &aidx, &ones, FULL_MASK, |a, b| a + b);
            });
        });
        set_sim_threads(0);
        r
    }

    #[test]
    fn reports_are_bit_identical_across_worker_widths() {
        let dev = titan();
        let base = stress_report(&dev, 1);
        for threads in [2, 4, 8] {
            let r = stress_report(&dev, threads);
            assert_eq!(base.counters, r.counters, "threads={threads}");
            assert_eq!(base.breakdown, r.breakdown, "threads={threads}");
            assert_eq!(
                base.time_s.to_bits(),
                r.time_s.to_bits(),
                "threads={threads}"
            );
        }
    }
}
