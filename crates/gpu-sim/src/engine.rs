//! Launch engine and timing model.
//!
//! A launch executes every block of the grid (functionally, on the host),
//! attributing each block to an SM round-robin. Afterwards the model
//! combines three bounds into a kernel time:
//!
//! ```text
//! t_comp    = max over SMs of  max(issue_slots / IPC, longest_warp_critical_path) / clock
//! t_mem     = DRAM bytes / bandwidth
//! t         = t_launch + max(t_comp, t_mem) + t_dynamic_launch
//! ```
//!
//! * `issue_slots / IPC` is the throughput bound — SIMT issue pressure,
//!   including every wasted lane.
//! * the *critical path* term is the latency bound — a single warp
//!   grinding through a 20 000-non-zero row cannot hide its memory
//!   latency once its SM has nothing else left, which is exactly the
//!   long-tail pathology of Figure 3 that dynamic parallelism removes.
//! * dynamic child launches pay device-side overhead, amortized over the
//!   hardware launch units, plus a stall penalty beyond the pending-launch
//!   limit (`cudaLimitDevRuntimePendingLaunchCount`, §III-B).

use crate::buffer::{DevCopy, DeviceBuffer};
use crate::cache::SetAssocCache;
use crate::config::DeviceConfig;
use crate::counters::{Counters, RunReport, TimeBreakdown};
use crate::warp::{WarpCtx, WARP};

/// Kernel body: called once per thread block.
pub type KernelFn<'a> = &'a mut dyn FnMut(&mut BlockCtx);

/// Mutable state of one in-flight launch (shared with child grids).
pub struct RunState<'d> {
    pub(crate) cfg: &'d DeviceConfig,
    pub(crate) counters: Counters,
    pub(crate) sm_instr: Vec<u64>,
    pub(crate) sm_crit: Vec<u64>,
    pub(crate) tex_caches: Vec<SetAssocCache>,
    /// Monotone child-launch sequence, used to spread child blocks across
    /// SMs starting at different offsets.
    pub(crate) child_seq: usize,
}

/// Per-block kernel context.
pub struct BlockCtx<'r, 'd> {
    run: &'r mut RunState<'d>,
    block_idx: usize,
    block_dim: usize,
    sm: usize,
}

impl<'r, 'd> BlockCtx<'r, 'd> {
    /// Block index within the grid.
    pub fn block_idx(&self) -> usize {
        self.block_idx
    }

    /// Threads per block of this launch.
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Global thread id of this block's thread 0.
    pub fn thread_offset(&self) -> usize {
        self.block_idx * self.block_dim
    }

    /// Number of warps in this block.
    pub fn warp_count(&self) -> usize {
        self.block_dim.div_ceil(WARP)
    }

    /// SM this block was scheduled on.
    pub fn sm(&self) -> usize {
        self.sm
    }

    /// Run `f` once for every warp of this block.
    pub fn for_each_warp(&mut self, f: &mut dyn FnMut(&mut WarpCtx)) {
        for w in 0..self.warp_count() {
            let mut warp = WarpCtx {
                block_idx: self.block_idx,
                warp_in_block: w,
                block_dim: self.block_dim,
                sm: self.sm,
                instr: 0,
                crit: 0,
                run: self.run,
            };
            f(&mut warp);
        }
    }
}

/// Execute a grid into `run`. `sm_offset` rotates the block→SM mapping
/// (children start where the global child sequence points, spreading
/// concurrent children over the machine).
pub(crate) fn execute_grid(
    run: &mut RunState,
    grid_blocks: usize,
    block_dim: usize,
    sm_offset: usize,
    kernel: KernelFn,
) {
    assert!(block_dim > 0 && block_dim <= 1024, "block_dim {block_dim} out of range");
    let sms = run.cfg.sm_count;
    for b in 0..grid_blocks {
        run.counters.blocks += 1;
        let mut blk = BlockCtx {
            block_idx: b,
            block_dim,
            sm: (b + sm_offset) % sms,
            run,
        };
        kernel(&mut blk);
    }
}

/// A simulated GPU.
pub struct Device {
    cfg: DeviceConfig,
}

impl Device {
    /// Create a device from a configuration (see [`crate::presets`]).
    pub fn new(cfg: DeviceConfig) -> Device {
        Device { cfg }
    }

    /// The device's configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Allocate a device buffer from host data.
    pub fn alloc<T: DevCopy>(&self, data: Vec<T>) -> DeviceBuffer<T> {
        DeviceBuffer::new(data)
    }

    /// Allocate a zeroed device buffer.
    pub fn alloc_zeroed<T: DevCopy>(&self, len: usize) -> DeviceBuffer<T> {
        DeviceBuffer::zeroed(len)
    }

    /// Modeled host→device copy time for `bytes`.
    pub fn htod_seconds(&self, bytes: u64) -> f64 {
        self.cfg.copy_seconds(bytes)
    }

    /// Launch `kernel` over `grid_blocks x block_dim` threads and return
    /// the modeled report. Execution is functional (all writes through
    /// [`WarpCtx`] happen for real); time is assembled from the counters.
    pub fn launch(
        &self,
        name: &str,
        grid_blocks: usize,
        block_dim: usize,
        kernel: KernelFn,
    ) -> RunReport {
        let mut run = self.fresh_run();
        execute_grid(&mut run, grid_blocks, block_dim, 0, kernel);
        self.assemble_report(name, run, self.cfg.kernel_launch_s, 1)
    }

    /// Begin a group of *independent* kernels launched on separate
    /// streams. On devices with HyperQ (`concurrent_kernels > 1`) the
    /// group's kernels execute concurrently and are modeled as one pooled
    /// roofline; on single-queue devices (Fermi) they serialize exactly
    /// like individual [`Device::launch`] calls.
    pub fn launch_group<'d>(&'d self, name: &str) -> ConcurrentGroup<'d> {
        let concurrent = self.cfg.concurrent_kernels > 1;
        ConcurrentGroup {
            dev: self,
            name: name.to_string(),
            pooled: if concurrent { Some(self.fresh_run()) } else { None },
            serial: RunReport::default(),
            launches: 0,
            grid_offset: 0,
        }
    }

    fn fresh_run(&self) -> RunState<'_> {
        RunState {
            cfg: &self.cfg,
            counters: Counters::default(),
            sm_instr: vec![0; self.cfg.sm_count],
            sm_crit: vec![0; self.cfg.sm_count],
            tex_caches: (0..self.cfg.sm_count)
                .map(|_| {
                    SetAssocCache::new(
                        self.cfg.tex_cache_bytes,
                        self.cfg.tex_line_bytes,
                        self.cfg.tex_ways,
                    )
                })
                .collect(),
            child_seq: 0,
        }
    }

    fn assemble_report(
        &self,
        name: &str,
        run: RunState,
        launch_s: f64,
        launches: u32,
    ) -> RunReport {
        let cfg = &self.cfg;
        let clock_hz = cfg.clock_ghz * 1e9;
        let mut comp_cycles = 0u64;
        let mut lat_cycles = 0u64;
        for sm in 0..cfg.sm_count {
            let throughput = (run.sm_instr[sm] as f64 / cfg.ipc_per_sm).ceil() as u64;
            comp_cycles = comp_cycles.max(throughput);
            lat_cycles = lat_cycles.max(run.sm_crit[sm]);
        }
        let compute_s = comp_cycles as f64 / clock_hz;
        let latency_s = lat_cycles as f64 / clock_hz;
        let memory_s = run.counters.dram_bytes() as f64 / cfg.bandwidth_bytes_s();
        let n_children = run.counters.child_launches;
        let dynamic_launch_s = if n_children > 0 {
            let batches = (n_children as usize).div_ceil(cfg.child_launch_parallelism.max(1));
            let overflow = n_children.saturating_sub(cfg.pending_launch_limit as u64);
            batches as f64 * cfg.child_launch_s + overflow as f64 * cfg.pending_overflow_penalty_s
        } else {
            0.0
        };
        let time_s = launch_s + compute_s.max(memory_s).max(latency_s) + dynamic_launch_s;
        RunReport {
            name: name.to_string(),
            time_s,
            counters: run.counters,
            breakdown: TimeBreakdown {
                launch_s,
                compute_s,
                memory_s,
                latency_s,
                dynamic_launch_s,
            },
            launches,
        }
    }
}

/// A set of independent kernels launched on separate streams
/// (see [`Device::launch_group`]).
pub struct ConcurrentGroup<'d> {
    dev: &'d Device,
    name: String,
    /// Shared state when the device supports concurrent kernels.
    pooled: Option<RunState<'d>>,
    /// Accumulated sequential reports otherwise.
    serial: RunReport,
    launches: u32,
    /// Rotates block→SM placement so concurrent small grids spread out.
    grid_offset: usize,
}

impl ConcurrentGroup<'_> {
    /// Add one kernel to the group (executed immediately; timing is
    /// pooled or accumulated per the device's concurrency).
    pub fn add(&mut self, name: &str, grid_blocks: usize, block_dim: usize, kernel: KernelFn) {
        self.launches += 1;
        match &mut self.pooled {
            Some(run) => {
                execute_grid(run, grid_blocks, block_dim, self.grid_offset, kernel);
                self.grid_offset += grid_blocks.max(1);
            }
            None => {
                let r = self.dev.launch(name, grid_blocks, block_dim, kernel);
                self.serial = std::mem::take(&mut self.serial).then(&r);
            }
        }
    }

    /// Number of kernels added so far.
    pub fn launches(&self) -> u32 {
        self.launches
    }

    /// Close the group and return the combined report. Concurrent groups
    /// pay one full launch gap plus a small per-stream enqueue cost; the
    /// pooled roofline takes one `max` over the group's aggregate work.
    pub fn finish(self) -> RunReport {
        match self.pooled {
            Some(run) => {
                let cfg = self.dev.config();
                let extra = (self.launches.saturating_sub(1)) as f64 * 0.25 * cfg.kernel_launch_s;
                self.dev.assemble_report(
                    &self.name,
                    run,
                    cfg.kernel_launch_s + extra,
                    self.launches.max(1),
                )
            }
            None => {
                let mut r = self.serial;
                if r.name.is_empty() {
                    r.name = self.name;
                }
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;
    use crate::warp::{lane_mask, FULL_MASK};

    fn titan() -> Device {
        Device::new(presets::gtx_titan())
    }

    #[test]
    fn empty_kernel_costs_one_launch() {
        let dev = titan();
        let r = dev.launch("empty", 0, 32, &mut |_b| {});
        assert!((r.time_s - dev.config().kernel_launch_s).abs() < 1e-12);
        assert_eq!(r.counters.blocks, 0);
    }

    #[test]
    fn functional_copy_kernel_is_correct() {
        let dev = titan();
        let n = 1000usize;
        let src = dev.alloc((0..n as u32).collect::<Vec<_>>());
        let mut dst = dev.alloc_zeroed::<u32>(n);
        let blocks = n.div_ceil(128);
        let r = dev.launch("copy", blocks, 128, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                let base = warp.first_thread();
                if base >= n {
                    return;
                }
                let live = (n - base).min(WARP);
                let mask = lane_mask(live);
                let vals = warp.read_coalesced(&src, base, mask);
                warp.write_coalesced(&mut dst, base, &vals, mask);
            });
        });
        assert_eq!(dst.as_slice(), src.as_slice());
        assert!(r.counters.dram_read_bytes >= (n * 4) as u64);
        assert!(r.counters.dram_write_bytes >= (n * 4) as u64);
    }

    #[test]
    fn coalesced_access_uses_fewer_transactions_than_scattered() {
        let dev = titan();
        let buf = dev.alloc(vec![1.0f64; 32 * 64]);
        let r_coal = dev.launch("coalesced", 1, 32, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                warp.read_coalesced(&buf, 0, FULL_MASK);
            });
        });
        let r_scat = dev.launch("scattered", 1, 32, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                let mut idx = [0usize; WARP];
                for (lane, slot) in idx.iter_mut().enumerate() {
                    *slot = lane * 64; // one 128B segment each
                }
                warp.gather(&buf, &idx, FULL_MASK);
            });
        });
        // Kepler 32B segments: a coalesced f64 warp read is 8 transactions,
        // a fully scattered one is 32 — a 4x penalty (16x on Fermi's 128B).
        assert!(r_scat.counters.transactions >= 4 * r_coal.counters.transactions);
        assert!(r_scat.counters.dram_read_bytes > r_coal.counters.dram_read_bytes);
    }

    #[test]
    fn texture_reuse_hits_cache() {
        let dev = titan();
        let x = dev.alloc(vec![2.0f32; 1024]);
        let r = dev.launch("tex", 4, 256, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                // every warp reads the same 32 elements: first warp per SM
                // misses, the rest hit
                let idx = std::array::from_fn(|i| i);
                warp.gather_tex(&x, &idx, FULL_MASK);
            });
        });
        assert!(r.counters.tex_hits > r.counters.tex_misses);
    }

    #[test]
    fn atomic_conflicts_serialize() {
        let dev = titan();
        let mut acc = dev.alloc(vec![0.0f64; 4]);
        let r_conflict = dev.launch("atomic-same", 1, 32, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                let idx = [0usize; WARP];
                let vals = [1.0f64; WARP];
                warp.atomic_rmw(&mut acc, &idx, &vals, FULL_MASK, |a, b| a + b);
            });
        });
        assert_eq!(acc.as_slice()[0], 32.0);
        assert!(r_conflict.counters.atomic_conflicts > 0);

        let mut acc2 = dev.alloc(vec![0.0f64; 32]);
        let r_free = dev.launch("atomic-distinct", 1, 32, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                let idx = std::array::from_fn(|i| i);
                let vals = [1.0f64; WARP];
                warp.atomic_rmw(&mut acc2, &idx, &vals, FULL_MASK, |a, b| a + b);
            });
        });
        assert_eq!(r_free.counters.atomic_conflicts, 0);
        assert!(r_conflict.time_s >= r_free.time_s);
    }

    #[test]
    fn segmented_reduce_sums_segments() {
        let dev = titan();
        dev.launch("reduce", 1, 32, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                let vals: [f64; WARP] = std::array::from_fn(|i| i as f64);
                let red = warp.segmented_reduce_sum(&vals, 8);
                // segment 0 = 0+1+..+7 = 28, segment 1 = 8+..+15 = 92
                assert_eq!(red[0], 28.0);
                assert_eq!(red[8], 92.0);
                assert_eq!(red[24], 0.0 + (24..32).map(|i| i as f64).sum::<f64>() - 24.0 + 24.0);
                let full = warp.segmented_reduce_sum(&vals, 32);
                assert_eq!(full[0], (0..32).map(|i| i as f64).sum::<f64>());
            });
        });
    }

    #[test]
    fn shfl_down_shifts_lanes() {
        let dev = titan();
        dev.launch("shfl", 1, 32, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                let vals: [u32; WARP] = std::array::from_fn(|i| i as u32);
                let s = warp.shfl_down(&vals, 4);
                assert_eq!(s[0], 4);
                assert_eq!(s[27], 31);
                assert_eq!(s[28], 28); // out of range: keeps own value
            });
        });
    }

    #[test]
    fn ballot_collects_predicates() {
        let dev = titan();
        dev.launch("ballot", 1, 32, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                let preds: [bool; WARP] = std::array::from_fn(|i| i % 2 == 0);
                let m = warp.ballot(&preds, FULL_MASK);
                assert_eq!(m, 0x5555_5555);
                let m2 = warp.ballot(&preds, 0b1111);
                assert_eq!(m2, 0b0101);
            });
        });
    }

    #[test]
    fn dynamic_child_launches_run_and_charge_overhead() {
        let dev = titan();
        let mut out = dev.alloc_zeroed::<u32>(64);
        let r = dev.launch("parent", 1, 32, &mut |blk| {
            // split borrow: child kernels capture `out` mutably one at a time
            let out_ref = &mut out;
            blk.for_each_warp(&mut |warp| {
                warp.launch_child(2, 32, &mut |child_blk| {
                    let off = child_blk.thread_offset();
                    child_blk.for_each_warp(&mut |cw| {
                        let vals = [7u32; WARP];
                        cw.write_coalesced(out_ref, off, &vals, FULL_MASK);
                    });
                });
            });
        });
        assert!(out.as_slice().iter().all(|&v| v == 7));
        assert_eq!(r.counters.child_launches, 1);
        assert!(r.breakdown.dynamic_launch_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "dynamic parallelism")]
    fn child_launch_panics_on_fermi() {
        let dev = Device::new(presets::gtx_580());
        dev.launch("parent", 1, 32, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                warp.launch_child(1, 32, &mut |_b| {});
            });
        });
    }

    #[test]
    fn pending_limit_overflow_charges_penalty() {
        let mut cfg = presets::gtx_titan();
        cfg.pending_launch_limit = 4;
        let dev = Device::new(cfg);
        let r = dev.launch("parent", 1, 32 * 8, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                warp.launch_child(1, 32, &mut |_b| {});
            });
        });
        assert_eq!(r.counters.child_launches, 8);
        let penalty = 4.0 * dev.config().pending_overflow_penalty_s;
        assert!(r.breakdown.dynamic_launch_s > penalty * 0.99);
    }

    #[test]
    fn divergent_long_row_inflates_latency_bound() {
        let dev = titan();
        let buf = dev.alloc(vec![1.0f64; 1 << 20]);
        // One warp walks 4096 strided reads (a long-row critical path);
        // the balanced version spreads the same reads over 128 warps.
        let r_tail = dev.launch("tail", 1, 32, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                for it in 0..4096usize {
                    let idx = std::array::from_fn(|i| (it * WARP + i) % (1 << 20));
                    warp.gather(&buf, &idx, FULL_MASK);
                }
            });
        });
        let r_flat = dev.launch("flat", 128, 32, &mut |blk| {
            blk.for_each_warp(&mut |warp| {
                let wid = warp.global_warp_id();
                for it in 0..32usize {
                    let idx =
                        std::array::from_fn(|i| (wid * 32 * WARP + it * WARP + i) % (1 << 20));
                    warp.gather(&buf, &idx, FULL_MASK);
                }
            });
        });
        // identical traffic, very different modeled time
        assert_eq!(
            r_tail.counters.dram_read_bytes,
            r_flat.counters.dram_read_bytes
        );
        assert!(
            r_tail.time_s > 5.0 * r_flat.time_s,
            "tail {} flat {}",
            r_tail.time_s,
            r_flat.time_s
        );
    }

    #[test]
    fn report_merging_accumulates_time() {
        let dev = titan();
        let buf = dev.alloc(vec![0u32; 1024]);
        let mk = || {
            dev.launch("k", 4, 256, &mut |blk| {
                blk.for_each_warp(&mut |warp| {
                    warp.read_coalesced(&buf, 0, FULL_MASK);
                });
            })
        };
        let a = mk();
        let b = mk();
        let seq = RunReport::sequence([&a, &b]);
        assert!((seq.time_s - (a.time_s + b.time_s)).abs() < 1e-15);
        assert_eq!(seq.launches, 2);
    }
}
