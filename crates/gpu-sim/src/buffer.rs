//! Device buffers.
//!
//! A [`DeviceBuffer`] is host-resident data stamped with a unique device
//! *base address*, so the coalescing and cache models operate on a single
//! unified address space regardless of which buffer an access touches.
//!
//! ## Shared mutability and the kernel data contract
//!
//! Elements are stored in [`UnsafeCell`]s so kernels — which since the
//! sharded engine run as `Fn + Sync` closures, possibly on several host
//! threads at once — can write through `&DeviceBuffer<T>`. This mirrors
//! CUDA global memory exactly: every thread of a grid sees one address
//! space, and the hardware gives no protection against racing writes.
//!
//! The safety contract is CUDA's, too: **two blocks of one launch must
//! not touch the same element unless every such access goes through
//! [`crate::WarpCtx::atomic_rmw`]** (which serializes under a global
//! lock). Plain `gather`/`scatter` races on one element are undefined
//! behaviour on real hardware and are equally out of contract here; the
//! engine's shard-per-SM execution never introduces such a race on its
//! own — only a kernel whose blocks overlap non-atomically can.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Element types storable in device buffers.
pub trait DevCopy: Copy + Default + Send + Sync + 'static {
    /// Element size in device memory.
    const SIZE: usize = std::mem::size_of::<Self>();
}
impl<T: Copy + Default + Send + Sync + 'static> DevCopy for T {}

/// Global allocator for simulated device addresses. Buffers are spaced a
/// page apart so distinct buffers never share a DRAM transaction segment.
static NEXT_BASE: AtomicU64 = AtomicU64::new(1 << 20);

fn alloc_base(bytes: u64) -> u64 {
    let aligned = (bytes + 4095) & !4095;
    NEXT_BASE.fetch_add(aligned + 4096, Ordering::Relaxed)
}

/// A typed simulated-device allocation.
pub struct DeviceBuffer<T> {
    base: u64,
    data: Box<[UnsafeCell<T>]>,
}

// SAFETY: `DeviceBuffer` hands out copies of `T` (never references into
// the cells), all element writes go through `get`/`set` under the kernel
// data contract above, and `T: DevCopy` implies `T: Send + Sync`.
unsafe impl<T: DevCopy> Sync for DeviceBuffer<T> {}

impl<T: DevCopy> DeviceBuffer<T> {
    /// Wrap host data as a device allocation (no transfer time charged —
    /// transfers are modeled explicitly by [`crate::DeviceConfig::copy_seconds`]).
    pub fn new(data: Vec<T>) -> Self {
        let base = alloc_base((data.len() * T::SIZE) as u64);
        DeviceBuffer {
            base,
            data: data.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    /// Zero-filled buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        Self::new(vec![T::default(); len])
    }

    /// Simulated device base address.
    pub fn base_addr(&self) -> u64 {
        self.base
    }

    /// Byte address of element `idx`.
    #[inline]
    pub fn addr_of(&self, idx: usize) -> u64 {
        debug_assert!(
            idx < self.data.len(),
            "address of {idx} >= {}",
            self.data.len()
        );
        self.base + (idx * T::SIZE) as u64
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the allocation in bytes.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * T::SIZE) as u64
    }

    /// Read-only host view. Callers must not hold this across a launch
    /// that writes the buffer (the usual host/device synchronization
    /// rule; the borrow checker enforces it except through `&self`
    /// aliasing inside a kernel, which the kernel data contract forbids).
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, and under
        // the kernel data contract no writer is concurrent with this view.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr() as *const T, self.data.len()) }
    }

    /// Mutable host view (host-side initialization; kernels go through
    /// [`crate::WarpCtx`] so their traffic is accounted).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: `&mut self` guarantees exclusivity; layouts match.
        unsafe { std::slice::from_raw_parts_mut(self.data.as_mut_ptr() as *mut T, self.data.len()) }
    }

    /// Consume the buffer, returning the host data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
            .into_vec()
            .into_iter()
            .map(UnsafeCell::into_inner)
            .collect()
    }

    #[inline]
    pub(crate) fn get(&self, idx: usize) -> T {
        // SAFETY: elements are only written under the kernel data
        // contract (disjoint blocks, atomics serialized), so no write is
        // concurrent with this read.
        unsafe { *self.data[idx].get() }
    }

    /// Read without a bounds check.
    ///
    /// # Safety
    /// The caller must have established `idx < self.len()` (the warp
    /// gather paths check the maximum of a sorted index run once and
    /// then read every smaller index unchecked).
    #[inline]
    pub(crate) unsafe fn get_unchecked(&self, idx: usize) -> T {
        debug_assert!(idx < self.data.len());
        // SAFETY: `idx` is in bounds per the caller's contract; aliasing
        // as for `get`.
        unsafe { *self.data.get_unchecked(idx).get() }
    }

    #[inline]
    pub(crate) fn set(&self, idx: usize, v: T) {
        // SAFETY: as for `get` — the kernel data contract guarantees no
        // other shard touches this element concurrently.
        unsafe { *self.data[idx].get() = v }
    }

    /// Write without a bounds check.
    ///
    /// # Safety
    /// The caller must have established `idx < self.len()` (the warp
    /// scatter path checks the maximum of the index run once).
    #[inline]
    pub(crate) unsafe fn set_unchecked(&self, idx: usize, v: T) {
        debug_assert!(idx < self.data.len());
        // SAFETY: `idx` is in bounds per the caller's contract; aliasing
        // as for `set`.
        unsafe { *self.data.get_unchecked(idx).get() = v }
    }
}

impl<T: DevCopy + std::fmt::Debug> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("base", &self.base)
            .field("data", &self.as_slice())
            .finish()
    }
}

impl<T: DevCopy> Clone for DeviceBuffer<T> {
    /// Cloning allocates a fresh device address (it is a new allocation).
    fn clone(&self) -> Self {
        Self::new(self.as_slice().to_vec())
    }
}

impl<T: DevCopy> From<Vec<T>> for DeviceBuffer<T> {
    fn from(v: Vec<T>) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_get_disjoint_address_ranges() {
        let a = DeviceBuffer::new(vec![0u64; 100]);
        let b = DeviceBuffer::new(vec![0u64; 100]);
        let a_range = a.base_addr()..a.base_addr() + a.bytes();
        assert!(!a_range.contains(&b.base_addr()));
        assert!(!a_range.contains(&(b.base_addr() + b.bytes() - 1)));
    }

    #[test]
    fn addr_of_scales_with_element_size() {
        let b = DeviceBuffer::new(vec![0f64; 10]);
        assert_eq!(b.addr_of(3) - b.base_addr(), 24);
        let c = DeviceBuffer::new(vec![0u32; 10]);
        assert_eq!(c.addr_of(3) - c.base_addr(), 12);
    }

    #[test]
    fn zeroed_is_all_default() {
        let b: DeviceBuffer<f32> = DeviceBuffer::zeroed(17);
        assert_eq!(b.len(), 17);
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clone_gets_new_address() {
        let a = DeviceBuffer::new(vec![1u32, 2, 3]);
        let b = a.clone();
        assert_ne!(a.base_addr(), b.base_addr());
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn into_vec_round_trips() {
        let b = DeviceBuffer::new(vec![5i32, 6]);
        assert_eq!(b.into_vec(), vec![5, 6]);
    }

    #[test]
    fn set_through_shared_ref_is_visible() {
        let b = DeviceBuffer::new(vec![0u32; 4]);
        b.set(2, 9);
        assert_eq!(b.get(2), 9);
        assert_eq!(b.as_slice(), &[0, 0, 9, 0]);
    }
}
