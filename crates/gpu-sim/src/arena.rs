//! Per-launch arenas: the mutable simulation state a launch needs,
//! pooled on the [`crate::Device`] and reused across launches.
//!
//! Profiling the interpreter hot loop showed a large fixed cost per
//! launch that had nothing to do with the kernel being simulated:
//! allocating one `ShardState` per SM (each with full-length `sm_instr`
//! / `sm_crit` vectors), re-allocating the texture caches' tag/stamp
//! arrays on first touch, and growing fresh pending-child vectors for
//! every wave. A [`LaunchArena`] owns all of that storage once;
//! [`LaunchArena::reset`] restores the *logical* fresh-launch state
//! (zeroed counters, flushed caches, empty queues) without touching any
//! allocation, which is exactly what makes reuse invisible to the
//! model: a reset arena is observationally identical to a new one.
//!
//! ## Pending-child lifetimes
//!
//! `PendingChild<'k>` carries the kernel lifetime `'k` of the launch
//! that queued it, so a pooled vector cannot simply be stored across
//! launches with its old `'k`. The arena stores the *empty* vectors
//! retagged to `'static` ([`LaunchArena::take_pending`] /
//! [`LaunchArena::restore_pending`]): since an empty `Vec` contains no
//! values of either lifetime and `Vec`'s layout does not depend on its
//! element's lifetime parameters, the transmute only relabels the
//! allocation. Every restore path clears the vector first, so no
//! `PendingChild` ever outlives its launch.

use crate::engine::{PendingChild, ShardState};
use crate::event::{CompId, EventQueue};

/// Reusable state for one in-flight launch: shards plus the scheduler's
/// scratch storage. Held by [`crate::engine::RunState`] while a launch
/// runs; pooled on the device between launches.
pub(crate) struct LaunchArena {
    /// One shard per SM, in SM order.
    pub(crate) shards: Vec<ShardState>,
    /// Event queue driving the launch's wave scheduler.
    pub(crate) queue: EventQueue,
    /// Frontier scratch for [`EventQueue::pop_frontier`].
    pub(crate) frontier: Vec<CompId>,
    /// Pooled per-SM pending-child vectors (always empty between takes).
    pending: Vec<Vec<PendingChild<'static>>>,
    /// Pooled wave buffers (always empty between takes).
    waves: Vec<Vec<PendingChild<'static>>>,
}

impl LaunchArena {
    pub(crate) fn new(sm_count: usize) -> LaunchArena {
        LaunchArena {
            shards: (0..sm_count)
                .map(|s| ShardState::new(s, sm_count))
                .collect(),
            queue: EventQueue::new(),
            frontier: Vec::new(),
            pending: Vec::new(),
            waves: Vec::new(),
        }
    }

    /// Restore the logical fresh-launch state, keeping every allocation:
    /// a reset arena behaves exactly like `LaunchArena::new`.
    pub(crate) fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.reset();
        }
        self.queue.clear();
        self.frontier.clear();
    }

    /// Take one empty pending-child vector per SM for a launch with
    /// kernel lifetime `'k`, reusing pooled capacity.
    pub(crate) fn take_pending<'k>(&mut self, sm_count: usize) -> Vec<Vec<PendingChild<'k>>> {
        let mut p = std::mem::take(&mut self.pending);
        debug_assert!(p.iter().all(Vec::is_empty));
        p.resize_with(sm_count, Vec::new);
        p.truncate(sm_count);
        // SAFETY: every inner vec is empty (cleared on restore), so no
        // `PendingChild` value of either lifetime exists; `Vec`'s layout
        // is independent of its element type's lifetime parameters.
        unsafe {
            std::mem::transmute::<Vec<Vec<PendingChild<'static>>>, Vec<Vec<PendingChild<'k>>>>(p)
        }
    }

    /// Return the per-SM pending vectors taken by
    /// [`LaunchArena::take_pending`], clearing them first.
    pub(crate) fn restore_pending<'k>(&mut self, mut p: Vec<Vec<PendingChild<'k>>>) {
        for v in &mut p {
            v.clear();
        }
        // SAFETY: just cleared — see `take_pending`.
        self.pending = unsafe {
            std::mem::transmute::<Vec<Vec<PendingChild<'k>>>, Vec<Vec<PendingChild<'static>>>>(p)
        };
    }

    /// Take one empty wave buffer, reusing pooled capacity.
    pub(crate) fn take_wave<'k>(&mut self) -> Vec<PendingChild<'k>> {
        let v = self.waves.pop().unwrap_or_default();
        debug_assert!(v.is_empty());
        // SAFETY: the vec is empty — see `take_pending`.
        unsafe { std::mem::transmute::<Vec<PendingChild<'static>>, Vec<PendingChild<'k>>>(v) }
    }

    /// Return a wave buffer taken by [`LaunchArena::take_wave`],
    /// clearing it first.
    pub(crate) fn restore_wave<'k>(&mut self, mut v: Vec<PendingChild<'k>>) {
        v.clear();
        // SAFETY: just cleared — see `take_pending`.
        self.waves.push(unsafe {
            std::mem::transmute::<Vec<PendingChild<'k>>, Vec<PendingChild<'static>>>(v)
        });
    }
}
