//! # profile — an Nsight-Compute–style per-kernel metrics engine
//!
//! Folds a [`crate::trace::TraceLedger`]'s spans into one row per `(device, kernel)`
//! with *derived* SIMT metrics: warp execution efficiency, global
//! coalescing efficiency, texture hit rate, atomic serialization,
//! achieved occupancy, SM load imbalance, and the active-lane
//! divergence histogram. A roofline classifier places each row against
//! its device preset (arithmetic intensity vs the ridge point
//! `peak_gflops / bandwidth`) and reproduces the paper's §II claim that
//! SpMV is memory-bandwidth-bound on every tested GPU.
//!
//! Three bound/limiter views are reported per row, because they answer
//! different questions:
//!
//! * [`KernelMetrics::roofline`] — the pure roofline verdict from
//!   arithmetic intensity alone (`MemoryBound` iff AI < ridge). SpMV
//!   sits far left of the ridge on every preset, so this is always
//!   `MemoryBound` for the SpMV kernels.
//! * [`KernelMetrics::limiter`] — which modeled time component of the
//!   row's [`TimeBreakdown`] is largest (top-level rows only).
//! * [`KernelMetrics::verdict`] — the roofline verdict *refined by the
//!   timing model*: `LatencyBound` when the critical-path term strictly
//!   dominates both throughput terms (CSR-vector on a heavy-tailed
//!   matrix — the paper's Figure 3), otherwise the roofline answer.
//!
//! ## Accounting contract
//!
//! Rows are built from spans by the same exactly-once rule as
//! `acsr::phases`: `Launch` spans **without** stream sub-spans, plus
//! every `Stream` span, plus every `Transfer` span. A pooled group's
//! merged `Launch` span becomes an *aggregate* [`RowKind::Group`] row
//! (its counters re-appear in its stream rows) and `ChildWave` spans
//! are skipped (their counters live inside their parent's stream or
//! launch row). [`ProfileReport::reconcile`] verifies that the
//! non-aggregate rows' integer counters and launch counts sum *exactly*
//! to the ledger total — the same bit-identical-at-any-thread-width
//! guarantee the ledger itself carries.

use crate::config::DeviceConfig;
use crate::counters::{Counters, RunReport, TimeBreakdown, LANE_HIST_BINS};
use crate::trace::{Span, SpanKind};
use serde::Serialize;

/// Roofline classification from arithmetic intensity alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Roofline {
    /// Arithmetic intensity below the device ridge point.
    MemoryBound,
    /// Arithmetic intensity at or above the ridge point.
    ComputeBound,
}

impl Roofline {
    pub fn label(self) -> &'static str {
        match self {
            Roofline::MemoryBound => "memory-bound",
            Roofline::ComputeBound => "compute-bound",
        }
    }
}

/// Largest component of a row's modeled [`TimeBreakdown`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Limiter {
    Compute,
    Memory,
    Latency,
    /// Launch / dynamic-launch / transfer overheads dominate.
    Overhead,
}

impl Limiter {
    pub fn label(self) -> &'static str {
        match self {
            Limiter::Compute => "compute",
            Limiter::Memory => "memory",
            Limiter::Latency => "latency",
            Limiter::Overhead => "overhead",
        }
    }
}

/// Roofline verdict refined by the timing model: latency-bound rows
/// (critical path strictly dominates both throughput terms) are called
/// out, everything else keeps its roofline classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Verdict {
    MemoryBound,
    ComputeBound,
    LatencyBound,
}

impl Verdict {
    pub fn label(self) -> &'static str {
        match self {
            Verdict::MemoryBound => "memory-bound",
            Verdict::ComputeBound => "compute-bound",
            Verdict::LatencyBound => "latency-bound",
        }
    }
}

/// What a profile row aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RowKind {
    /// Plain kernel launches (or one stream's slice of a pooled group).
    Kernel,
    /// A pooled group's merged launch — *aggregate*: excluded from
    /// counter reconciliation because its streams are rows too.
    Group,
    /// PCIe transfers.
    Transfer,
}

impl RowKind {
    pub fn label(self) -> &'static str {
        match self {
            RowKind::Kernel => "kernel",
            RowKind::Group => "group",
            RowKind::Transfer => "transfer",
        }
    }
}

/// Derived per-row metrics. Undefined ratios (no events of the kind)
/// are `None`, never a fabricated 0.0 or 1.0.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct KernelMetrics {
    /// `lane_ops / (32 * warp_instructions)` — Nsight's warp execution
    /// efficiency.
    pub warp_execution_efficiency: Option<f64>,
    /// `min_transactions / mem_transactions` — global load/store
    /// coalescing efficiency.
    pub coalescing_efficiency: Option<f64>,
    /// Texture-path cache hit rate.
    pub tex_hit_rate: Option<f64>,
    /// `1 + conflicts / ops` — mean serialization passes per atomic.
    pub atomic_serialization: Option<f64>,
    /// Fraction of masked warp operations issued with < 32 active lanes.
    pub divergent_op_fraction: Option<f64>,
    /// Occupancy-weighted mean of `min(theoretical, grid warps /
    /// device-wide warp slots)` over the row's sized launches.
    pub achieved_occupancy: Option<f64>,
    /// `max / mean` of per-SM issue slots (1.0 = perfectly balanced).
    pub load_imbalance: Option<f64>,
    /// `flops / dram_bytes` (flop/byte).
    pub arithmetic_intensity: Option<f64>,
    /// Useful floating-point throughput over the row's modeled time.
    pub achieved_gflops: Option<f64>,
    /// DRAM traffic over the row's modeled time, GB/s.
    pub dram_gbs: Option<f64>,
    /// Pure roofline classification (needs a matched device config).
    pub roofline: Option<Roofline>,
    /// Largest modeled time component (top-level rows only).
    pub limiter: Option<Limiter>,
    /// Roofline refined by the timing model (see module docs).
    pub verdict: Option<Verdict>,
}

/// One `(device, kernel)` aggregation of trace spans.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct KernelRow {
    /// Device instance name (e.g. `"GTX Titan"` or `"GTX Titan #1"`).
    pub device: String,
    /// Kernel or transfer name.
    pub name: String,
    pub kind: RowKind,
    /// Number of spans folded into this row.
    pub spans: usize,
    /// Kernel launches folded into this row.
    pub launches: u32,
    /// Ledger indices of the folded spans — each matches the `span_id`
    /// field the chrome-trace exporter writes, cross-linking metric
    /// rows to trace events.
    pub span_ids: Vec<usize>,
    /// Summed span time, seconds (stream rows: attributed time).
    pub time_s: f64,
    /// Summed raw counters.
    pub counters: Counters,
    /// Summed breakdown (top-level spans only).
    pub breakdown: Option<TimeBreakdown>,
    /// Element-wise sum of per-SM issue slots (launch rows only).
    pub sm_issue_cycles: Option<Vec<u64>>,
    /// Derived metrics.
    pub metrics: KernelMetrics,
    /// Occupancy accumulators: Σ(achieved·warps) and Σwarps over sized
    /// launches.
    occ_sum: f64,
    occ_weight: f64,
}

impl KernelRow {
    /// Does this row participate in counter reconciliation?
    pub fn is_counted(&self) -> bool {
        self.kind != RowKind::Group
    }
}

/// Roofline lane for one device preset present in the trace.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DeviceLane {
    /// Device instance name as spans carry it.
    pub device: String,
    /// Preset peak arithmetic throughput, GFLOP/s.
    pub peak_gflops: f64,
    /// Preset DRAM bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Ridge point, flop/byte.
    pub ridge_flops_per_byte: f64,
}

/// The profiler's output: per-kernel rows plus the ledger-equivalent
/// total, ready for report rendering or JSON export.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ProfileReport {
    /// One lane per device instance seen in the trace (first-appearance
    /// order) that matched a supplied config.
    pub devices: Vec<DeviceLane>,
    /// Rows in first-appearance order.
    pub rows: Vec<KernelRow>,
    /// In-order fold of the top-level spans — bit-identical to
    /// [`crate::trace::TraceLedger::total`] for the same spans.
    pub total: RunReport,
}

/// Match a span's device instance name (`"GTX Titan"`, `"GTX Titan #1"`)
/// to its preset config.
fn find_config<'a>(configs: &'a [DeviceConfig], device: &str) -> Option<&'a DeviceConfig> {
    configs.iter().find(|c| c.name == device).or_else(|| {
        configs.iter().find(|c| {
            device
                .strip_prefix(c.name.as_str())
                .is_some_and(|rest| rest.starts_with(" #"))
        })
    })
}

/// Achieved occupancy of one sized launch under the preset's residency
/// limits: `min(theoretical, grid_warps / device-wide warp slots)`.
fn launch_occupancy(cfg: &DeviceConfig, grid_blocks: usize, block_dim: usize) -> (f64, f64) {
    let wpb = block_dim.div_ceil(32).max(1);
    let resident_blocks = (cfg.max_warps_per_sm / wpb).min(cfg.max_blocks_per_sm);
    let resident_warps = (resident_blocks * wpb).min(cfg.max_warps_per_sm);
    let theoretical = resident_warps as f64 / cfg.max_warps_per_sm as f64;
    let grid_warps = (grid_blocks * wpb) as f64;
    let device_slots = (cfg.sm_count * cfg.max_warps_per_sm) as f64;
    let achieved = theoretical.min(grid_warps / device_slots);
    (achieved, grid_warps)
}

fn fdiv(num: f64, den: f64) -> Option<f64> {
    (den > 0.0).then(|| num / den)
}

impl ProfileReport {
    /// Fold trace spans (in ledger record order) into per-kernel rows.
    ///
    /// `configs` supplies the device presets for occupancy and roofline
    /// metrics; rows on devices without a matching config still get the
    /// counter-derived metrics, just no occupancy/roofline.
    pub fn from_spans(spans: &[Span], configs: &[DeviceConfig]) -> ProfileReport {
        // Which Launch spans are pooled groups (have Stream sub-spans)?
        let mut has_streams = vec![false; spans.len()];
        for span in spans {
            if span.kind == SpanKind::Stream {
                if let Some(p) = span.parent {
                    if p < has_streams.len() {
                        has_streams[p] = true;
                    }
                }
            }
        }

        let mut rows: Vec<KernelRow> = Vec::new();
        let mut devices: Vec<DeviceLane> = Vec::new();
        let mut total = RunReport::default();

        for (span_id, span) in spans.iter().enumerate() {
            if span.is_top_level() {
                total = total.then(&RunReport {
                    name: span.name.clone(),
                    time_s: span.dur_s,
                    counters: span.counters,
                    breakdown: span.breakdown.unwrap_or_default(),
                    launches: span.launches,
                });
            }
            let kind = match span.kind {
                SpanKind::Launch if has_streams[span_id] => RowKind::Group,
                SpanKind::Launch | SpanKind::Stream => RowKind::Kernel,
                SpanKind::Transfer => RowKind::Transfer,
                // Child waves re-slice counters already inside their
                // parent's row; the trace keeps the per-wave detail.
                SpanKind::ChildWave => continue,
            };
            let cfg = find_config(configs, &span.device);
            if let Some(cfg) = cfg {
                if !devices.iter().any(|d| d.device == span.device) {
                    devices.push(DeviceLane {
                        device: span.device.clone(),
                        peak_gflops: cfg.peak_gflops,
                        mem_bandwidth_gbs: cfg.bandwidth_bytes_s() / 1e9,
                        ridge_flops_per_byte: cfg.ridge_flops_per_byte(),
                    });
                }
            }
            let row = match rows
                .iter_mut()
                .find(|r| r.kind == kind && r.device == span.device && r.name == span.name)
            {
                Some(row) => row,
                None => {
                    rows.push(KernelRow {
                        device: span.device.clone(),
                        name: span.name.clone(),
                        kind,
                        spans: 0,
                        launches: 0,
                        span_ids: Vec::new(),
                        time_s: 0.0,
                        counters: Counters::default(),
                        breakdown: None,
                        sm_issue_cycles: None,
                        metrics: KernelMetrics::default(),
                        occ_sum: 0.0,
                        occ_weight: 0.0,
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.spans += 1;
            row.launches += span.launches;
            row.span_ids.push(span_id);
            row.time_s += span.dur_s;
            row.counters.merge(&span.counters);
            if let Some(b) = span.breakdown {
                let acc = row.breakdown.get_or_insert_with(TimeBreakdown::default);
                acc.launch_s += b.launch_s;
                acc.compute_s += b.compute_s;
                acc.memory_s += b.memory_s;
                acc.latency_s += b.latency_s;
                acc.dynamic_launch_s += b.dynamic_launch_s;
                acc.transfer_s += b.transfer_s;
            }
            if let Some(sm_issue) = &span.sm_issue_cycles {
                let acc = row.sm_issue_cycles.get_or_insert_with(Vec::new);
                if acc.len() < sm_issue.len() {
                    acc.resize(sm_issue.len(), 0);
                }
                for (a, v) in acc.iter_mut().zip(sm_issue) {
                    *a += v;
                }
            }
            if let Some(cfg) = cfg {
                if span.grid_blocks > 0 && span.block_dim > 0 {
                    let (occ, warps) = launch_occupancy(cfg, span.grid_blocks, span.block_dim);
                    row.occ_sum += occ * warps;
                    row.occ_weight += warps;
                }
            }
        }

        for row in &mut rows {
            row.metrics = derive_metrics(row, find_config(configs, &row.device));
        }
        ProfileReport {
            devices,
            rows,
            total,
        }
    }

    /// Verify the exactly-once accounting contract: non-aggregate rows'
    /// integer counters and launch counts sum *exactly* to the total.
    pub fn reconcile(&self) -> Result<(), String> {
        let mut counters = Counters::default();
        let mut launches = 0u32;
        for row in self.rows.iter().filter(|r| r.is_counted()) {
            counters.merge(&row.counters);
            launches += row.launches;
        }
        if counters != self.total.counters {
            return Err(format!(
                "profile rows do not reconcile with the trace total:\n rows  {counters:?}\n total {:?}",
                self.total.counters
            ));
        }
        if launches != self.total.launches {
            return Err(format!(
                "profile row launches {} != trace total {}",
                launches, self.total.launches
            ));
        }
        Ok(())
    }

    /// Rows sorted by descending time — the "hot kernels" view.
    pub fn rows_by_time(&self) -> Vec<&KernelRow> {
        let mut v: Vec<&KernelRow> = self.rows.iter().collect();
        v.sort_by(|a, b| b.time_s.total_cmp(&a.time_s));
        v
    }

    /// First row matching `(device, name)` exactly.
    pub fn row(&self, device: &str, name: &str) -> Option<&KernelRow> {
        self.rows
            .iter()
            .find(|r| r.device == device && r.name == name)
    }
}

fn derive_metrics(row: &KernelRow, cfg: Option<&DeviceConfig>) -> KernelMetrics {
    let c = &row.counters;
    let masked_ops: u64 = c.lane_hist.iter().sum();
    let divergent = masked_ops - c.lane_hist[LANE_HIST_BINS - 1];
    let flops = c.flops as f64;
    let bytes = c.dram_bytes() as f64;
    let ai = fdiv(flops, bytes);
    let roofline = cfg.and_then(|cfg| match ai {
        Some(ai) => Some(if ai < cfg.ridge_flops_per_byte() {
            Roofline::MemoryBound
        } else {
            Roofline::ComputeBound
        }),
        // No DRAM traffic at all: compute-bound iff any flops ran.
        None => (c.flops > 0).then_some(Roofline::ComputeBound),
    });
    let limiter = row.breakdown.as_ref().map(|b| {
        let overhead = b.launch_s + b.dynamic_launch_s + b.transfer_s;
        let m = b.compute_s.max(b.memory_s).max(b.latency_s).max(overhead);
        if m == b.latency_s {
            Limiter::Latency
        } else if m == b.memory_s {
            Limiter::Memory
        } else if m == b.compute_s {
            Limiter::Compute
        } else {
            Limiter::Overhead
        }
    });
    let latency_dominated = row
        .breakdown
        .as_ref()
        .is_some_and(|b| b.latency_s > b.compute_s && b.latency_s > b.memory_s);
    let verdict = roofline.map(|r| {
        if latency_dominated {
            Verdict::LatencyBound
        } else {
            match r {
                Roofline::MemoryBound => Verdict::MemoryBound,
                Roofline::ComputeBound => Verdict::ComputeBound,
            }
        }
    });
    let load_imbalance = row.sm_issue_cycles.as_ref().and_then(|sm| {
        let total: u64 = sm.iter().sum();
        let max = sm.iter().copied().max().unwrap_or(0);
        (total > 0 && !sm.is_empty()).then(|| max as f64 / (total as f64 / sm.len() as f64))
    });
    KernelMetrics {
        warp_execution_efficiency: c.warp_execution_efficiency(),
        coalescing_efficiency: c.coalescing_efficiency(),
        tex_hit_rate: c.tex_hit_rate(),
        atomic_serialization: c.atomic_serialization(),
        divergent_op_fraction: fdiv(divergent as f64, masked_ops as f64),
        achieved_occupancy: fdiv(row.occ_sum, row.occ_weight),
        load_imbalance,
        arithmetic_intensity: ai,
        achieved_gflops: fdiv(flops / 1e9, row.time_s),
        dram_gbs: fdiv(bytes / 1e9, row.time_s),
        roofline,
        limiter,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;
    use crate::engine::Device;
    use crate::{lane_mask, FULL_MASK, WARP};

    fn span(kind: SpanKind, name: &str, device: &str) -> Span {
        Span {
            kind,
            name: name.to_string(),
            device: device.to_string(),
            grid_blocks: 0,
            block_dim: 0,
            sm: None,
            seq: None,
            parent: None,
            t_start_s: 0.0,
            dur_s: 0.0,
            counters: Counters::default(),
            breakdown: None,
            launches: 0,
            sm_issue_cycles: None,
            wave: None,
        }
    }

    #[test]
    fn config_matching_handles_multigpu_suffixes() {
        let configs = [presets::gtx_titan(), presets::tesla_k10_single()];
        assert_eq!(
            find_config(&configs, "GTX Titan").map(|c| c.name.as_str()),
            Some("GTX Titan")
        );
        assert_eq!(
            find_config(&configs, "GTX Titan #1").map(|c| c.name.as_str()),
            Some("GTX Titan")
        );
        assert!(find_config(&configs, "GTX Titanic").is_none());
        assert!(find_config(&configs, "GTX 580").is_none());
    }

    #[test]
    fn group_rows_are_aggregates_and_streams_reconcile() {
        let cfgs = [presets::gtx_titan()];
        let mut group = span(SpanKind::Launch, "acsr_bins", "GTX Titan");
        group.counters.warp_instructions = 30;
        group.counters.flops = 12;
        group.launches = 2;
        group.breakdown = Some(TimeBreakdown::default());
        group.dur_s = 1.0;
        group.sm_issue_cycles = Some(vec![3, 1]);
        let mut s0 = span(SpanKind::Stream, "acsr_bin0", "GTX Titan");
        s0.parent = Some(0);
        s0.counters.warp_instructions = 10;
        s0.counters.flops = 4;
        s0.launches = 1;
        s0.grid_blocks = 4;
        s0.block_dim = 128;
        let mut s1 = span(SpanKind::Stream, "acsr_bin1", "GTX Titan");
        s1.parent = Some(0);
        s1.counters.warp_instructions = 20;
        s1.counters.flops = 8;
        s1.launches = 1;
        let p = ProfileReport::from_spans(&[group, s0, s1], &cfgs);
        p.reconcile().expect("streams cover the group total");
        let g = p.row("GTX Titan", "acsr_bins").expect("group row");
        assert_eq!(g.kind, RowKind::Group);
        assert!(!g.is_counted());
        assert_eq!(g.sm_issue_cycles, Some(vec![3, 1]));
        assert_eq!(
            p.row("GTX Titan", "acsr_bin0").unwrap().kind,
            RowKind::Kernel
        );
        assert_eq!(p.devices.len(), 1);
        assert_eq!(p.total.launches, 2);
        assert_eq!(p.total.counters.flops, 12);
    }

    #[test]
    fn reconcile_rejects_tampered_totals() {
        let cfgs = [presets::gtx_titan()];
        let mut s = span(SpanKind::Launch, "k", "GTX Titan");
        s.counters.warp_instructions = 5;
        s.launches = 1;
        s.breakdown = Some(TimeBreakdown::default());
        let mut p = ProfileReport::from_spans(&[s], &cfgs);
        p.reconcile().expect("single launch reconciles");
        p.total.counters.warp_instructions += 1;
        assert!(p.reconcile().is_err());
    }

    #[test]
    fn occupancy_model_matches_hand_computation() {
        let cfg = presets::gtx_titan(); // 14 SMs, 64 warps/SM, 16 blocks/SM
                                        // 256-thread blocks: 8 warps/block, 8 resident blocks (64/8),
                                        // theoretical occupancy 1.0; a tiny 2-block grid is tail-limited.
        let (occ, warps) = launch_occupancy(&cfg, 2, 256);
        assert_eq!(warps, 16.0);
        assert!((occ - 16.0 / (14.0 * 64.0)).abs() < 1e-12);
        // A large grid saturates: achieved == theoretical == 1.0.
        let (occ, _) = launch_occupancy(&cfg, 4096, 256);
        assert_eq!(occ, 1.0);
        // 1024-thread blocks: 32 warps/block, 2 resident blocks => full.
        let (occ, _) = launch_occupancy(&cfg, 4096, 1024);
        assert_eq!(occ, 1.0);
        // 33 threads: 2 warps/block, 16-block residency cap => 32/64.
        let (occ, _) = launch_occupancy(&cfg, 4096, 33);
        assert!((occ - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roofline_and_verdict_disagree_only_on_latency() {
        let cfgs = [presets::gtx_titan()];
        let mut s = span(SpanKind::Launch, "tail", "GTX Titan");
        s.counters.flops = 1000;
        s.counters.dram_read_bytes = 100_000; // AI = 0.01 << ridge
        s.launches = 1;
        s.dur_s = 1.0;
        s.breakdown = Some(TimeBreakdown {
            latency_s: 0.8,
            memory_s: 0.1,
            compute_s: 0.05,
            ..TimeBreakdown::default()
        });
        let p = ProfileReport::from_spans(&[s], &cfgs);
        let m = &p.rows[0].metrics;
        assert_eq!(m.roofline, Some(Roofline::MemoryBound));
        assert_eq!(m.limiter, Some(Limiter::Latency));
        assert_eq!(m.verdict, Some(Verdict::LatencyBound));
        assert!(m.arithmetic_intensity.unwrap() < 0.02);
    }

    #[test]
    fn load_imbalance_is_max_over_mean() {
        let cfgs = [presets::gtx_titan()];
        let mut s = span(SpanKind::Launch, "k", "GTX Titan");
        s.launches = 1;
        s.breakdown = Some(TimeBreakdown::default());
        s.sm_issue_cycles = Some(vec![30, 10, 20, 0]);
        let p = ProfileReport::from_spans(&[s], &cfgs);
        let got = p.rows[0].metrics.load_imbalance.unwrap();
        assert!((got - 2.0).abs() < 1e-12, "30 / mean(15) = 2, got {got}");
    }

    /// End-to-end: run real kernels under tracing and profile the spans.
    #[test]
    fn real_launches_profile_and_reconcile() {
        let mut dev = Device::new(presets::gtx_titan());
        let ledger = dev.enable_tracing();
        let n = 4096usize;
        let a = dev.alloc((0..n as u32).collect::<Vec<_>>());
        let out = dev.alloc(vec![0u32; n]);
        for _ in 0..3 {
            dev.launch("double", n / 256, 256, &|block| {
                block.for_each_warp(&mut |warp| {
                    let base = warp.first_thread();
                    let vals = warp.read_coalesced(&a, base, FULL_MASK);
                    let mut doubled = [0u32; WARP];
                    for i in 0..WARP {
                        doubled[i] = vals[i] * 2;
                    }
                    warp.charge_alu(1);
                    warp.write_coalesced(&out, base, &doubled, FULL_MASK);
                });
            });
        }
        // A divergent kernel: only 4 lanes of each warp do masked work.
        dev.launch("ragged", 4, 256, &|block| {
            block.for_each_warp(&mut |warp| {
                let m = lane_mask(4);
                let idx: [usize; WARP] = std::array::from_fn(|i| (i * 61) % n);
                let xs = warp.gather(&a, &idx, m);
                let mut acc = [0u32; WARP];
                for lane in 0..4 {
                    acc[lane] = xs[lane] + 1;
                }
                warp.charge_alu(1);
                warp.write_coalesced(&out, warp.first_thread(), &acc, m);
            });
        });
        let spans = ledger.spans();
        let cfgs = [presets::gtx_titan()];
        let p = ProfileReport::from_spans(&spans, &cfgs);
        p.reconcile().expect("profile reconciles with the ledger");
        assert_eq!(p.total.counters, ledger.total().counters);
        assert_eq!(p.total.time_s.to_bits(), ledger.total().time_s.to_bits());

        let d = p.row("GTX Titan", "double").expect("double row");
        assert_eq!(d.spans, 3);
        assert_eq!(d.launches, 3);
        assert_eq!(d.span_ids, vec![0, 1, 2]);
        // Full-warp coalesced kernel: efficiency 1.0 on both axes.
        assert_eq!(d.metrics.warp_execution_efficiency, Some(1.0));
        assert_eq!(d.metrics.coalescing_efficiency, Some(1.0));
        assert_eq!(d.metrics.tex_hit_rate, None, "no texture reads");
        let occ = d.metrics.achieved_occupancy.expect("sized launches");
        assert!(occ > 0.0 && occ <= 1.0);
        assert!(d.metrics.load_imbalance.unwrap() >= 1.0);

        let r = p.row("GTX Titan", "ragged").expect("ragged row");
        let weff = r.metrics.warp_execution_efficiency.unwrap();
        assert!(
            weff < d.metrics.warp_execution_efficiency.unwrap(),
            "masked kernel must waste lanes: {weff}"
        );
        // The strided gather cannot be perfectly coalesced.
        assert!(r.metrics.coalescing_efficiency.unwrap() < 1.0);
        // Divergence histogram saw the 4-lane ops.
        assert!(r.counters.lane_hist[2] > 0, "{:?}", r.counters.lane_hist);
    }
}
