//! # gpu-sim — a warp-level SIMT GPU simulator
//!
//! The hardware substrate for this reproduction. The paper's claims are
//! about microarchitectural effects of SpMV kernels on NVIDIA GPUs —
//! warp divergence, wasted SIMT lanes, memory coalescing, texture-cache
//! reuse, kernel-launch overhead, and dynamic parallelism limits. This
//! crate provides:
//!
//! * **Functional execution**: kernels are Rust closures written against
//!   an explicit warp API ([`warp::WarpCtx`]) — 32-lane gathers/scatters,
//!   shuffles, atomics, predicated masks. Results are exact.
//! * **An analytic timing model** ([`engine`]): every warp instruction
//!   charges issue slots; every memory access is split into DRAM
//!   transactions by coalescing rules; a per-SM set-associative texture
//!   cache ([`cache`]) filters `x` reads; per-warp *critical paths* model
//!   the latency-bound long-row tails that motivate ACSR; dynamic child
//!   launches charge device-side overhead and respect the
//!   `cudaLimitDevRuntimePendingLaunchCount` limit of the paper's §III-B.
//!
//! Device presets ([`config::presets`]) mirror the paper's Table II
//! testbed: GTX 580 (Fermi, cc 2.0), Tesla K10 (GK104, cc 3.0, dual) and
//! GTX Titan (GK110, cc 3.5 — the only one with dynamic parallelism).
//!
//! ## Parallel host execution
//!
//! Launches are partitioned into one shard per SM and the shards may run
//! on several host threads ([`engine::sim_threads`] threads; override
//! with [`engine::set_sim_threads`] or the `ACSR_SIM_THREADS` environment
//! variable, `1` forcing sequential). Worker count is pure mechanism:
//! reports are bit-identical at every width. Kernels are therefore
//! `Fn + Sync` closures, and buffer writes go through `&DeviceBuffer`
//! (see [`buffer`] for the CUDA-style kernel data contract).
//!
//! ## Tracing
//!
//! An opt-in launch-level trace ledger ([`trace`]) records one span per
//! launch (plus per-stream and per-child-wave slices and PCIe transfers)
//! with full [`Counters`] and [`TimeBreakdown`], exports
//! chrome://tracing JSON, and reconciles span sums bit-identically
//! against the merged [`RunReport`]. Attach per device with
//! [`Device::enable_tracing`] or process-wide with
//! [`trace::enable_global_capture`]; disabled devices pay nothing.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{presets, Device, FULL_MASK, WARP};
//!
//! let dev = Device::new(presets::gtx_titan());
//! let a = dev.alloc((0..64u32).collect::<Vec<_>>());
//! let out = dev.alloc(vec![0u32; 64]);
//! let report = dev.launch("double", 2, 32, &|block| {
//!     block.for_each_warp(&mut |warp| {
//!         let base = warp.first_thread();
//!         let vals = warp.read_coalesced(&a, base, FULL_MASK);
//!         let mut doubled = [0u32; WARP];
//!         for i in 0..WARP {
//!             doubled[i] = vals[i] * 2;
//!         }
//!         warp.charge_alu(1);
//!         warp.write_coalesced(&out, base, &doubled, FULL_MASK);
//!     });
//! });
//! assert_eq!(out.as_slice()[10], 20);
//! assert!(report.time_s > 0.0);
//! ```

pub(crate) mod arena;
pub mod buffer;
pub mod cache;
pub mod config;
pub mod counters;
pub mod engine;
pub mod event;
pub mod profile;
pub mod trace;
pub mod warp;

pub use buffer::{DevCopy, DeviceBuffer};
pub use config::{presets, DeviceConfig};
pub use counters::{Counters, RunReport, TimeBreakdown};
pub use engine::{
    effective_workers, host_cores, override_host_cores, set_sim_threads, sim_threads, BlockCtx,
    ConcurrentGroup, Device, KernelFn,
};
pub use event::{set_tie_break, tie_break, TieBreak};
pub use profile::{KernelMetrics, KernelRow, ProfileReport, Roofline, RowKind, Verdict};
pub use trace::{Span, SpanKind, TraceLedger};
pub use warp::{lane_mask, WarpCtx, FULL_MASK, WARP};
