//! Set-associative cache simulator (texture / read-only data cache).
//!
//! The paper places the input vector `x` in texture memory ("which in
//! general improves memory access... also employed by cuSPARSE and CUSP",
//! §IV). This small LRU cache model decides which `x` gathers hit on-chip
//! and which fall through to DRAM — the locality difference between
//! skewed (Zipf-popular columns) and uniform access is exactly what makes
//! the texture path worthwhile.

/// Set-associative LRU cache over 64-bit byte addresses.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    /// `sets * ways` tags; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Per-line last-touch stamps for LRU.
    stamps: Vec<u64>,
    tick: u64,
}

impl SetAssocCache {
    /// Build a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity. Set count is rounded down to a power of
    /// two (at least 1).
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> SetAssocCache {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        let ways = ways.max(1);
        let lines = (capacity_bytes / line_bytes).max(1);
        // Exact set count with modulo indexing, so capacity is preserved
        // even when (say) 48 KiB / 8-way / 32 B gives 192 sets.
        let sets = (lines / ways).max(1);
        SetAssocCache {
            line_bytes: line_bytes as u64,
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
        }
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes as usize
    }

    /// Access the line containing `addr`; returns `true` on hit. Misses
    /// fill the line (LRU eviction).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.sets;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(w) = slots.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.tick;
            return true;
        }
        // miss: evict LRU way
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            let s = self.stamps[base + w];
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Drop all contents (kernel boundary).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = SetAssocCache::new(1024, 32, 4);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(31)); // same line
        assert!(!c.access(32)); // next line
    }

    #[test]
    fn capacity_bound_causes_eviction() {
        let mut c = SetAssocCache::new(128, 32, 4); // 4 lines, single set
        for i in 0..5u64 {
            c.access(i * 32);
        }
        // line 0 was LRU and evicted by the 5th distinct line
        assert!(!c.access(0));
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = SetAssocCache::new(128, 32, 4); // one set of 4 ways
        for i in 0..4u64 {
            c.access(i * 32);
        }
        c.access(0); // refresh line 0
        c.access(4 * 32); // evicts LRU = line 1
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(32), "line 1 must be gone");
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = SetAssocCache::new(1024, 32, 4);
        c.access(64);
        c.flush();
        assert!(!c.access(64));
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = SetAssocCache::new(48 * 1024, 32, 8);
        let lines = 48 * 1024 / 32;
        // Sequential addresses map round-robin over sets: fits exactly.
        for i in 0..lines as u64 {
            c.access(i * 32);
        }
        let hits = (0..lines as u64).filter(|&i| c.access(i * 32)).count();
        assert_eq!(hits, lines);
    }

    #[test]
    fn streaming_scan_never_hits() {
        let mut c = SetAssocCache::new(1024, 32, 4);
        let hits = (0..10_000u64).filter(|&i| c.access(i * 32)).count();
        assert_eq!(hits, 0);
    }
}
