//! Set-associative cache simulator (texture / read-only data cache).
//!
//! The paper places the input vector `x` in texture memory ("which in
//! general improves memory access... also employed by cuSPARSE and CUSP",
//! §IV). This small LRU cache model decides which `x` gathers hit on-chip
//! and which fall through to DRAM — the locality difference between
//! skewed (Zipf-popular columns) and uniform access is exactly what makes
//! the texture path worthwhile.

/// Set-associative LRU cache over 64-bit byte addresses.
///
/// The probe path is the hottest loop of texture-bound kernels (one
/// probe per distinct line per warp gather), so `access` avoids the two
/// hardware divisions a naive `addr / line_bytes` + `line % sets` pair
/// would issue: the line split is a shift (line size is a power of two)
/// and the set index uses an exact multiply-shift remainder
/// (`SetAssocCache::set_of`). Both are bit-identical to the plain
/// arithmetic — only faster.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    line_bytes: u64,
    /// `log2(line_bytes)`.
    line_shift: u32,
    sets: usize,
    /// `floor(2^64 / sets) + 1`: division-free remainder magic, exact
    /// for every line id below 2^48 (see `SetAssocCache::set_of`).
    sets_magic: u64,
    ways: usize,
    /// `sets * ways` tags; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Per-line last-touch stamps for LRU.
    stamps: Vec<u64>,
    tick: u64,
}

impl SetAssocCache {
    /// Build a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity. Set count is rounded down to a power of
    /// two (at least 1).
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> SetAssocCache {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        let ways = ways.max(1);
        let lines = (capacity_bytes / line_bytes).max(1);
        // Exact set count with modulo indexing, so capacity is preserved
        // even when (say) 48 KiB / 8-way / 32 B gives 192 sets.
        let sets = (lines / ways).max(1);
        let sets_magic = if sets > 1 {
            (((1u128 << 64) / sets as u128) + 1) as u64
        } else {
            0
        };
        SetAssocCache {
            line_bytes: line_bytes as u64,
            line_shift: line_bytes.trailing_zeros(),
            sets,
            sets_magic,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
        }
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes as usize
    }

    /// `line % sets` without a division. With `m = floor(2^64/d) + 1`,
    /// `q = floor(line * m / 2^64)` equals `floor(line / d)` exactly
    /// whenever `line < 2^48` and `1 < d < 2^16` (the rounding error is
    /// below `2^-16` and the fractional part of `line/d` is at most
    /// `1 - 1/d`, so they can never straddle an integer). Device
    /// addresses are far below 2^48; anything larger falls back to `%`.
    #[inline]
    fn set_of(&self, line: u64) -> usize {
        let d = self.sets as u64;
        if d == 1 {
            return 0;
        }
        if line < (1 << 48) && d < (1 << 16) {
            let q = ((line as u128 * self.sets_magic as u128) >> 64) as u64;
            (line - q * d) as usize
        } else {
            (line % d) as usize
        }
    }

    /// Access the line containing `addr`; returns `true` on hit. Misses
    /// fill the line (LRU eviction). Dispatches to a fixed-width probe
    /// for the common associativities so the way loops fully unroll and
    /// vectorize (this is the innermost loop of texture-bound kernels).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_line(addr >> self.line_shift)
    }

    /// [`SetAssocCache::access`] by line id (`addr >> log2(line_bytes)`).
    /// Callers that already track line ids (the index-space texture
    /// gather) skip materializing a byte address just to shift it back.
    #[inline]
    pub fn access_line(&mut self, line: u64) -> bool {
        self.tick += 1;
        let base = self.set_of(line) * self.ways;
        match self.ways {
            4 => self.access_set::<4>(line, base),
            8 => self.access_set::<8>(line, base),
            w => self.access_set_dyn(line, base, w),
        }
    }

    /// Probe one set of `W` ways starting at flat index `base`.
    #[inline]
    fn access_set<const W: usize>(&mut self, line: u64, base: usize) -> bool {
        debug_assert_eq!(W, self.ways);
        debug_assert!(base + W <= self.tags.len());
        // SAFETY: `base = set * ways` with `set < sets`, and both vectors
        // hold exactly `sets * ways` elements, so the `W`-element set
        // views are in bounds and disjoint from each other.
        let tags: &mut [u64; W] =
            unsafe { &mut *(self.tags.as_mut_ptr().add(base) as *mut [u64; W]) };
        let stamps: &mut [u64; W] =
            unsafe { &mut *(self.stamps.as_mut_ptr().add(base) as *mut [u64; W]) };
        // Tags within a set are distinct (a line is only inserted when
        // absent), so a hit-mask scan finds the unique hit way. The OR
        // accumulations are independent (no loop-carried compare chain),
        // so this compiles to a SIMD compare + movemask.
        let mut hm = 0u32;
        for (w, &tag) in tags.iter().enumerate() {
            hm |= u32::from(tag == line) << w;
        }
        // Victim on a miss: the first way with the minimum stamp. Valid
        // stamps are distinct positive ticks and invalid ways carry stamp
        // 0 (`flush`/`new` zero them; every touch stamps tick ≥ 1), so
        // this argmin IS "first invalid way, else least recently used".
        // Pack `(stamp << log2 W) | way` and tournament-reduce: the min
        // packed value has the min stamp, and among equal stamps (only
        // the zero-stamped invalid ways) the smallest way index — the
        // same "first argmin" a sequential scan picks, computed in
        // log2(W) dependent steps instead of W.
        let wb = W.trailing_zeros();
        let mut p = [0u64; W];
        for w in 0..W {
            p[w] = (stamps[w] << wb) | w as u64;
        }
        let mut stride = W / 2;
        while stride > 0 {
            for w in 0..stride {
                p[w] = p[w].min(p[w + stride]);
            }
            stride /= 2;
        }
        // Branchless refill (hit/miss outcomes interleave unpredictably,
        // so a data-dependent branch here mispredicts constantly): on a
        // hit, "refilling" the hit way stores the tag value it already
        // holds and the stamp the hit path would store — identical state
        // to the classic two-branch update.
        let hit = hm != 0;
        let way = if hit {
            hm.trailing_zeros() as usize
        } else {
            (p[0] & ((1 << wb) - 1)) as usize
        };
        tags[way] = line;
        stamps[way] = self.tick;
        hit
    }

    /// Fallback probe for unusual associativities; same algorithm as
    /// [`SetAssocCache::access_set`] with a runtime way count.
    fn access_set_dyn(&mut self, line: u64, base: usize, ways: usize) -> bool {
        let tags = &mut self.tags[base..base + ways];
        let stamps = &mut self.stamps[base..base + ways];
        let mut hit = usize::MAX;
        for (w, &t) in tags.iter().enumerate() {
            if t == line {
                hit = w;
            }
        }
        if hit != usize::MAX {
            stamps[hit] = self.tick;
            return true;
        }
        let mut victim = 0;
        let mut oldest = stamps[0];
        for (w, &s) in stamps.iter().enumerate().skip(1) {
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        tags[victim] = line;
        stamps[victim] = self.tick;
        false
    }

    /// Drop all contents (kernel boundary). Keeps the allocation, so a
    /// flushed cache is observationally identical to a new one — the
    /// launch arena relies on this to reuse caches across launches.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = SetAssocCache::new(1024, 32, 4);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(31)); // same line
        assert!(!c.access(32)); // next line
    }

    #[test]
    fn capacity_bound_causes_eviction() {
        let mut c = SetAssocCache::new(128, 32, 4); // 4 lines, single set
        for i in 0..5u64 {
            c.access(i * 32);
        }
        // line 0 was LRU and evicted by the 5th distinct line
        assert!(!c.access(0));
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = SetAssocCache::new(128, 32, 4); // one set of 4 ways
        for i in 0..4u64 {
            c.access(i * 32);
        }
        c.access(0); // refresh line 0
        c.access(4 * 32); // evicts LRU = line 1
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(32), "line 1 must be gone");
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = SetAssocCache::new(1024, 32, 4);
        c.access(64);
        c.flush();
        assert!(!c.access(64));
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = SetAssocCache::new(48 * 1024, 32, 8);
        let lines = 48 * 1024 / 32;
        // Sequential addresses map round-robin over sets: fits exactly.
        for i in 0..lines as u64 {
            c.access(i * 32);
        }
        let hits = (0..lines as u64).filter(|&i| c.access(i * 32)).count();
        assert_eq!(hits, lines);
    }

    #[test]
    fn streaming_scan_never_hits() {
        let mut c = SetAssocCache::new(1024, 32, 4);
        let hits = (0..10_000u64).filter(|&i| c.access(i * 32)).count();
        assert_eq!(hits, 0);
    }
}
