//! # par-runtime — a minimal data-parallel runtime
//!
//! The CPU execution backend for this workspace. It provides the small set
//! of data-parallel primitives the SpMV kernels and graph applications
//! need — `parallel_for`, `parallel_reduce`, chunked mutation, and `join` —
//! on top of a persistent worker pool built with [`crossbeam`] channels and
//! [`parking_lot`] synchronization.
//!
//! The design goals, in order:
//!
//! 1. **Correctness**: no data races by construction; every primitive blocks
//!    until all workers finished, so borrowed data is never observed after
//!    the call returns.
//! 2. **Dynamic load balance**: work is handed out in grains from a shared
//!    atomic cursor, so skewed workloads (exactly the power-law rows this
//!    repository cares about) do not idle workers.
//! 3. **Low overhead**: workers are spawned once and parked between calls.
//!
//! This crate deliberately reimplements the needed subset of `rayon`
//! (which is outside the allowed dependency set for this reproduction, see
//! DESIGN.md §6).
//!
//! ```
//! let mut squares = vec![0u64; 1000];
//! par_runtime::for_each_chunk_mut(&mut squares, 64, |offset, chunk| {
//!     for (i, slot) in chunk.iter_mut().enumerate() {
//!         *slot = ((offset + i) as u64).pow(2);
//!     }
//! });
//! assert_eq!(squares[31], 31 * 31);
//! ```

mod ops;
mod pool;

pub use ops::{
    for_each_chunk_mut, join, parallel_fill, parallel_for, parallel_map_into, parallel_reduce,
};
pub use pool::{configure_threads, num_threads, par_shards, Pool};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(hits.len(), 17, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_zero_items_is_a_noop() {
        parallel_for(0, 8, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_reduce_sums_like_sequential() {
        let data: Vec<u64> = (0..100_000).collect();
        let total = parallel_reduce(
            data.len(),
            1024,
            || 0u64,
            |acc, range| acc + range.map(|i| data[i]).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn parallel_reduce_empty_returns_identity() {
        let v = parallel_reduce(0, 16, || 42u32, |acc, _| acc + 1, |a, b| a.min(b));
        assert_eq!(v, 42);
    }

    #[test]
    fn for_each_chunk_mut_partitions_disjointly() {
        let mut data = vec![0usize; 5000];
        for_each_chunk_mut(&mut data, 333, |offset, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = offset + i;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn nested_parallel_for_does_not_deadlock() {
        // A parallel_for inside a parallel_for must complete (inner calls
        // run inline on the caller when the pool is busy).
        let count = AtomicUsize::new(0);
        parallel_for(8, 1, |outer| {
            for _ in outer {
                parallel_for(8, 1, |inner| {
                    count.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn parallel_fill_sets_every_slot() {
        let mut v = vec![0.0f64; 10_001];
        parallel_fill(&mut v, 3.5);
        assert!(v.iter().all(|&x| x == 3.5));
    }

    #[test]
    fn parallel_map_into_matches_sequential_map() {
        let src: Vec<u32> = (0..4096).collect();
        let mut dst = vec![0u32; 4096];
        parallel_map_into(&src, &mut dst, 100, |&x| x * 3 + 1);
        for i in 0..4096 {
            assert_eq!(dst[i], src[i] * 3 + 1);
        }
    }
}
