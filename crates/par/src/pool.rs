//! Persistent worker pool.
//!
//! Workers block on a crossbeam MPMC channel. Each parallel call publishes a
//! single *task header* (an `Arc`) carrying an atomic grain cursor and a
//! type-erased pointer to the caller's closure. Workers — and the calling
//! thread itself — claim grain indices from the cursor until it is
//! exhausted; the caller then waits for the claimed grains to complete.
//!
//! ## Why this is sound
//!
//! The closure pointer inside [`TaskHeader`] refers to a closure on the
//! *caller's stack*, so it must never be dereferenced after the calling
//! function returns. The invariant that guarantees this:
//!
//! * the pointer is dereferenced only after successfully claiming a grain
//!   (`cursor.fetch_add(1) < n_grains`), and
//! * the caller returns only once `completed == n_grains`, i.e. after every
//!   claimed grain has finished running.
//!
//! A worker that dequeues a stale header (all grains long finished) observes
//! an exhausted cursor and drops the `Arc` without touching the closure.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A type-erased, unsafely-`'static` pointer to a `Fn(Range<usize>) + Sync`
/// closure living on the initiating caller's stack.
struct ClosurePtr(*const (dyn Fn(Range<usize>) + Sync + 'static));

// SAFETY: the pointee is `Sync` (so `&closure` may be shared across
// threads), and the pool's completion protocol (module docs) guarantees the
// pointer is not dereferenced after the caller returns.
unsafe impl Send for ClosurePtr {}
unsafe impl Sync for ClosurePtr {}

/// Shared state for one parallel call.
struct TaskHeader {
    /// Next grain index to hand out.
    cursor: AtomicUsize,
    /// Number of grains in this task.
    n_grains: usize,
    /// Grain size in items (last grain may be short).
    grain: usize,
    /// Total number of items.
    total: usize,
    /// Grains fully executed so far.
    completed: AtomicUsize,
    /// Caller parks here until `completed == n_grains`.
    done_lock: Mutex<bool>,
    done_cond: Condvar,
    /// First panic payload raised by any grain, re-thrown on the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    body: ClosurePtr,
}

impl TaskHeader {
    /// Claim and run grains until the cursor is exhausted.
    /// Returns the number of grains this thread executed.
    ///
    /// A panicking grain still counts towards completion — otherwise the
    /// caller (or, with a single worker, every subsequent `par_shards`
    /// wait) would park forever on a count that can no longer be reached.
    /// The payload is stashed and re-thrown on the calling thread instead.
    fn drain(&self) -> usize {
        let mut ran = 0;
        loop {
            let g = self.cursor.fetch_add(1, Ordering::Relaxed);
            if g >= self.n_grains {
                return ran;
            }
            let lo = g * self.grain;
            let hi = (lo + self.grain).min(self.total);
            // SAFETY: a grain was claimed, so the caller has not yet
            // returned and the closure is alive (see module docs).
            let body = unsafe { &*self.body.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(lo..hi))) {
                let mut slot = self.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            ran += 1;
            let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
            if done == self.n_grains {
                let mut flag = self.done_lock.lock();
                *flag = true;
                self.done_cond.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut flag = self.done_lock.lock();
        while !*flag {
            self.done_cond.wait(&mut flag);
        }
    }
}

/// A persistent pool of worker threads executing chunked parallel loops.
///
/// Most users never construct one: the free functions in this crate operate
/// on a lazily-created global pool (see [`configure_threads`]). Dedicated
/// pools are useful in tests that need a specific width.
pub struct Pool {
    sender: Sender<Arc<TaskHeader>>,
    threads: usize,
}

impl Pool {
    /// Create a pool with `threads` workers (the calling thread also
    /// participates in every parallel call, so total parallelism is
    /// `threads + 1` when the caller is otherwise idle).
    pub fn new(threads: usize) -> Self {
        let (sender, receiver): (Sender<Arc<TaskHeader>>, Receiver<Arc<TaskHeader>>) = unbounded();
        for id in 0..threads {
            let rx = receiver.clone();
            std::thread::Builder::new()
                .name(format!("par-runtime-{id}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        task.drain();
                    }
                })
                .expect("failed to spawn par-runtime worker");
        }
        Pool { sender, threads }
    }

    /// Number of worker threads (excluding callers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `body` over `0..total` split into grains of `grain` items.
    ///
    /// Blocks until every grain has executed. The calling thread itself
    /// executes grains, so this is deadlock-free even when invoked from
    /// inside another parallel call.
    pub fn run(&self, total: usize, grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        if total == 0 {
            return;
        }
        let grain = grain.max(1);
        let n_grains = total.div_ceil(grain);
        if n_grains == 1 || self.threads == 0 {
            body(0..total);
            return;
        }
        // SAFETY: erase the closure's lifetime; the completion protocol
        // (module docs) prevents use-after-return.
        let body_static: *const (dyn Fn(Range<usize>) + Sync + 'static) =
            unsafe { std::mem::transmute(body as *const (dyn Fn(Range<usize>) + Sync)) };
        let header = Arc::new(TaskHeader {
            cursor: AtomicUsize::new(0),
            n_grains,
            grain,
            total,
            completed: AtomicUsize::new(0),
            done_lock: Mutex::new(false),
            done_cond: Condvar::new(),
            panic: Mutex::new(None),
            body: ClosurePtr(body_static),
        });
        // Wake at most as many workers as there are grains beyond the one
        // the caller will take.
        let helpers = self.threads.min(n_grains - 1);
        for _ in 0..helpers {
            // Send failure means workers are gone, which only happens at
            // process teardown; fall back to inline execution below.
            let _ = self.sender.send(Arc::clone(&header));
        }
        header.drain();
        header.wait();
        let payload = header.panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Run `body(shard)` once for every shard in `0..n_shards`, each shard
    /// exactly once, distributed over the pool (the caller participates).
    ///
    /// This is the executor behind `gpu-sim`'s per-SM sharded launches:
    /// shards are claimed dynamically, so a shard with skewed work does
    /// not idle the rest of the pool, and the call blocks until every
    /// shard has finished (or re-throws the first shard panic).
    pub fn run_shards(&self, n_shards: usize, body: &(dyn Fn(usize) + Sync)) {
        self.run(n_shards, 1, &|r: Range<usize>| {
            for s in r {
                body(s);
            }
        });
    }
}

/// Dedicated pools keyed by total width, for callers that need a specific
/// parallelism regardless of how the global pool was configured (the
/// simulator's `ACSR_SIM_THREADS` knob, width-sweep benchmarks). Pools are
/// created on first use and live for the process; threads park between
/// calls, so idle widths cost nothing but stack space.
static SHARD_POOLS: OnceLock<Mutex<HashMap<usize, &'static Pool>>> = OnceLock::new();

fn shard_pool(threads: usize) -> &'static Pool {
    let map = SHARD_POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut m = map.lock();
    m.entry(threads)
        .or_insert_with(|| &*Box::leak(Box::new(Pool::new(threads - 1))))
}

/// Run `body(shard)` for every shard in `0..n_shards` on a pool of exactly
/// `threads` total threads (workers + the caller). `threads <= 1` runs all
/// shards inline on the caller, in order — the forced-sequential path.
pub fn par_shards(threads: usize, n_shards: usize, body: impl Fn(usize) + Sync) {
    if n_shards == 0 {
        return;
    }
    if threads <= 1 || n_shards == 1 {
        for s in 0..n_shards {
            body(s);
        }
        return;
    }
    shard_pool(threads).run_shards(n_shards, &body);
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Request a worker count for the global pool.
///
/// Takes effect only if called before the first parallel operation; returns
/// `true` if the request was recorded in time. Intended for benchmarks and
/// `PAR_RUNTIME_THREADS`-style CLI plumbing.
pub fn configure_threads(threads: usize) -> bool {
    if GLOBAL.get().is_some() {
        return false;
    }
    REQUESTED_THREADS.store(threads.max(1), Ordering::SeqCst);
    GLOBAL.get().is_none()
}

pub(crate) fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let requested = REQUESTED_THREADS.load(Ordering::SeqCst);
        let threads = if requested > 0 {
            requested
        } else if let Ok(env) = std::env::var("PAR_RUNTIME_THREADS") {
            env.parse().unwrap_or_else(|_| default_threads())
        } else {
            default_threads()
        };
        // The caller participates too, so spawn one fewer worker.
        Pool::new(threads.saturating_sub(1))
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Total threads participating in global-pool parallel calls
/// (workers + the caller).
pub fn num_threads() -> usize {
    global().threads() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn dedicated_pool_runs_all_grains() {
        let pool = Pool::new(3);
        let sum = AtomicU64::new(0);
        pool.run(1000, 7, &|r: Range<usize>| {
            sum.fetch_add(r.map(|i| i as u64).sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn zero_width_pool_runs_inline() {
        let pool = Pool::new(0);
        let sum = AtomicU64::new(0);
        pool.run(100, 10, &|r: Range<usize>| {
            sum.fetch_add(r.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_grain_runs_on_caller() {
        let pool = Pool::new(4);
        let tid = std::thread::current().id();
        pool.run(5, 100, &move |_r| {
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn many_small_tasks_reuse_workers() {
        let pool = Pool::new(2);
        for round in 0..200 {
            let sum = AtomicU64::new(0);
            pool.run(64, 4, &|r: Range<usize>| {
                sum.fetch_add(r.len() as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 64, "round {round}");
        }
    }

    #[test]
    fn run_shards_visits_each_shard_once() {
        let pool = Pool::new(3);
        let hits: Vec<AtomicU64> = (0..16).map(|_| AtomicU64::new(0)).collect();
        pool.run_shards(16, &|s| {
            hits[s].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn panicking_grain_propagates_instead_of_hanging() {
        // Regression: with one worker, a panic inside a worker-claimed
        // grain used to leave `completed` short of `n_grains`, parking the
        // caller forever. The pool must re-throw the panic on the caller
        // and stay usable afterwards.
        let pool = Pool::new(1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_shards(8, &|s| {
                if s % 2 == 1 {
                    panic!("shard {s} failed");
                }
            });
        }));
        assert!(err.is_err(), "panic must propagate to the caller");

        // The same pool still completes fresh work.
        let sum = AtomicU64::new(0);
        pool.run_shards(8, &|s| {
            sum.fetch_add(s as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn par_shards_sequential_path_runs_in_order() {
        let order = Mutex::new(Vec::new());
        par_shards(1, 5, |s| order.lock().push(s));
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn par_shards_parallel_covers_all_shards() {
        for width in [2, 4, 8] {
            let hits: Vec<AtomicU64> = (0..32).map(|_| AtomicU64::new(0)).collect();
            par_shards(width, 32, |s| {
                hits[s].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "width {width}"
            );
        }
    }
}
