//! High-level data-parallel operations over the global pool.

use crate::pool::global;
use parking_lot::Mutex;
use std::ops::Range;

/// Execute `body` for every index in `0..total`, handed out as ranges of at
/// most `grain` consecutive indices.
///
/// Grains are claimed dynamically, so heavily skewed per-index costs (e.g.
/// power-law row lengths) still balance. Blocks until all grains complete.
pub fn parallel_for(total: usize, grain: usize, body: impl Fn(Range<usize>) + Sync) {
    global().run(total, grain, &body);
}

/// Fork-join: run two closures, potentially in parallel, and return both
/// results.
pub fn join<A: Send, B: Send>(
    a: impl FnOnce() -> A + Send,
    b: impl FnOnce() -> B + Send,
) -> (A, B) {
    let mut ra: Option<A> = None;
    let mut rb: Option<B> = None;
    {
        let sa = Mutex::new((&mut ra, Some(a)));
        let sb = Mutex::new((&mut rb, Some(b)));
        parallel_for(2, 1, |range| {
            for i in range {
                if i == 0 {
                    let mut g = sa.lock();
                    let f = g.1.take().expect("join closure A ran twice");
                    *g.0 = Some(f());
                } else {
                    let mut g = sb.lock();
                    let f = g.1.take().expect("join closure B ran twice");
                    *g.0 = Some(f());
                }
            }
        });
    }
    (
        ra.expect("join closure A did not run"),
        rb.expect("join closure B did not run"),
    )
}

/// Parallel map-reduce over `0..total`.
///
/// Each participating thread folds the grains it claims into a private
/// accumulator seeded by `identity`; the per-grain partials are then merged
/// with `reduce`. `reduce` must be associative and `identity` a true
/// identity for it, otherwise the (nondeterministic) merge order changes
/// the result.
pub fn parallel_reduce<T: Send>(
    total: usize,
    grain: usize,
    identity: impl Fn() -> T + Sync,
    fold: impl Fn(T, Range<usize>) -> T + Sync,
    reduce: impl Fn(T, T) -> T + Sync,
) -> T {
    if total == 0 {
        return identity();
    }
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::new());
    parallel_for(total, grain, |range| {
        let part = fold(identity(), range);
        partials.lock().push(part);
    });
    let parts = partials.into_inner();
    let mut acc = identity();
    for p in parts {
        acc = reduce(acc, p);
    }
    acc
}

/// Mutate a slice in parallel, chunk by chunk. `body` receives the chunk's
/// offset in the original slice plus the mutable chunk itself.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    grain: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    let grain = grain.max(1);
    let total = data.len();
    // Pre-split into raw chunk pointers so disjointness is explicit.
    let base = data.as_mut_ptr() as usize;
    parallel_for(total.div_ceil(grain), 1, |grains| {
        for g in grains {
            let lo = g * grain;
            let hi = (lo + grain).min(total);
            // SAFETY: [lo, hi) ranges for distinct `g` are disjoint and in
            // bounds; `data` is mutably borrowed for the whole call.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(lo), hi - lo) };
            body(lo, chunk);
        }
    });
}

/// Fill a slice with copies of `value` in parallel.
pub fn parallel_fill<T: Copy + Send + Sync>(data: &mut [T], value: T) {
    for_each_chunk_mut(data, 16 * 1024, |_, chunk| chunk.fill(value));
}

/// Parallel elementwise map from `src` into `dst` (equal lengths required).
pub fn parallel_map_into<S: Sync, D: Send>(
    src: &[S],
    dst: &mut [D],
    grain: usize,
    f: impl Fn(&S) -> D + Sync,
) {
    assert_eq!(
        src.len(),
        dst.len(),
        "parallel_map_into: length mismatch ({} vs {})",
        src.len(),
        dst.len()
    );
    for_each_chunk_mut(dst, grain, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = f(&src[offset + i]);
        }
    });
}
