//! COO SpMV with warp-level segmented reduction (paper §II).
//!
//! One lane per non-zero, grid-strided. Each warp's 32 products are
//! combined with a shuffle-based *segmented* reduction (lanes belonging
//! to the same row merge), then one lane per row segment issues an
//! `atomicAdd` into `y` — "the overhead is alleviated to some extent by
//! use of efficient segmented reduction". `y` must be zeroed first; the
//! engine launches a memset kernel exactly like `cusparse<t>coomv`.

use crate::{fill_kernel, DevCoo, GpuSpmv};
use gpu_sim::{Device, DeviceBuffer, RunReport, WARP};
use sparse_formats::Scalar;

/// COO segmented-reduction engine.
pub struct CooKernel<T> {
    mat: DevCoo<T>,
    /// Read `x` through the texture cache.
    pub texture_x: bool,
}

impl<T: Scalar> CooKernel<T> {
    /// Wrap an uploaded COO matrix.
    pub fn new(mat: DevCoo<T>) -> Self {
        CooKernel {
            mat,
            texture_x: true,
        }
    }

    /// Run the product+reduce kernel, *accumulating* into `y` (assumed
    /// pre-zeroed or holding the ELL partial sums when used inside HYB).
    pub fn spmv_accumulate(
        &self,
        dev: &Device,
        x: &DeviceBuffer<T>,
        y: &DeviceBuffer<T>,
    ) -> RunReport {
        assert_eq!(x.len(), self.mat.cols, "x length mismatch");
        assert_eq!(y.len(), self.mat.rows, "y length mismatch");
        let nnz = self.mat.nnz();
        if nnz == 0 {
            // nothing to launch — zero-entry tails are common in HYB
            return RunReport::default();
        }
        let mat = &self.mat;
        let texture_x = self.texture_x;
        let block = 256;
        let grid = nnz.div_ceil(block).max(1);
        dev.launch("coo_segred", grid, block, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let base = warp.first_thread();
                if base >= nnz {
                    return;
                }
                let live = (nnz - base).min(WARP);
                let mask = gpu_sim::lane_mask(live);
                let rows_v = warp.read_coalesced(&mat.row_indices, base, mask);
                let cols_v = warp.read_coalesced(&mat.col_indices, base, mask);
                let vals_v = warp.read_coalesced(&mat.values, base, mask);
                let xi: [usize; WARP] = std::array::from_fn(|i| cols_v[i] as usize);
                let xs = if texture_x {
                    warp.gather_tex(x, &xi, mask)
                } else {
                    warp.gather(x, &xi, mask)
                };
                let mut prod = [T::ZERO; WARP];
                for lane in 0..live {
                    prod[lane] = vals_v[lane] * xs[lane];
                }
                warp.charge_fma(mask);

                // Segmented reduction: log-step shuffle, adding only when
                // the source lane belongs to the same row.
                let mut delta = 1usize;
                while delta < WARP {
                    let shifted = warp.shfl_down(&prod, delta);
                    for lane in 0..live {
                        if lane + delta < live && rows_v[lane + delta] == rows_v[lane] {
                            prod[lane] += shifted[lane];
                        }
                    }
                    warp.charge_alu(1);
                    delta *= 2;
                }

                // Segment heads (first lane of each row run) atomically
                // publish their sums.
                let mut head_mask = 0u32;
                let mut idx = [0usize; WARP];
                for lane in 0..live {
                    if lane == 0 || rows_v[lane] != rows_v[lane - 1] {
                        head_mask |= 1 << lane;
                        idx[lane] = rows_v[lane] as usize;
                    }
                }
                warp.atomic_rmw(y, &idx, &prod, head_mask, |a, b| a + b);
            });
        })
    }
}

impl<T: Scalar> GpuSpmv<T> for CooKernel<T> {
    fn name(&self) -> &'static str {
        "COO"
    }

    fn rows(&self) -> usize {
        self.mat.rows
    }
    fn cols(&self) -> usize {
        self.mat.cols
    }
    fn nnz(&self) -> usize {
        self.mat.nnz()
    }
    fn device_bytes(&self) -> u64 {
        self.mat.device_bytes()
    }

    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        let zero = fill_kernel(dev, y, T::ZERO);
        let main = self.spmv_accumulate(dev, x, y);
        zero.then(&main)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, test_matrix, test_x};
    use gpu_sim::presets;
    use sparse_formats::CooMatrix;

    #[test]
    fn matches_reference() {
        let m = test_matrix(800, 17);
        let (coo, _) = CooMatrix::from_csr(&m);
        let dev = Device::new(presets::gtx_titan());
        let eng = CooKernel::new(DevCoo::upload(&dev, &coo));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc(vec![99.0f64; m.rows()]); // must be overwritten
        let r = eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, "coo");
        assert_eq!(r.launches, 2, "memset + main kernel");
        assert!(r.counters.atomic_ops > 0);
    }

    #[test]
    fn segmented_reduction_reduces_atomics() {
        // With sorted rows and short rows, most lanes merge before the
        // atomic: atomics must be well below nnz.
        let m = test_matrix(3000, 18);
        let (coo, _) = CooMatrix::from_csr(&m);
        let dev = Device::new(presets::gtx_titan());
        let eng = CooKernel::new(DevCoo::upload(&dev, &coo));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        let r = eng.spmv(&dev, &xd, &yd);
        assert!(
            (r.counters.atomic_ops as usize) < m.nnz(),
            "atomics {} vs nnz {}",
            r.counters.atomic_ops,
            m.nnz()
        );
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = sparse_formats::CsrMatrix::<f64>::zeros(10, 10);
        let (coo, _) = CooMatrix::from_csr(&m);
        let dev = Device::new(presets::gtx_titan());
        let eng = CooKernel::new(DevCoo::upload(&dev, &coo));
        let xd = dev.alloc(vec![1.0f64; 10]);
        let yd = dev.alloc(vec![5.0f64; 10]);
        eng.spmv(&dev, &xd, &yd);
        assert!(yd.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn accumulate_does_not_zero_y() {
        let m = test_matrix(200, 19);
        let (coo, _) = CooMatrix::from_csr(&m);
        let dev = Device::new(presets::gtx_titan());
        let eng = CooKernel::new(DevCoo::upload(&dev, &coo));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc(vec![2.0f64; m.rows()]);
        eng.spmv_accumulate(&dev, &xd, &yd);
        let want: Vec<f64> = m.spmv(&x).iter().map(|v| v + 2.0).collect();
        assert_close(yd.as_slice(), &want, 1e-12, "coo accumulate");
    }
}
