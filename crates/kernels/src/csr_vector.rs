//! CSR-vector SpMV: a thread *group* per row (paper §II).
//!
//! The cuSPARSE/CUSP production kernel: lanes are partitioned into
//! power-of-two groups, each group strides one row cooperatively and
//! reduces with shuffles. The group width is chosen from the matrix's
//! mean row length, per the libraries' heuristic ("threads of a warp span
//! multiple rows when the average number of non-zeros per row is small").
//!
//! This is the paper's "CSR" baseline in Figures 5 and 6. Its weakness on
//! power-law inputs: μ is small so the group is narrow, and the rare huge
//! row serializes through one narrow group — the long-tail latency ACSR's
//! dynamic parallelism removes.

use crate::{DevCsr, GpuSpmv};
use gpu_sim::{Device, DeviceBuffer, RunReport, WARP};
use sparse_formats::Scalar;

/// Pick the CSR-vector group width for a mean row length: the smallest
/// power of two ≥ μ, clamped to [2, 32] (the CUSP heuristic).
pub fn group_for_mean(mu: f64) -> usize {
    let mut g = 2usize;
    while (g as f64) < mu && g < WARP {
        g *= 2;
    }
    g
}

/// CSR-vector engine.
pub struct CsrVector<T> {
    mat: DevCsr<T>,
    /// Lanes cooperating per row (power of two, ≤ 32).
    pub group: usize,
    /// Read `x` through the texture cache.
    pub texture_x: bool,
}

impl<T: Scalar> CsrVector<T> {
    /// Wrap an uploaded CSR matrix, choosing the group width from the
    /// matrix's mean row length.
    pub fn new(mat: DevCsr<T>) -> Self {
        let mu = mat.nnz() as f64 / mat.rows.max(1) as f64;
        Self::with_group(mat, group_for_mean(mu))
    }

    /// Wrap with an explicit group width.
    pub fn with_group(mat: DevCsr<T>, group: usize) -> Self {
        assert!(
            group.is_power_of_two() && (1..=WARP).contains(&group),
            "group must be a power of two in [1, 32]"
        );
        CsrVector {
            mat,
            group,
            texture_x: true,
        }
    }
}

impl<T: Scalar> GpuSpmv<T> for CsrVector<T> {
    fn name(&self) -> &'static str {
        "CSR-vector"
    }

    fn rows(&self) -> usize {
        self.mat.rows
    }
    fn cols(&self) -> usize {
        self.mat.cols
    }
    fn nnz(&self) -> usize {
        self.mat.nnz()
    }
    fn device_bytes(&self) -> u64 {
        self.mat.device_bytes()
    }

    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        assert_eq!(x.len(), self.mat.cols, "x length mismatch");
        assert_eq!(y.len(), self.mat.rows, "y length mismatch");
        let rows = self.mat.rows;
        let group = self.group;
        let groups_per_warp = WARP / group;
        let warps_needed = rows.div_ceil(groups_per_warp).max(1);
        let block = 256;
        let warps_per_block = block / WARP;
        let grid = warps_needed.div_ceil(warps_per_block);
        let mat = &self.mat;
        let texture_x = self.texture_x;
        dev.launch("csr_vector", grid, block, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let warp_id = warp.global_warp_id();
                let base_row = warp_id * groups_per_warp;
                if base_row >= rows {
                    return;
                }
                let live_groups = (rows - base_row).min(groups_per_warp);
                // group is a power of two: shift/mask instead of div/mod
                // in the per-lane loops below.
                let g_shift = group.trailing_zeros() as usize;
                let g_mask = group - 1;
                // lanes belonging to a live group (groups are contiguous
                // from lane 0)
                let mask = gpu_sim::lane_mask(live_groups << g_shift);
                // Row bounds per lane (lane's group's row), fetched in
                // grouped form: lanes of one group share the row index.
                let mut start_gidx = [0usize; WARP];
                let mut end_gidx = [0usize; WARP];
                for g in 0..groups_per_warp {
                    start_gidx[g] = (base_row + g).min(rows);
                    end_gidx[g] = (base_row + g + 1).min(rows);
                }
                let starts = warp.gather_grouped(
                    &mat.row_offsets,
                    &start_gidx[..groups_per_warp],
                    g_shift,
                    mask,
                );
                let ends = warp.gather_grouped(
                    &mat.row_offsets,
                    &end_gidx[..groups_per_warp],
                    g_shift,
                    mask,
                );

                let mut iters = 0usize;
                for g in 0..live_groups {
                    let lane0 = g << g_shift;
                    let len = (ends[lane0] - starts[lane0]) as usize;
                    iters = iters.max(len.div_ceil(group));
                }

                let live_lanes = live_groups << g_shift;
                let mut acc = [T::ZERO; WARP];
                for it in 0..iters {
                    let base_k = it << g_shift;
                    let mut it_mask = 0u32;
                    let mut idx = [0usize; WARP];
                    // Unconditional k store + predicate mask (no per-lane
                    // branch, so the loop vectorizes). Inactive lanes'
                    // idx entries are never read: every gather/scatter
                    // consumer filters through `it_mask`.
                    for (lane, slot) in idx.iter_mut().enumerate().take(live_lanes) {
                        let k = starts[lane] as usize + base_k + (lane & g_mask);
                        it_mask |= u32::from(k < ends[lane] as usize) << lane;
                        *slot = k;
                    }
                    if it_mask == 0 {
                        continue;
                    }
                    let (cols, vals) = warp.gather2(&mat.col_indices, &mat.values, &idx, it_mask);
                    let xi: [usize; WARP] = std::array::from_fn(|i| cols[i] as usize);
                    let xs = if texture_x {
                        warp.gather_tex(x, &xi, it_mask)
                    } else {
                        warp.gather(x, &xi, it_mask)
                    };
                    // Branchless select: inactive lanes keep their old
                    // acc (the fma result for them uses the gathers'
                    // T::default() lanes — computed, then discarded).
                    for lane in 0..WARP {
                        let upd = vals[lane].mul_add(xs[lane], acc[lane]);
                        if it_mask >> lane & 1 == 1 {
                            acc[lane] = upd;
                        }
                    }
                    warp.charge_fma(it_mask);
                }

                // Intra-group shuffle reduction; group-leader lanes write y.
                let reduced = warp.segmented_reduce_sum(&acc, group);
                let mut w_mask = 0u32;
                let mut w_idx = [0usize; WARP];
                let mut w_vals = [T::ZERO; WARP];
                for g in 0..live_groups {
                    let lane0 = g << g_shift;
                    w_mask |= 1 << lane0;
                    w_idx[lane0] = base_row + g;
                    w_vals[lane0] = reduced[lane0];
                }
                warp.scatter(y, &w_idx, &w_vals, w_mask);
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, test_matrix, test_x};
    use gpu_sim::presets;

    #[test]
    fn group_heuristic_matches_cusp() {
        assert_eq!(group_for_mean(1.0), 2);
        assert_eq!(group_for_mean(2.0), 2);
        assert_eq!(group_for_mean(3.0), 4);
        assert_eq!(group_for_mean(7.5), 8);
        assert_eq!(group_for_mean(12.0), 16);
        assert_eq!(group_for_mean(100.0), 32);
    }

    #[test]
    fn matches_reference_for_all_groups() {
        let m = test_matrix(513, 11);
        let dev = Device::new(presets::gtx_titan());
        let x = test_x::<f64>(m.cols());
        let want = m.spmv(&x);
        for group in [1, 2, 4, 8, 16, 32] {
            let eng = CsrVector::with_group(DevCsr::upload(&dev, &m), group);
            let xd = dev.alloc(x.clone());
            let yd = dev.alloc_zeroed::<f64>(m.rows());
            eng.spmv(&dev, &xd, &yd);
            assert_close(yd.as_slice(), &want, 1e-12, &format!("group {group}"));
        }
    }

    #[test]
    fn wide_group_reads_rows_coalesced() {
        // For long rows, group=32 must use far fewer transactions per nnz
        // than scalar-style group=1.
        use graphgen::{generate_power_law, PowerLawConfig};
        let m: sparse_formats::CsrMatrix<f64> = generate_power_law(&PowerLawConfig {
            rows: 256,
            cols: 4096,
            mean_degree: 200.0,
            max_degree: 512,
            pinned_max_rows: 0,
            col_skew: 0.0,
            seed: 8,
            ..Default::default()
        });
        let dev = Device::new(presets::gtx_titan());
        let x = test_x::<f64>(m.cols());
        let run = |group| {
            let eng = CsrVector::with_group(DevCsr::upload(&dev, &m), group);
            let xd = dev.alloc(x.clone());
            let yd = dev.alloc_zeroed::<f64>(m.rows());
            let r = eng.spmv(&dev, &xd, &yd);
            r.counters.transactions
        };
        let t32 = run(32);
        let t1 = run(1);
        assert!(t1 > 2 * t32, "group1 {t1} txns vs group32 {t32}");
    }

    #[test]
    fn default_group_derives_from_mean() {
        let m = test_matrix(1000, 3); // mean ≈ 9
        let dev = Device::new(presets::gtx_titan());
        let eng = CsrVector::new(DevCsr::upload(&dev, &m));
        assert!(eng.group >= 8 && eng.group <= 16, "group {}", eng.group);
    }

    #[test]
    fn single_huge_row_dominates_critical_path() {
        use graphgen::{generate_power_law, PowerLawConfig};
        let m: sparse_formats::CsrMatrix<f64> = generate_power_law(&PowerLawConfig {
            rows: 20_000,
            cols: 20_000,
            mean_degree: 4.0,
            max_degree: 8192,
            pinned_max_rows: 1,
            col_skew: 0.3,
            seed: 21,
            ..Default::default()
        });
        let dev = Device::new(presets::gtx_titan());
        let eng = CsrVector::new(DevCsr::upload(&dev, &m));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        let r = eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, "huge row");
        // The tail must make the kernel latency-bound, not bandwidth-bound.
        assert!(
            r.breakdown.latency_s > r.breakdown.memory_s,
            "latency {} vs memory {}",
            r.breakdown.latency_s,
            r.breakdown.memory_s
        );
    }
}
