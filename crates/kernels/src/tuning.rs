//! Auto-tuners for the comparator formats — the preprocessing whose cost
//! is the paper's Figure 4 headline.
//!
//! * **BCCOO**: the yaSpMV configuration space has "more than 300
//!   different settings" and "every matrix achieves its best performance
//!   with different settings" (§V). The tuner converts and trial-runs each
//!   configuration, charging *all* of that to preprocessing, like the
//!   paper does ("for BCCOO it is the time for auto-tuning").
//! * **TCOO**: "we performed an exhaustive search to find the best number
//!   of tiles" — a dozen-candidate sweep, likewise charged.
//!
//! For wall-clock tractability the BCCOO tuner may run its trials on a
//! row-truncated sample of the matrix and extrapolate the charged cost to
//! full size by the nnz ratio (documented in DESIGN.md §1); pass
//! `sample_rows = usize::MAX` to tune at full size.

use crate::bccoo_kernel::BccooKernel;
use crate::tcoo_kernel::TcooKernel;
use crate::{DevBccoo, DevTcoo, GpuSpmv};
use gpu_sim::Device;
use sparse_formats::{BccooConfig, BccooMatrix, CsrMatrix, PreprocessCost, Scalar, TcooMatrix};

/// Outcome of a tuning run.
pub struct Tuned<M> {
    /// The matrix converted with the winning configuration.
    pub matrix: M,
    /// Winning configuration's modeled single-SpMV time, seconds.
    pub best_spmv_s: f64,
    /// Total preprocessing cost, including every trial.
    pub cost: PreprocessCost,
}

/// Truncate `m` to its first `rows` rows (tuning sample).
fn head_rows<T: Scalar>(m: &CsrMatrix<T>, rows: usize) -> CsrMatrix<T> {
    let rows = rows.min(m.rows());
    let nnz_end = m.row_offsets()[rows] as usize;
    CsrMatrix::from_raw_parts(
        rows,
        m.cols(),
        m.row_offsets()[..=rows].to_vec(),
        m.col_indices()[..nnz_end].to_vec(),
        m.values()[..nnz_end].to_vec(),
    )
    .expect("prefix of a valid CSR is valid")
}

/// Exhaustively tune BCCOO over its full configuration space.
///
/// `sample_rows` caps the trial matrix size; the charged cost is scaled
/// back up by the nnz ratio so the reported preprocessing represents
/// tuning on the full matrix.
pub fn autotune_bccoo<T: Scalar>(
    dev: &Device,
    m: &CsrMatrix<T>,
    sample_rows: usize,
    max_bytes: usize,
) -> Result<Tuned<BccooMatrix<T>>, sparse_formats::SparseError> {
    let mut sample = if sample_rows < m.rows() {
        head_rows(m, sample_rows)
    } else {
        m.clone()
    };
    // A head whose rows are all empty (leading empty rows are common in
    // crawl graphs) carries zero nnz: the nnz-ratio extrapolation would
    // then charge `m.nnz()`× the near-free empty-sample trials — a
    // meaningless, arbitrarily inflated cost. Fall back to full-size
    // trials; for a genuinely empty matrix the ratio is pinned to 1.
    if sample.nnz() == 0 && m.nnz() > 0 {
        sample = m.clone();
    }
    let scale_up = if sample.nnz() == 0 {
        1.0
    } else {
        m.nnz() as f64 / sample.nnz() as f64
    };
    let x: Vec<T> = (0..sample.cols())
        .map(|i| T::from_f64(1.0 + (i % 7) as f64 * 0.1))
        .collect();
    let xd = dev.alloc(x);

    let mut total = PreprocessCost::default();
    let mut best: Option<(BccooConfig, f64)> = None;
    for cfg in BccooConfig::search_space() {
        let (mat, conv_cost) = match BccooMatrix::from_csr(&sample, cfg, max_bytes) {
            Ok(v) => v,
            Err(_) => continue, // config over budget: skipped, not charged
        };
        total.merge(&conv_cost);
        let eng = BccooKernel::new(DevBccoo::upload(dev, &mat));
        let yd = dev.alloc_zeroed::<T>(sample.rows());
        let report = eng.spmv(dev, &xd, &yd);
        total.autotune_trials += 1;
        total.autotune_device_seconds += report.time_s * scale_up;
        match best {
            Some((_, t)) if t <= report.time_s => {}
            _ => best = Some((cfg, report.time_s)),
        }
    }
    let (best_cfg, best_sample_s) =
        best.ok_or_else(|| sparse_formats::SparseError::CapacityExceeded {
            format: "BCCOO",
            detail: "no configuration fits the memory budget".into(),
        })?;
    // Scale streamed/sorted work up to represent full-size tuning.
    total.bytes_read = (total.bytes_read as f64 * scale_up) as u64;
    total.bytes_written = (total.bytes_written as f64 * scale_up) as u64;
    total.sorted_elements = (total.sorted_elements as f64 * scale_up) as u64;

    // Final conversion of the full matrix with the winner.
    let (matrix, final_cost) = BccooMatrix::from_csr(m, best_cfg, max_bytes)?;
    total.merge(&final_cost);
    Ok(Tuned {
        matrix,
        best_spmv_s: best_sample_s * scale_up,
        cost: total,
    })
}

/// Exhaustively search the TCOO tile count on the device's texture cache
/// size (full-size trials — the space is small).
pub fn tune_tcoo<T: Scalar>(
    dev: &Device,
    m: &CsrMatrix<T>,
    max_bytes: usize,
) -> Result<Tuned<TcooMatrix<T>>, sparse_formats::SparseError> {
    let x: Vec<T> = (0..m.cols())
        .map(|i| T::from_f64(1.0 + (i % 7) as f64 * 0.1))
        .collect();
    let xd = dev.alloc(x);
    let space = TcooMatrix::<T>::tile_search_space(m.cols(), dev.config().tex_cache_bytes);
    let mut total = PreprocessCost::default();
    let mut best: Option<(usize, f64)> = None;
    for tiles in space {
        let (mat, conv_cost) = TcooMatrix::from_csr(m, tiles, max_bytes)?;
        total.merge(&conv_cost);
        let eng = TcooKernel::new(DevTcoo::upload(dev, &mat));
        let yd = dev.alloc_zeroed::<T>(m.rows());
        let report = eng.spmv(dev, &xd, &yd);
        total.autotune_trials += 1;
        total.autotune_device_seconds += report.time_s;
        match best {
            Some((_, t)) if t <= report.time_s => {}
            _ => best = Some((tiles, report.time_s)),
        }
    }
    let (best_tiles, best_s) = best.expect("tile search space is never empty");
    let (matrix, final_cost) = TcooMatrix::from_csr(m, best_tiles, max_bytes)?;
    total.merge(&final_cost);
    Ok(Tuned {
        matrix,
        best_spmv_s: best_s,
        cost: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_matrix;
    use gpu_sim::presets;
    use sparse_formats::SpFormat;

    #[test]
    fn bccoo_tuner_charges_full_space() {
        let m = test_matrix(600, 71);
        let dev = Device::new(presets::gtx_titan());
        let tuned = autotune_bccoo(&dev, &m, usize::MAX, usize::MAX).unwrap();
        assert_eq!(
            tuned.cost.autotune_trials as usize,
            BccooConfig::search_space().len()
        );
        assert!(tuned.cost.autotune_device_seconds > 0.0);
        assert!(tuned.best_spmv_s > 0.0);
        assert_eq!(tuned.matrix.nnz(), m.nnz());
    }

    #[test]
    fn bccoo_sampled_tuning_extrapolates_cost() {
        let m = test_matrix(2000, 72);
        let dev = Device::new(presets::gtx_titan());
        let full = autotune_bccoo(&dev, &m, usize::MAX, usize::MAX).unwrap();
        let sampled = autotune_bccoo(&dev, &m, 500, usize::MAX).unwrap();
        // extrapolated charge must be the same order of magnitude
        let ratio = sampled.cost.autotune_device_seconds / full.cost.autotune_device_seconds;
        assert!((0.2..5.0).contains(&ratio), "extrapolation ratio {ratio}");
        // and the final matrix is full size either way
        assert_eq!(sampled.matrix.nnz(), m.nnz());
    }

    #[test]
    fn empty_matrix_tunes_with_finite_cost() {
        // Regression: zero-nnz matrices must not produce NaN/inf charges.
        let m = CsrMatrix::<f64>::zeros(64, 64);
        let dev = Device::new(presets::gtx_titan());
        let tuned = autotune_bccoo(&dev, &m, usize::MAX, usize::MAX).unwrap();
        assert!(tuned.cost.autotune_device_seconds.is_finite());
        assert!(tuned.best_spmv_s.is_finite());
        assert!(tuned
            .cost
            .modeled_host_seconds(&Default::default())
            .is_finite());
        assert_eq!(tuned.matrix.nnz(), 0);
        let t = tune_tcoo(&dev, &m, usize::MAX).unwrap();
        assert!(t.cost.autotune_device_seconds.is_finite());
        assert_eq!(t.matrix.nnz(), 0);
    }

    #[test]
    fn head_truncated_to_empty_sample_is_not_extrapolated() {
        // Regression: a matrix whose leading rows are all empty used to
        // tune on a zero-nnz sample and extrapolate the charge by
        // nnz/max(1) = full nnz — orders of magnitude off. The guard
        // falls back to full-size trials instead.
        let dense = test_matrix(400, 74);
        // 50 leading empty rows, then the dense block (its own offsets
        // already start at 0): 450 rows, 451 offsets.
        let mut offsets = vec![0u32; 50];
        offsets.extend(dense.row_offsets().iter().copied());
        let m = CsrMatrix::from_raw_parts(
            450,
            dense.cols(),
            offsets,
            dense.col_indices().to_vec(),
            dense.values().to_vec(),
        )
        .unwrap();
        let dev = Device::new(presets::gtx_titan());
        let full = autotune_bccoo(&dev, &m, usize::MAX, usize::MAX).unwrap();
        // sample of 50 rows: all empty → guard kicks in
        let sampled = autotune_bccoo(&dev, &m, 50, usize::MAX).unwrap();
        assert!(sampled.cost.autotune_device_seconds.is_finite());
        let ratio = sampled.cost.autotune_device_seconds / full.cost.autotune_device_seconds;
        assert!(
            (0.5..2.0).contains(&ratio),
            "empty-sample fallback must charge ~full-tune cost, ratio {ratio}"
        );
    }

    #[test]
    fn tcoo_tuner_finds_a_tiling() {
        let m = test_matrix(800, 73);
        let dev = Device::new(presets::gtx_titan());
        let tuned = tune_tcoo(&dev, &m, usize::MAX).unwrap();
        assert!(tuned.cost.autotune_trials >= 1);
        assert_eq!(tuned.matrix.nnz(), m.nnz());
    }
}
