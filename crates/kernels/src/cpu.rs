//! Real multicore SpMV implementations on `par-runtime`.
//!
//! The simulator gives *modeled* GPU times; these give *measured* CPU
//! wall-clock for the Criterion benches, so every shape claim in
//! EXPERIMENTS.md is cross-checked on real hardware. Row-chunked with
//! dynamic grain claiming, so power-law skew still balances.

use par_runtime::{for_each_chunk_mut, parallel_for};
use sparse_formats::{CooMatrix, CsrMatrix, EllMatrix, HybMatrix, Scalar};

/// Grain size (rows) for row-parallel kernels.
const ROW_GRAIN: usize = 512;

/// Parallel CSR SpMV: `y = A * x`.
pub fn spmv_csr<T: Scalar>(m: &CsrMatrix<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), m.cols(), "x length mismatch");
    assert_eq!(y.len(), m.rows(), "y length mismatch");
    let row_offsets = m.row_offsets();
    let col_indices = m.col_indices();
    let values = m.values();
    for_each_chunk_mut(y, ROW_GRAIN, |row0, chunk| {
        for (i, out) in chunk.iter_mut().enumerate() {
            let r = row0 + i;
            let lo = row_offsets[r] as usize;
            let hi = row_offsets[r + 1] as usize;
            let mut sum = T::ZERO;
            for k in lo..hi {
                sum = values[k].mul_add(x[col_indices[k] as usize], sum);
            }
            *out = sum;
        }
    });
}

/// Parallel ELL SpMV accumulate: `y += E * x`.
pub fn spmv_ell_accumulate<T: Scalar>(m: &EllMatrix<T>, x: &[T], y: &mut [T]) {
    use sparse_formats::ell::ELL_PAD;
    use sparse_formats::SpFormat;
    let (rows, cols) = m.shape();
    assert_eq!(x.len(), cols, "x length mismatch");
    assert_eq!(y.len(), rows, "y length mismatch");
    let width = m.width();
    let cix = m.col_indices();
    let vals = m.values();
    for_each_chunk_mut(y, ROW_GRAIN, |row0, chunk| {
        for (i, out) in chunk.iter_mut().enumerate() {
            let r = row0 + i;
            let mut sum = T::ZERO;
            for slot in 0..width {
                let c = cix[slot * rows + r];
                if c != ELL_PAD {
                    sum = vals[slot * rows + r].mul_add(x[c as usize], sum);
                }
            }
            *out += sum;
        }
    });
}

/// Parallel COO SpMV accumulate (`y += C * x`). Entries are row-sorted,
/// so chunks are snapped to row boundaries and no atomics are needed.
pub fn spmv_coo_accumulate<T: Scalar>(m: &CooMatrix<T>, x: &[T], y: &mut [T]) {
    let (rows, cols) = m.shape();
    assert_eq!(x.len(), cols, "x length mismatch");
    assert_eq!(y.len(), rows, "y length mismatch");
    let ri = m.row_indices();
    let ci = m.col_indices();
    let vals = m.values();
    let nnz = vals.len();
    if nnz == 0 {
        return;
    }
    // Partition entries into row-aligned chunks.
    let threads = par_runtime::num_threads().max(1);
    let target = nnz.div_ceil(threads * 4).max(1);
    let mut bounds = vec![0usize];
    let mut pos = target;
    while pos < nnz {
        // advance to the end of this row run
        let row = ri[pos];
        while pos < nnz && ri[pos] == row {
            pos += 1;
        }
        bounds.push(pos);
        pos += target;
    }
    if *bounds.last().unwrap() != nnz {
        bounds.push(nnz);
    }
    let n_chunks = bounds.len() - 1;
    // Each chunk owns a disjoint row range, so unsynchronized writes are
    // safe; expose y through a raw pointer wrapper.
    struct YPtr<T>(*mut T);
    unsafe impl<T> Sync for YPtr<T> {}
    impl<T: Scalar> YPtr<T> {
        /// # Safety
        /// Caller guarantees no concurrent access to index `r`.
        #[inline]
        unsafe fn fma(&self, r: usize, v: T, xv: T) {
            let p = self.0.add(r);
            *p = v.mul_add(xv, *p);
        }
    }
    let y_ptr = YPtr(y.as_mut_ptr());
    parallel_for(n_chunks, 1, |range| {
        for ch in range {
            let lo = bounds[ch];
            let hi = bounds[ch + 1];
            for k in lo..hi {
                // SAFETY: chunk row ranges are disjoint (bounds snap to
                // row-run ends), so each y[r] is written by one chunk.
                unsafe {
                    y_ptr.fma(ri[k] as usize, vals[k], x[ci[k] as usize]);
                }
            }
        }
    });
}

/// Parallel HYB SpMV: ELL part overwrites, COO tail accumulates.
pub fn spmv_hyb<T: Scalar>(m: &HybMatrix<T>, x: &[T], y: &mut [T]) {
    y.fill(T::ZERO);
    spmv_ell_accumulate(m.ell(), x, y);
    spmv_coo_accumulate(m.coo(), x, y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, test_matrix, test_x};

    #[test]
    fn parallel_csr_matches_reference() {
        let m = test_matrix(5000, 61);
        let x = test_x::<f64>(m.cols());
        let mut y = vec![0.0; m.rows()];
        spmv_csr(&m, &x, &mut y);
        assert_close(&y, &m.spmv(&x), 1e-12, "cpu csr");
    }

    #[test]
    fn parallel_hyb_matches_reference() {
        let m = test_matrix(6000, 62);
        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        let x = test_x::<f64>(m.cols());
        let mut y = vec![0.0; m.rows()];
        spmv_hyb(&hyb, &x, &mut y);
        assert_close(&y, &m.spmv(&x), 1e-12, "cpu hyb");
    }

    #[test]
    fn parallel_coo_matches_reference() {
        let m = test_matrix(3000, 63);
        let (coo, _) = CooMatrix::from_csr(&m);
        let x = test_x::<f64>(m.cols());
        let mut y = vec![0.0; m.rows()];
        spmv_coo_accumulate(&coo, &x, &mut y);
        assert_close(&y, &m.spmv(&x), 1e-12, "cpu coo");
    }

    #[test]
    fn coo_accumulate_preserves_prior_y() {
        let m = test_matrix(500, 64);
        let (coo, _) = CooMatrix::from_csr(&m);
        let x = test_x::<f64>(m.cols());
        let mut y = vec![1.5; m.rows()];
        spmv_coo_accumulate(&coo, &x, &mut y);
        let want: Vec<f64> = m.spmv(&x).iter().map(|v| v + 1.5).collect();
        assert_close(&y, &want, 1e-12, "cpu coo accumulate");
    }

    #[test]
    fn empty_matrix_handled() {
        let m = sparse_formats::CsrMatrix::<f64>::zeros(100, 100);
        let x = vec![1.0; 100];
        let mut y = vec![9.0; 100];
        spmv_csr(&m, &x, &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
        let (coo, _) = CooMatrix::from_csr(&m);
        spmv_coo_accumulate(&coo, &x, &mut y); // no-op on empty
        assert!(y.iter().all(|&v| v == 0.0));
    }
}
