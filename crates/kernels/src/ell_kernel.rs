//! ELL SpMV: one thread per row over column-major padded storage.
//!
//! Perfectly coalesced (lane `i` reads `values[slot * rows + row_i]`,
//! consecutive addresses) and divergence-free — every thread runs exactly
//! `width` iterations. The price was paid at conversion time: padding
//! bandwidth. This kernel is the ELL half of HYB.

use crate::{DevEll, GpuSpmv};
use gpu_sim::{lane_mask, Device, DeviceBuffer, RunReport, WARP};
use sparse_formats::ell::ELL_PAD;
use sparse_formats::Scalar;

/// ELL engine.
pub struct EllKernel<T> {
    mat: DevEll<T>,
    /// Read `x` through the texture cache.
    pub texture_x: bool,
    /// Accumulate into `y` instead of overwriting (used by HYB, whose COO
    /// tail runs after this kernel).
    pub accumulate: bool,
}

impl<T: Scalar> EllKernel<T> {
    /// Wrap an uploaded ELL matrix.
    pub fn new(mat: DevEll<T>) -> Self {
        EllKernel {
            mat,
            texture_x: true,
            accumulate: false,
        }
    }
}

impl<T: Scalar> GpuSpmv<T> for EllKernel<T> {
    fn name(&self) -> &'static str {
        "ELL"
    }

    fn rows(&self) -> usize {
        self.mat.rows
    }
    fn cols(&self) -> usize {
        self.mat.cols
    }
    fn nnz(&self) -> usize {
        self.mat.nnz
    }
    fn device_bytes(&self) -> u64 {
        self.mat.device_bytes()
    }

    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        assert_eq!(x.len(), self.mat.cols, "x length mismatch");
        assert_eq!(y.len(), self.mat.rows, "y length mismatch");
        let rows = self.mat.rows;
        let width = self.mat.width;
        let mat = &self.mat;
        let texture_x = self.texture_x;
        let accumulate = self.accumulate;
        let block = 256;
        let grid = rows.div_ceil(block).max(1);
        dev.launch("ell", grid, block, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let base_row = warp.first_thread();
                if base_row >= rows {
                    return;
                }
                let live = (rows - base_row).min(WARP);
                let mask = lane_mask(live);
                let mut acc = if accumulate {
                    warp.read_coalesced(y, base_row, mask)
                } else {
                    [T::ZERO; WARP]
                };
                for slot in 0..width {
                    // column-major: consecutive lanes -> consecutive addrs
                    let base = slot * rows + base_row;
                    let cols = warp.read_coalesced(&mat.col_indices, base, mask);
                    // lanes whose slot is real (not padding)
                    let mut pad_mask = 0u32;
                    for lane in 0..live {
                        if cols[lane] != ELL_PAD {
                            pad_mask |= 1 << lane;
                        }
                    }
                    warp.charge_alu(1); // pad test
                    if pad_mask == 0 {
                        continue;
                    }
                    let vals = warp.read_coalesced(&mat.values, base, mask);
                    let xi: [usize; WARP] = std::array::from_fn(|i| {
                        if pad_mask >> i & 1 == 1 {
                            cols[i] as usize
                        } else {
                            0
                        }
                    });
                    let xs = if texture_x {
                        warp.gather_tex(x, &xi, pad_mask)
                    } else {
                        warp.gather(x, &xi, pad_mask)
                    };
                    for lane in 0..live {
                        if pad_mask >> lane & 1 == 1 {
                            acc[lane] = vals[lane].mul_add(xs[lane], acc[lane]);
                        }
                    }
                    warp.charge_fma(pad_mask);
                }
                warp.write_coalesced(y, base_row, &acc, mask);
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, test_x};
    use gpu_sim::presets;
    use sparse_formats::{CsrMatrix, EllMatrix, TripletMatrix};

    fn bounded_matrix(rows: usize, width: usize) -> CsrMatrix<f64> {
        let mut t = TripletMatrix::new(rows, rows);
        for r in 0..rows {
            for j in 0..(1 + r % width) {
                t.push(r, (r * 13 + j * 101) % rows, (r + j) as f64 * 0.5 + 1.0)
                    .unwrap();
            }
        }
        t.to_csr()
    }

    #[test]
    fn matches_reference() {
        let m = bounded_matrix(600, 10);
        let (ell, _) = EllMatrix::from_csr(&m, usize::MAX).unwrap();
        let dev = Device::new(presets::gtx_titan());
        let eng = EllKernel::new(DevEll::upload(&dev, &ell));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, "ell");
    }

    #[test]
    fn accumulate_mode_adds_to_y() {
        let m = bounded_matrix(100, 4);
        let (ell, _) = EllMatrix::from_csr(&m, usize::MAX).unwrap();
        let dev = Device::new(presets::gtx_titan());
        let mut eng = EllKernel::new(DevEll::upload(&dev, &ell));
        eng.accumulate = true;
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc(vec![1.0f64; m.rows()]);
        eng.spmv(&dev, &xd, &yd);
        let want: Vec<f64> = m.spmv(&x).iter().map(|v| v + 1.0).collect();
        assert_close(yd.as_slice(), &want, 1e-12, "ell accumulate");
    }

    #[test]
    fn ell_reads_are_coalesced() {
        // transactions per nnz must be near the ideal (~ >= 1/16 per value
        // read for f64 at 128B transactions, plus cols & x)
        let m = bounded_matrix(4096, 8);
        let (ell, _) = EllMatrix::from_csr(&m, usize::MAX).unwrap();
        let dev = Device::new(presets::gtx_titan());
        let eng = EllKernel::new(DevEll::upload(&dev, &ell));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        let r = eng.spmv(&dev, &xd, &yd);
        let padded = ell.width() * m.rows();
        // reads: cols (4B) + vals (8B) over padded slots, coalesced =>
        // about padded*12 bytes + x; allow 2.5x slack
        assert!(
            r.counters.dram_read_bytes < (padded as u64) * 12 * 5 / 2 + (m.cols() as u64) * 8 * 3,
            "bytes {}",
            r.counters.dram_read_bytes
        );
    }

    #[test]
    fn padding_costs_bandwidth() {
        // a skewed ELL (one wide row) reads far more than its nnz needs
        let mut t = TripletMatrix::<f64>::new(1024, 1024);
        for r in 0..1024usize {
            t.push(r, r, 1.0).unwrap();
        }
        for c in 0..512usize {
            t.push(0, (c * 2 + 1) % 1024, 1.0).unwrap();
        }
        let m = t.to_csr();
        let (ell, _) = EllMatrix::from_csr(&m, usize::MAX).unwrap();
        assert!(ell.padding_fraction() > 0.9);
        let dev = Device::new(presets::gtx_titan());
        let eng = EllKernel::new(DevEll::upload(&dev, &ell));
        let x = test_x::<f64>(1024);
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(1024);
        let r = eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, "padded ell");
        // reading the col array alone over all padded slots: 4B * width * rows
        assert!(r.counters.dram_read_bytes as f64 > 0.5 * (ell.width() * 1024 * 4) as f64);
    }
}
