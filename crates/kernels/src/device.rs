//! Device-resident mirrors of the host sparse formats.
//!
//! Each `Dev*` struct owns [`gpu_sim::DeviceBuffer`]s for the arrays its
//! kernel reads, knows its total device footprint (for the paper's ∅
//! out-of-memory cells and for PCIe upload modeling), and carries the
//! kernel-relevant parameters (ELL width, BRC blocks, BCCOO config, ...).

use gpu_sim::{Device, DeviceBuffer};
use sparse_formats::brc::BrcBlock;
use sparse_formats::tcoo::TcooTile;
use sparse_formats::{
    BccooConfig, BccooMatrix, BrcMatrix, CooMatrix, CsrMatrix, EllMatrix, HybMatrix, Scalar,
    TcooMatrix,
};

/// Device CSR: row offsets, column indices, values.
pub struct DevCsr<T> {
    pub rows: usize,
    pub cols: usize,
    pub row_offsets: DeviceBuffer<u32>,
    pub col_indices: DeviceBuffer<u32>,
    pub values: DeviceBuffer<T>,
}

impl<T: Scalar> DevCsr<T> {
    /// Upload a host CSR matrix.
    pub fn upload(dev: &Device, m: &CsrMatrix<T>) -> Self {
        DevCsr {
            rows: m.rows(),
            cols: m.cols(),
            row_offsets: dev.alloc(m.row_offsets().to_vec()),
            col_indices: dev.alloc(m.col_indices().to_vec()),
            values: dev.alloc(m.values().to_vec()),
        }
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Total device bytes.
    pub fn device_bytes(&self) -> u64 {
        self.row_offsets.bytes() + self.col_indices.bytes() + self.values.bytes()
    }
}

/// Device COO: explicit row/col indices plus values.
pub struct DevCoo<T> {
    pub rows: usize,
    pub cols: usize,
    pub row_indices: DeviceBuffer<u32>,
    pub col_indices: DeviceBuffer<u32>,
    pub values: DeviceBuffer<T>,
}

impl<T: Scalar> DevCoo<T> {
    /// Upload a host COO matrix.
    pub fn upload(dev: &Device, m: &CooMatrix<T>) -> Self {
        let (rows, cols) = m.shape();
        DevCoo {
            rows,
            cols,
            row_indices: dev.alloc(m.row_indices().to_vec()),
            col_indices: dev.alloc(m.col_indices().to_vec()),
            values: dev.alloc(m.values().to_vec()),
        }
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Total device bytes.
    pub fn device_bytes(&self) -> u64 {
        self.row_indices.bytes() + self.col_indices.bytes() + self.values.bytes()
    }
}

/// Device ELL: column-major padded arrays.
pub struct DevEll<T> {
    pub rows: usize,
    pub cols: usize,
    pub width: usize,
    pub nnz: usize,
    pub col_indices: DeviceBuffer<u32>,
    pub values: DeviceBuffer<T>,
}

impl<T: Scalar> DevEll<T> {
    /// Upload a host ELL matrix.
    pub fn upload(dev: &Device, m: &EllMatrix<T>) -> Self {
        use sparse_formats::SpFormat;
        let (rows, cols) = m.shape();
        DevEll {
            rows,
            cols,
            width: m.width(),
            nnz: m.nnz(),
            col_indices: dev.alloc(m.col_indices().to_vec()),
            values: dev.alloc(m.values().to_vec()),
        }
    }

    /// Total device bytes (including padding — ELL's cost).
    pub fn device_bytes(&self) -> u64 {
        self.col_indices.bytes() + self.values.bytes()
    }
}

/// Device HYB: an ELL head plus a COO tail.
pub struct DevHyb<T> {
    pub ell: DevEll<T>,
    pub coo: DevCoo<T>,
    pub k: usize,
}

impl<T: Scalar> DevHyb<T> {
    /// Upload a host HYB matrix.
    pub fn upload(dev: &Device, m: &HybMatrix<T>) -> Self {
        DevHyb {
            ell: DevEll::upload(dev, m.ell()),
            coo: DevCoo::upload(dev, m.coo()),
            k: m.k(),
        }
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.ell.nnz + self.coo.nnz()
    }

    /// Total device bytes.
    pub fn device_bytes(&self) -> u64 {
        self.ell.device_bytes() + self.coo.device_bytes()
    }
}

/// Device BRC: chunk-row map, block descriptors, padded block storage.
pub struct DevBrc<T> {
    pub rows: usize,
    pub cols: usize,
    pub nnz: usize,
    pub chunk_rows: DeviceBuffer<u32>,
    pub blocks: Vec<BrcBlock>,
    pub col_indices: DeviceBuffer<u32>,
    pub values: DeviceBuffer<T>,
}

impl<T: Scalar> DevBrc<T> {
    /// Upload a host BRC matrix.
    pub fn upload(dev: &Device, m: &BrcMatrix<T>) -> Self {
        use sparse_formats::SpFormat;
        let (rows, cols) = m.shape();
        DevBrc {
            rows,
            cols,
            nnz: m.nnz(),
            chunk_rows: dev.alloc(m.chunk_rows().to_vec()),
            blocks: m.blocks().to_vec(),
            col_indices: dev.alloc(m.col_indices().to_vec()),
            values: dev.alloc(m.values().to_vec()),
        }
    }

    /// Total device bytes.
    pub fn device_bytes(&self) -> u64 {
        self.chunk_rows.bytes()
            + (self.blocks.len() * std::mem::size_of::<BrcBlock>()) as u64
            + self.col_indices.bytes()
            + self.values.bytes()
    }
}

/// Device BCCOO: tile coordinates, bit flags, dense tile payloads.
pub struct DevBccoo<T> {
    pub rows: usize,
    pub cols: usize,
    pub nnz: usize,
    pub config: BccooConfig,
    pub n_tiles: usize,
    pub tile_rows: DeviceBuffer<u32>,
    pub tile_cols: DeviceBuffer<u32>,
    pub row_flags: DeviceBuffer<u64>,
    pub tile_values: DeviceBuffer<T>,
}

impl<T: Scalar> DevBccoo<T> {
    /// Upload a host BCCOO matrix.
    pub fn upload(dev: &Device, m: &BccooMatrix<T>) -> Self {
        use sparse_formats::SpFormat;
        let (rows, cols) = m.shape();
        DevBccoo {
            rows,
            cols,
            nnz: m.nnz(),
            config: m.config(),
            n_tiles: m.n_tiles(),
            tile_rows: dev.alloc(m.tile_rows().to_vec()),
            tile_cols: dev.alloc(m.tile_cols().to_vec()),
            row_flags: dev.alloc(m.row_flags().to_vec()),
            tile_values: dev.alloc(m.tile_values().to_vec()),
        }
    }

    /// Total device bytes.
    pub fn device_bytes(&self) -> u64 {
        self.tile_rows.bytes()
            + self.tile_cols.bytes()
            + self.row_flags.bytes()
            + self.tile_values.bytes()
    }
}

/// Device TCOO: column tiles plus tile-bucketed COO arrays.
pub struct DevTcoo<T> {
    pub rows: usize,
    pub cols: usize,
    pub tiles: Vec<TcooTile>,
    pub row_indices: DeviceBuffer<u32>,
    pub col_indices: DeviceBuffer<u32>,
    pub values: DeviceBuffer<T>,
}

impl<T: Scalar> DevTcoo<T> {
    /// Upload a host TCOO matrix.
    pub fn upload(dev: &Device, m: &TcooMatrix<T>) -> Self {
        use sparse_formats::SpFormat;
        let (rows, cols) = m.shape();
        DevTcoo {
            rows,
            cols,
            tiles: m.tiles().to_vec(),
            row_indices: dev.alloc(m.row_indices().to_vec()),
            col_indices: dev.alloc(m.col_indices().to_vec()),
            values: dev.alloc(m.values().to_vec()),
        }
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Total device bytes.
    pub fn device_bytes(&self) -> u64 {
        self.row_indices.bytes()
            + self.col_indices.bytes()
            + self.values.bytes()
            + (self.tiles.len() * std::mem::size_of::<TcooTile>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_matrix;
    use gpu_sim::presets;

    #[test]
    fn uploads_preserve_sizes() {
        let m = test_matrix(500, 3);
        let dev = Device::new(presets::gtx_titan());
        let d = DevCsr::upload(&dev, &m);
        assert_eq!(d.nnz(), m.nnz());
        assert_eq!(d.rows, 500);
        assert_eq!(
            d.device_bytes(),
            (m.row_offsets().len() * 4 + m.col_indices().len() * 4 + m.values().len() * 8) as u64
        );
    }

    #[test]
    fn hyb_upload_splits_parts() {
        let m = test_matrix(5000, 4);
        let dev = Device::new(presets::gtx_titan());
        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        let d = DevHyb::upload(&dev, &hyb);
        assert_eq!(d.nnz(), m.nnz());
        assert_eq!(d.k, hyb.k());
    }
}
