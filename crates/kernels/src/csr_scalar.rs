//! CSR-scalar SpMV: one thread per row (paper §II).
//!
//! The textbook kernel whose two pathologies motivate everything else:
//! * **thread divergence** — a warp runs until its *longest* row finishes,
//!   so 31 lanes idle behind one wide row;
//! * **uncoalesced access** — adjacent lanes read different rows' data,
//!   scattering transactions.

use crate::{DevCsr, GpuSpmv};
use gpu_sim::{lane_mask, Device, DeviceBuffer, RunReport, WARP};
use sparse_formats::Scalar;

/// CSR-scalar engine.
pub struct CsrScalar<T> {
    mat: DevCsr<T>,
    /// Read `x` through the texture cache (paper default: yes).
    pub texture_x: bool,
}

impl<T: Scalar> CsrScalar<T> {
    /// Wrap an uploaded CSR matrix.
    pub fn new(mat: DevCsr<T>) -> Self {
        CsrScalar {
            mat,
            texture_x: true,
        }
    }
}

impl<T: Scalar> GpuSpmv<T> for CsrScalar<T> {
    fn name(&self) -> &'static str {
        "CSR-scalar"
    }

    fn rows(&self) -> usize {
        self.mat.rows
    }
    fn cols(&self) -> usize {
        self.mat.cols
    }
    fn nnz(&self) -> usize {
        self.mat.nnz()
    }
    fn device_bytes(&self) -> u64 {
        self.mat.device_bytes()
    }

    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        assert_eq!(x.len(), self.mat.cols, "x length mismatch");
        assert_eq!(y.len(), self.mat.rows, "y length mismatch");
        let rows = self.mat.rows;
        let mat = &self.mat;
        let texture_x = self.texture_x;
        let block = 256;
        let grid = rows.div_ceil(block).max(1);
        dev.launch("csr_scalar", grid, block, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let base_row = warp.first_thread();
                if base_row >= rows {
                    return;
                }
                let live = (rows - base_row).min(WARP);
                let mask = lane_mask(live);

                // Row bounds: lane i handles row base_row + i.
                let off_idx: [usize; WARP] = std::array::from_fn(|i| (base_row + i).min(rows));
                let starts = warp.gather(&mat.row_offsets, &off_idx, mask);
                let ends_idx: [usize; WARP] = std::array::from_fn(|i| (base_row + i + 1).min(rows));
                let ends = warp.gather(&mat.row_offsets, &ends_idx, mask);

                let mut lens = [0usize; WARP];
                let mut max_len = 0usize;
                for lane in 0..live {
                    lens[lane] = (ends[lane] - starts[lane]) as usize;
                    max_len = max_len.max(lens[lane]);
                }

                let mut acc = [T::ZERO; WARP];
                // SIMT lockstep: the warp iterates to the LONGEST row.
                for it in 0..max_len {
                    let mut it_mask = 0u32;
                    let mut idx = [0usize; WARP];
                    for lane in 0..live {
                        if it < lens[lane] {
                            it_mask |= 1 << lane;
                            idx[lane] = starts[lane] as usize + it;
                        }
                    }
                    let cols = warp.gather(&mat.col_indices, &idx, it_mask);
                    let vals = warp.gather(&mat.values, &idx, it_mask);
                    let xi: [usize; WARP] = std::array::from_fn(|i| cols[i] as usize);
                    let xs = if texture_x {
                        warp.gather_tex(x, &xi, it_mask)
                    } else {
                        warp.gather(x, &xi, it_mask)
                    };
                    for lane in 0..live {
                        if it_mask >> lane & 1 == 1 {
                            acc[lane] = vals[lane].mul_add(xs[lane], acc[lane]);
                        }
                    }
                    warp.charge_fma(it_mask); // the FMA issues once per warp
                }
                warp.write_coalesced(y, base_row, &acc, mask);
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, test_matrix, test_x};
    use gpu_sim::presets;

    #[test]
    fn matches_reference_spmv() {
        let m = test_matrix(700, 1);
        let dev = Device::new(presets::gtx_titan());
        let eng = CsrScalar::new(DevCsr::upload(&dev, &m));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        let report = eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, "csr-scalar");
        assert!(report.time_s > 0.0);
        assert!(report.counters.warp_instructions > 0);
    }

    #[test]
    fn skewed_rows_cause_divergence_waste() {
        // Same nnz, uniform vs skewed: skewed must cost more issue slots.
        use graphgen::{generate_power_law, generate_uniform, PowerLawConfig};
        let dev = Device::new(presets::gtx_titan());
        let uni: sparse_formats::CsrMatrix<f64> = generate_uniform(4096, 4096, 8.0, 5);
        let skw: sparse_formats::CsrMatrix<f64> = generate_power_law(&PowerLawConfig {
            rows: 4096,
            cols: 4096,
            mean_degree: 8.0,
            max_degree: 1024,
            pinned_max_rows: 4,
            col_skew: 0.3,
            seed: 5,
            ..Default::default()
        });
        let x = test_x::<f64>(4096);
        let run = |m: &sparse_formats::CsrMatrix<f64>| {
            let eng = CsrScalar::new(DevCsr::upload(&dev, m));
            let xd = dev.alloc(x.clone());
            let yd = dev.alloc_zeroed::<f64>(m.rows());
            let r = eng.spmv(&dev, &xd, &yd);
            (
                r.counters.warp_instructions as f64 / m.nnz() as f64,
                r.time_s,
            )
        };
        let (ipe_uni, _) = run(&uni);
        let (ipe_skw, _) = run(&skw);
        assert!(
            ipe_skw > 1.5 * ipe_uni,
            "instr/nnz skewed {ipe_skw:.2} vs uniform {ipe_uni:.2}"
        );
    }

    #[test]
    fn works_in_f32() {
        let m64 = test_matrix(300, 2);
        // rebuild in f32
        let mut t = sparse_formats::TripletMatrix::<f32>::new(m64.rows(), m64.cols());
        for (r, c, v) in m64.iter() {
            t.push(r, c, v as f32).unwrap();
        }
        let m = t.to_csr();
        let dev = Device::new(presets::gtx_580());
        let eng = CsrScalar::new(DevCsr::upload(&dev, &m));
        let x = test_x::<f32>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f32>(m.rows());
        eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-5, "csr-scalar f32");
    }

    #[test]
    fn texture_off_increases_dram_reads() {
        let m = test_matrix(2000, 7);
        let dev = Device::new(presets::gtx_titan());
        let x = test_x::<f64>(m.cols());
        let mut eng = CsrScalar::new(DevCsr::upload(&dev, &m));
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        let with_tex = eng.spmv(&dev, &xd, &yd);
        eng.texture_x = false;
        let without = eng.spmv(&dev, &xd, &yd);
        assert!(without.counters.dram_read_bytes > with_tex.counters.dram_read_bytes);
    }
}
