//! BCCOO SpMV \[27\]: lanes walk dense tiles, accumulating per tile row and
//! publishing at row-stripe boundaries (the bit-flag segmented scan of
//! yaSpMV, simplified to per-lane stripe accumulation + atomics at
//! boundaries).
//!
//! Kernel behaviour is configuration-driven ([`sparse_formats::BccooConfig`]):
//! workgroup size, tiles per thread (thread coarsening) and texture use all
//! come from the tuned configuration — the knobs whose search constitutes
//! the format's enormous preprocessing cost.

use crate::{fill_kernel, DevBccoo, GpuSpmv};
use gpu_sim::{Device, DeviceBuffer, RunReport, WARP};
use sparse_formats::Scalar;

/// BCCOO engine.
pub struct BccooKernel<T> {
    mat: DevBccoo<T>,
}

impl<T: Scalar> BccooKernel<T> {
    /// Wrap an uploaded BCCOO matrix (its config travels with it).
    pub fn new(mat: DevBccoo<T>) -> Self {
        BccooKernel { mat }
    }
}

impl<T: Scalar> GpuSpmv<T> for BccooKernel<T> {
    fn name(&self) -> &'static str {
        "BCCOO"
    }

    fn rows(&self) -> usize {
        self.mat.rows
    }
    fn cols(&self) -> usize {
        self.mat.cols
    }
    fn nnz(&self) -> usize {
        self.mat.nnz
    }
    fn device_bytes(&self) -> u64 {
        self.mat.device_bytes()
    }

    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        assert_eq!(x.len(), self.mat.cols, "x length mismatch");
        assert_eq!(y.len(), self.mat.rows, "y length mismatch");
        let zero = fill_kernel(dev, y, T::ZERO);
        let mat = &self.mat;
        let cfg = mat.config;
        let (bh, bw) = (cfg.block_h, cfg.block_w);
        let tile_len = bh * bw;
        let n_tiles = mat.n_tiles;
        if n_tiles == 0 {
            return zero;
        }
        let tiles_per_thread = cfg.thread_load.max(1);
        let threads = n_tiles.div_ceil(tiles_per_thread);
        let block_dim = cfg.workgroup.clamp(WARP, 1024);
        let grid = threads.div_ceil(block_dim).max(1);
        let main = dev.launch("bccoo", grid, block_dim, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let t0 = warp.first_thread();
                if t0 >= threads {
                    return;
                }
                let live = (threads - t0).min(WARP);
                // Per-lane stripe accumulators: bh running sums + the
                // stripe's base row.
                let mut acc: Vec<[T; WARP]> = vec![[T::ZERO; WARP]; bh];
                let mut cur_row = [u32::MAX; WARP];

                for step in 0..tiles_per_thread {
                    // lane l processes tile (t0+l)*tiles_per_thread + step
                    let mut t_mask = 0u32;
                    let mut tidx = [0usize; WARP];
                    for lane in 0..live {
                        let t = (t0 + lane) * tiles_per_thread + step;
                        if t < n_tiles {
                            t_mask |= 1 << lane;
                            tidx[lane] = t;
                        }
                    }
                    if t_mask == 0 {
                        break;
                    }
                    let trows = warp.gather(&mat.tile_rows, &tidx, t_mask);
                    let tcols = warp.gather(&mat.tile_cols, &tidx, t_mask);

                    // stripe change -> flush accumulated rows via atomics
                    let mut flush_mask = 0u32;
                    for lane in 0..live {
                        if t_mask >> lane & 1 == 1
                            && cur_row[lane] != u32::MAX
                            && trows[lane] != cur_row[lane]
                        {
                            flush_mask |= 1 << lane;
                        }
                    }
                    warp.charge_alu(1);
                    if flush_mask != 0 {
                        flush(warp, y, &mut acc, &cur_row, flush_mask, mat.rows, bh);
                    }
                    for lane in 0..live {
                        if t_mask >> lane & 1 == 1
                            && (flush_mask >> lane & 1 == 1 || cur_row[lane] == u32::MAX)
                        {
                            cur_row[lane] = trows[lane];
                        }
                    }

                    // multiply the dense tile: bh*bw value reads + bw x reads
                    for j in 0..bw {
                        let xi: [usize; WARP] = std::array::from_fn(|l| {
                            if t_mask >> l & 1 == 1 {
                                (tcols[l] as usize + j).min(mat.cols - 1)
                            } else {
                                0
                            }
                        });
                        // lanes whose column j is in range
                        let mut jm = 0u32;
                        for lane in 0..live {
                            if t_mask >> lane & 1 == 1 && (tcols[lane] as usize + j) < mat.cols {
                                jm |= 1 << lane;
                            }
                        }
                        if jm == 0 {
                            continue;
                        }
                        let xs = if cfg.texture_x {
                            warp.gather_tex(x, &xi, jm)
                        } else {
                            warp.gather(x, &xi, jm)
                        };
                        for i in 0..bh {
                            let vidx: [usize; WARP] = std::array::from_fn(|l| {
                                if jm >> l & 1 == 1 {
                                    tidx[l] * tile_len + i * bw + j
                                } else {
                                    0
                                }
                            });
                            let vals = warp.gather(&mat.tile_values, &vidx, jm);
                            for lane in 0..live {
                                if jm >> lane & 1 == 1 {
                                    acc[i][lane] = vals[lane].mul_add(xs[lane], acc[i][lane]);
                                }
                            }
                            warp.charge_fma(jm);
                        }
                    }
                }
                // final flush of every lane that accumulated anything
                let mut final_mask = 0u32;
                for lane in 0..live {
                    if cur_row[lane] != u32::MAX {
                        final_mask |= 1 << lane;
                    }
                }
                if final_mask != 0 {
                    flush(warp, y, &mut acc, &cur_row, final_mask, mat.rows, bh);
                }
            });
        });
        zero.then(&main)
    }
}

/// Publish `bh` accumulated row sums per flushing lane with atomics,
/// then clear those accumulators.
fn flush<T: Scalar>(
    warp: &mut gpu_sim::WarpCtx,
    y: &DeviceBuffer<T>,
    acc: &mut [[T; WARP]],
    cur_row: &[u32; WARP],
    flush_mask: u32,
    rows: usize,
    bh: usize,
) {
    for i in 0..bh {
        let mut m = 0u32;
        let mut idx = [0usize; WARP];
        let mut vals = [T::ZERO; WARP];
        for lane in 0..WARP {
            if flush_mask >> lane & 1 == 1 {
                let r = cur_row[lane] as usize + i;
                if r < rows && acc[i][lane] != T::ZERO {
                    m |= 1 << lane;
                    idx[lane] = r;
                    vals[lane] = acc[i][lane];
                }
                acc[i][lane] = T::ZERO;
            }
        }
        if m != 0 {
            warp.atomic_rmw(y, &idx, &vals, m, |a, b| a + b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, test_matrix, test_x};
    use gpu_sim::presets;
    use sparse_formats::{BccooConfig, BccooMatrix};

    fn run_with(cfg: BccooConfig, rows: usize, seed: u64) {
        let m = test_matrix(rows, seed);
        let (b, _) = BccooMatrix::from_csr(&m, cfg, usize::MAX).unwrap();
        let dev = Device::new(presets::gtx_titan());
        let eng = BccooKernel::new(DevBccoo::upload(&dev, &b));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc(vec![5.0f64; m.rows()]);
        eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, &format!("{cfg:?}"));
    }

    #[test]
    fn matches_reference_default_config() {
        run_with(BccooConfig::default(), 900, 41);
    }

    #[test]
    fn matches_reference_across_tile_shapes() {
        for (bh, bw) in [(1, 1), (2, 2), (4, 4), (8, 2), (1, 8)] {
            run_with(
                BccooConfig {
                    block_h: bh,
                    block_w: bw,
                    ..Default::default()
                },
                400,
                42,
            );
        }
    }

    #[test]
    fn thread_coarsening_preserves_results() {
        for tl in [1, 2, 4] {
            run_with(
                BccooConfig {
                    thread_load: tl,
                    ..Default::default()
                },
                500,
                43,
            );
        }
    }

    #[test]
    fn workgroup_sizes_preserve_results() {
        for wg in [64, 256, 1024] {
            run_with(
                BccooConfig {
                    workgroup: wg,
                    ..Default::default()
                },
                300,
                44,
            );
        }
    }

    #[test]
    fn config_changes_modeled_time() {
        // different configs must actually produce different cost profiles
        let m = test_matrix(3000, 45);
        let dev = Device::new(presets::gtx_titan());
        let x = test_x::<f64>(m.cols());
        let mut times = Vec::new();
        for cfg in [
            BccooConfig {
                block_h: 1,
                block_w: 1,
                ..Default::default()
            },
            BccooConfig {
                block_h: 8,
                block_w: 8,
                ..Default::default()
            },
        ] {
            let (b, _) = BccooMatrix::from_csr(&m, cfg, usize::MAX).unwrap();
            let eng = BccooKernel::new(DevBccoo::upload(&dev, &b));
            let xd = dev.alloc(x.clone());
            let yd = dev.alloc_zeroed::<f64>(m.rows());
            times.push(eng.spmv(&dev, &xd, &yd).time_s);
        }
        assert_ne!(times[0], times[1]);
    }
}
