//! TCOO SpMV \[28\]: one pass per column tile so each tile's slice of `x`
//! stays resident in the texture cache — the cache-blocking idea of Yang
//! et al.'s graph-mining SpMV.

use crate::{fill_kernel, DevTcoo, GpuSpmv};
use gpu_sim::{Device, DeviceBuffer, RunReport, WARP};
use sparse_formats::Scalar;

/// TCOO engine.
pub struct TcooKernel<T> {
    mat: DevTcoo<T>,
    /// Read `x` through the texture cache (the format's raison d'être).
    pub texture_x: bool,
}

impl<T: Scalar> TcooKernel<T> {
    /// Wrap an uploaded TCOO matrix.
    pub fn new(mat: DevTcoo<T>) -> Self {
        TcooKernel {
            mat,
            texture_x: true,
        }
    }

    /// Number of column tiles.
    pub fn n_tiles(&self) -> usize {
        self.mat.tiles.len()
    }
}

impl<T: Scalar> GpuSpmv<T> for TcooKernel<T> {
    fn name(&self) -> &'static str {
        "TCOO"
    }

    fn rows(&self) -> usize {
        self.mat.rows
    }
    fn cols(&self) -> usize {
        self.mat.cols
    }
    fn nnz(&self) -> usize {
        self.mat.nnz()
    }
    fn device_bytes(&self) -> u64 {
        self.mat.device_bytes()
    }

    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        assert_eq!(x.len(), self.mat.cols, "x length mismatch");
        assert_eq!(y.len(), self.mat.rows, "y length mismatch");
        let mut report = fill_kernel(dev, y, T::ZERO);
        let mat = &self.mat;
        let texture_x = self.texture_x;
        // one kernel per tile: the tile's x-slice warms the cache and is
        // reused by every entry of the tile
        for (ti, tile) in mat.tiles.iter().enumerate() {
            let n = tile.entry_count;
            if n == 0 {
                continue;
            }
            let start = tile.entry_start;
            let block = 256;
            let grid = n.div_ceil(block).max(1);
            let r = dev.launch(&format!("tcoo_tile{ti}"), grid, block, &|blk| {
                blk.for_each_warp(&mut |warp| {
                    let base = warp.first_thread();
                    if base >= n {
                        return;
                    }
                    let live = (n - base).min(WARP);
                    let mask = gpu_sim::lane_mask(live);
                    let e = start + base;
                    let rows_v = warp.read_coalesced(&mat.row_indices, e, mask);
                    let cols_v = warp.read_coalesced(&mat.col_indices, e, mask);
                    let vals_v = warp.read_coalesced(&mat.values, e, mask);
                    let xi: [usize; WARP] = std::array::from_fn(|i| cols_v[i] as usize);
                    let xs = if texture_x {
                        warp.gather_tex(x, &xi, mask)
                    } else {
                        warp.gather(x, &xi, mask)
                    };
                    let mut prod = [T::ZERO; WARP];
                    for lane in 0..live {
                        prod[lane] = vals_v[lane] * xs[lane];
                    }
                    warp.charge_fma(mask);
                    // segmented pre-reduction on sorted rows (as COO)
                    let mut delta = 1usize;
                    while delta < WARP {
                        let shifted = warp.shfl_down(&prod, delta);
                        for lane in 0..live {
                            if lane + delta < live && rows_v[lane + delta] == rows_v[lane] {
                                prod[lane] += shifted[lane];
                            }
                        }
                        warp.charge_alu(1);
                        delta *= 2;
                    }
                    let mut head_mask = 0u32;
                    let mut idx = [0usize; WARP];
                    for lane in 0..live {
                        if lane == 0 || rows_v[lane] != rows_v[lane - 1] {
                            head_mask |= 1 << lane;
                            idx[lane] = rows_v[lane] as usize;
                        }
                    }
                    warp.atomic_rmw(y, &idx, &prod, head_mask, |a, b| a + b);
                });
            });
            report = report.then(&r);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, test_matrix, test_x};
    use gpu_sim::presets;
    use sparse_formats::TcooMatrix;

    #[test]
    fn matches_reference_for_various_tilings() {
        let m = test_matrix(700, 51);
        let dev = Device::new(presets::gtx_titan());
        let x = test_x::<f64>(m.cols());
        let want = m.spmv(&x);
        for tiles in [1, 3, 16] {
            let (tc, _) = TcooMatrix::from_csr(&m, tiles, usize::MAX).unwrap();
            let eng = TcooKernel::new(DevTcoo::upload(&dev, &tc));
            let xd = dev.alloc(x.clone());
            let yd = dev.alloc(vec![7.0f64; m.rows()]);
            eng.spmv(&dev, &xd, &yd);
            assert_close(yd.as_slice(), &want, 1e-12, &format!("tiles {tiles}"));
        }
    }

    #[test]
    fn launch_count_tracks_tiles() {
        let m = test_matrix(500, 52);
        let dev = Device::new(presets::gtx_titan());
        let (tc, _) = TcooMatrix::from_csr(&m, 8, usize::MAX).unwrap();
        let nonempty = tc.tiles().iter().filter(|t| t.entry_count > 0).count();
        let eng = TcooKernel::new(DevTcoo::upload(&dev, &tc));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        let r = eng.spmv(&dev, &xd, &yd);
        assert_eq!(
            r.launches as usize,
            1 + nonempty,
            "memset + per-tile kernels"
        );
    }

    #[test]
    fn tiling_improves_texture_hit_rate_on_wide_x() {
        // x larger than the cache: tiled passes should hit more often
        use graphgen::{generate_power_law, PowerLawConfig};
        let m: sparse_formats::CsrMatrix<f32> = generate_power_law(&PowerLawConfig {
            rows: 4000,
            cols: 200_000,
            mean_degree: 24.0,
            max_degree: 512,
            pinned_max_rows: 0,
            col_skew: 0.0, // uniform columns: worst case for caching
            seed: 53,
            ..Default::default()
        });
        let dev = Device::new(presets::gtx_titan());
        let x = test_x::<f32>(m.cols());
        let rate = |tiles: usize| {
            let (tc, _) = TcooMatrix::from_csr(&m, tiles, usize::MAX).unwrap();
            let eng = TcooKernel::new(DevTcoo::upload(&dev, &tc));
            let xd = dev.alloc(x.clone());
            let yd = dev.alloc_zeroed::<f32>(m.rows());
            let r = eng.spmv(&dev, &xd, &yd);
            r.counters.tex_hit_rate().expect("texture reads occurred")
        };
        let flat = rate(1);
        let tiled = rate(32);
        assert!(
            tiled > flat,
            "tiled hit rate {tiled:.3} must beat flat {flat:.3}"
        );
    }
}
