//! HYB SpMV: the ELL kernel followed by the COO tail kernel, as in
//! cuSPARSE's `hybmv` — the paper's strongest library baseline.

use crate::coo_kernel::CooKernel;
use crate::ell_kernel::EllKernel;
use crate::{DevHyb, GpuSpmv};
use gpu_sim::{Device, DeviceBuffer, RunReport};
use sparse_formats::Scalar;

/// HYB engine (ELL head + COO tail).
pub struct HybKernel<T> {
    ell: EllKernel<T>,
    coo: CooKernel<T>,
    k: usize,
}

impl<T: Scalar> HybKernel<T> {
    /// Wrap an uploaded HYB matrix.
    pub fn new(mat: DevHyb<T>) -> Self {
        let DevHyb { ell, coo, k } = mat;
        HybKernel {
            ell: EllKernel::new(ell),
            coo: CooKernel::new(coo),
            k,
        }
    }

    /// The ELL width in use.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Toggle texture reads of `x` for both sub-kernels.
    pub fn set_texture_x(&mut self, on: bool) {
        self.ell.texture_x = on;
        self.coo.texture_x = on;
    }
}

impl<T: Scalar> GpuSpmv<T> for HybKernel<T> {
    fn name(&self) -> &'static str {
        "HYB"
    }

    fn rows(&self) -> usize {
        self.ell.rows()
    }
    fn cols(&self) -> usize {
        self.ell.cols()
    }
    fn nnz(&self) -> usize {
        self.ell.nnz() + self.coo.nnz()
    }
    fn device_bytes(&self) -> u64 {
        self.ell.device_bytes() + self.coo.device_bytes()
    }

    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        // ELL writes every row (y = ell_part * x), the COO tail then
        // accumulates — no explicit memset needed.
        let r_ell = self.ell.spmv(dev, x, y);
        let r_coo = self.coo.spmv_accumulate(dev, x, y);
        r_ell.then(&r_coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, test_matrix, test_x};
    use gpu_sim::presets;
    use sparse_formats::{HybMatrix, SpFormat};

    #[test]
    fn matches_reference_with_heuristic_k() {
        let m = test_matrix(6000, 23);
        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        assert!(hyb.k() > 0, "suite matrix must get an ELL part");
        assert!(hyb.coo().nnz() > 0, "skewed matrix must spill a tail");
        let dev = Device::new(presets::gtx_titan());
        let eng = HybKernel::new(DevHyb::upload(&dev, &hyb));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc(vec![-1.0f64; m.rows()]);
        let r = eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, "hyb");
        assert!(r.launches >= 2);
    }

    #[test]
    fn pure_coo_k_zero_still_correct() {
        let m = test_matrix(500, 24);
        let (hyb, _) = HybMatrix::from_csr_with_k(&m, 0, usize::MAX).unwrap();
        let dev = Device::new(presets::gtx_titan());
        let eng = HybKernel::new(DevHyb::upload(&dev, &hyb));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc(vec![3.0f64; m.rows()]);
        eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, "hyb k=0");
    }

    #[test]
    fn pure_ell_no_tail_still_correct() {
        let m = test_matrix(5000, 25);
        let max = m.row_stats().max_row;
        let (hyb, _) = HybMatrix::from_csr_with_k(&m, max, usize::MAX).unwrap();
        assert_eq!(hyb.coo().nnz(), 0);
        let dev = Device::new(presets::gtx_titan());
        let eng = HybKernel::new(DevHyb::upload(&dev, &hyb));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, "hyb pure ell");
    }
}
