//! BRC SpMV: one warp per 32-chunk block of length-sorted row chunks \[1\].
//!
//! Lane `i` owns chunk `i` of its block; each iteration reads one slot of
//! every chunk — consecutive addresses in the block's column-major
//! storage, so accesses coalesce — and because blocks group
//! similar-length chunks (bounded at `BRC_MAX_WIDTH`), divergence is
//! small by construction and no warp serializes behind a monster row.
//! Chunks of the same row land in different blocks, so partial sums are
//! accumulated atomically into a zeroed `y`.

use crate::{fill_kernel, DevBrc, GpuSpmv};
use gpu_sim::{lane_mask, Device, DeviceBuffer, RunReport, WARP};
use sparse_formats::ell::ELL_PAD;
use sparse_formats::Scalar;

/// BRC engine.
pub struct BrcKernel<T> {
    mat: DevBrc<T>,
    /// Read `x` through the texture cache.
    pub texture_x: bool,
}

impl<T: Scalar> BrcKernel<T> {
    /// Wrap an uploaded BRC matrix.
    pub fn new(mat: DevBrc<T>) -> Self {
        BrcKernel {
            mat,
            texture_x: true,
        }
    }
}

impl<T: Scalar> GpuSpmv<T> for BrcKernel<T> {
    fn name(&self) -> &'static str {
        "BRC"
    }

    fn rows(&self) -> usize {
        self.mat.rows
    }
    fn cols(&self) -> usize {
        self.mat.cols
    }
    fn nnz(&self) -> usize {
        self.mat.nnz
    }
    fn device_bytes(&self) -> u64 {
        self.mat.device_bytes()
    }

    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        assert_eq!(x.len(), self.mat.cols, "x length mismatch");
        assert_eq!(y.len(), self.mat.rows, "y length mismatch");
        let zero = fill_kernel(dev, y, T::ZERO);
        let mat = &self.mat;
        let texture_x = self.texture_x;
        let n_blocks = mat.blocks.len();
        if n_blocks == 0 {
            return zero;
        }
        // one warp per BRC block; 8 warps per thread block
        let block_dim = 256;
        let warps_per_tb = block_dim / WARP;
        let grid = n_blocks.div_ceil(warps_per_tb);
        let main = dev.launch("brc", grid, block_dim, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let bid = warp.global_warp_id();
                if bid >= n_blocks {
                    return;
                }
                let b = &mat.blocks[bid];
                let mask = lane_mask(b.height);
                let mut acc = [T::ZERO; WARP];
                for slot in 0..b.width {
                    let base = b.data_start + slot * b.height;
                    let cols = warp.read_coalesced(&mat.col_indices, base, mask);
                    let mut pad_mask = 0u32;
                    for lane in 0..b.height {
                        if cols[lane] != ELL_PAD {
                            pad_mask |= 1 << lane;
                        }
                    }
                    warp.charge_alu(1);
                    if pad_mask == 0 {
                        continue;
                    }
                    let vals = warp.read_coalesced(&mat.values, base, mask);
                    let xi: [usize; WARP] = std::array::from_fn(|i| {
                        if pad_mask >> i & 1 == 1 {
                            cols[i] as usize
                        } else {
                            0
                        }
                    });
                    let xs = if texture_x {
                        warp.gather_tex(x, &xi, pad_mask)
                    } else {
                        warp.gather(x, &xi, pad_mask)
                    };
                    for lane in 0..b.height {
                        if pad_mask >> lane & 1 == 1 {
                            acc[lane] = vals[lane].mul_add(xs[lane], acc[lane]);
                        }
                    }
                    warp.charge_fma(pad_mask);
                }
                // accumulate chunk partials into their global rows
                let list_idx: [usize; WARP] = std::array::from_fn(|i| {
                    (b.row_start + i).min(mat.chunk_rows.len().saturating_sub(1))
                });
                let rows_orig = warp.gather(&mat.chunk_rows, &list_idx, mask);
                let w_idx: [usize; WARP] = std::array::from_fn(|i| rows_orig[i] as usize);
                warp.atomic_rmw(y, &w_idx, &acc, mask, |a, b| a + b);
            });
        });
        zero.then(&main)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, test_matrix, test_x};
    use gpu_sim::presets;
    use sparse_formats::BrcMatrix;

    #[test]
    fn matches_reference() {
        let m = test_matrix(1500, 31);
        let (brc, _) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        let dev = Device::new(presets::gtx_titan());
        let eng = BrcKernel::new(DevBrc::upload(&dev, &brc));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc(vec![-9.0f64; m.rows()]);
        eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, "brc");
    }

    #[test]
    fn partial_last_block_is_handled() {
        // rows not a multiple of 32
        let m = test_matrix(1000 + 13, 32);
        let (brc, _) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        let dev = Device::new(presets::gtx_titan());
        let eng = BrcKernel::new(DevBrc::upload(&dev, &brc));
        let x = test_x::<f64>(m.cols());
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        eng.spmv(&dev, &xd, &yd);
        assert_close(yd.as_slice(), &m.spmv(&x), 1e-12, "brc partial block");
    }

    #[test]
    fn sorting_reduces_issue_waste_versus_scalar() {
        use crate::csr_scalar::CsrScalar;
        use crate::DevCsr;
        let m = test_matrix(4096, 33);
        let dev = Device::new(presets::gtx_titan());
        let x = test_x::<f64>(m.cols());
        let (brc, _) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        let brc_eng = BrcKernel::new(DevBrc::upload(&dev, &brc));
        let sc_eng = CsrScalar::new(DevCsr::upload(&dev, &m));
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        let r_brc = brc_eng.spmv(&dev, &xd, &yd);
        let r_sc = sc_eng.spmv(&dev, &xd, &yd);
        assert!(
            r_brc.counters.warp_instructions < r_sc.counters.warp_instructions,
            "brc {} vs scalar {}",
            r_brc.counters.warp_instructions,
            r_sc.counters.warp_instructions
        );
    }
}
