//! # spmv-kernels — SpMV kernels for every baseline format
//!
//! Implements, on the [`gpu_sim`] SIMT substrate, the complete set of
//! SpMV algorithms the paper compares against (§II, §V):
//!
//! | Kernel | Module | Mirrors |
//! |---|---|---|
//! | CSR-scalar (thread/row) | [`csr_scalar`] | Bell & Garland scalar kernel |
//! | CSR-vector (group/row, segmented) | [`csr_vector`] | cuSPARSE/CUSP `csrmv` |
//! | COO segmented reduction | [`coo_kernel`] | CUSP `coomv` |
//! | ELL (thread/row, column-major) | [`ell_kernel`] | CUSP `ellmv` |
//! | HYB = ELL + COO | [`hyb_kernel`] | cuSPARSE/CUSP `hybmv` |
//! | BRC (warp/row-block) | [`brc_kernel`] | Ashari et al. \[1\] |
//! | BCCOO (tiles + bit flags) | [`bccoo_kernel`] | Yan et al. \[27\] |
//! | TCOO (column tiles) | [`tcoo_kernel`] | Yang et al. \[28\] |
//!
//! plus:
//! * [`device`] — device-resident mirrors of each host format with
//!   upload-size accounting (PCIe modeling for the dynamic-graph study);
//! * [`cpu`] — real multicore implementations on `par-runtime` used by
//!   the wall-clock Criterion benches;
//! * [`tuning`] — the BCCOO configuration auto-tuner (>300 settings) and
//!   the TCOO exhaustive tile search, whose *cost is the point* of the
//!   paper's Figure 4.
//!
//! The ACSR kernels themselves (the paper's contribution) live in the
//! `acsr` crate; everything here is baseline machinery.

// Warp-lane loops (`for lane in 0..WARP`) index several parallel 32-wide
// arrays in lockstep; iterator rewrites would obscure the SIMT lane
// structure the kernels are written in.
#![allow(clippy::needless_range_loop)]

pub mod bccoo_kernel;
pub mod brc_kernel;
pub mod coo_kernel;
pub mod cpu;
pub mod csr_scalar;
pub mod csr_vector;
pub mod device;
pub mod ell_kernel;
pub mod hyb_kernel;
pub mod tcoo_kernel;
pub mod tuning;

pub use device::{DevBccoo, DevBrc, DevCoo, DevCsr, DevEll, DevHyb, DevTcoo};

use gpu_sim::{Device, DeviceBuffer, RunReport};
use sparse_formats::Scalar;

/// A device-resident matrix that can run `y = A * x` on a simulated GPU.
///
/// Contract: `spmv` fully overwrites `y` (accumulation-based kernels zero
/// it first, charged as a memset launch, exactly as cuSPARSE does).
pub trait GpuSpmv<T: Scalar> {
    /// Kernel family name for reports ("CSR-vector", "HYB", ...).
    fn name(&self) -> &'static str;
    /// Run one SpMV; returns the modeled launch report.
    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport;
    /// Rows of the operator.
    fn rows(&self) -> usize;
    /// Columns of the operator.
    fn cols(&self) -> usize;
    /// Stored non-zeros.
    fn nnz(&self) -> usize;
    /// Device bytes occupied (for memory-capacity ∅ checks and upload
    /// modeling).
    fn device_bytes(&self) -> u64;
}

/// Multi-vector SpMV (SpMM with a tall-skinny dense side): `ys[v] = A *
/// xs[v]` for a batch of k vectors over one matrix.
///
/// Contract: per-vector results are **bit-identical** to k independent
/// [`GpuSpmv::spmv`] calls — batching is a pure throughput optimization
/// (row metadata, columns and values are read once per wave instead of
/// once per vector, and the launch floor is paid once), never a numeric
/// one. The default implementation simply loops `spmv`; engines with a
/// fused path (ACSR) override it.
pub trait GpuSpmvMulti<T: Scalar>: GpuSpmv<T> {
    /// Run the batch; returns the merged modeled report.
    fn spmv_multi(
        &self,
        dev: &Device,
        xs: &[&DeviceBuffer<T>],
        ys: &[&DeviceBuffer<T>],
    ) -> RunReport {
        assert_eq!(xs.len(), ys.len(), "batch size mismatch");
        let mut report = RunReport::default();
        for (x, y) in xs.iter().zip(ys) {
            report = report.then(&self.spmv(dev, x, y));
        }
        report
    }
}

// Every baseline format gets the unfused fallback (k sequential
// launches): the plan/execute pipeline hands out `Box<dyn GpuSpmvMulti>`
// for any registered format, and benches contrast batched ACSR against
// the unbatched engines. Bit-identity of the fallback against k single
// `spmv` calls is pinned per format by the pipeline crate's proptests.
impl<T: Scalar> GpuSpmvMulti<T> for csr_vector::CsrVector<T> {}
impl<T: Scalar> GpuSpmvMulti<T> for csr_scalar::CsrScalar<T> {}
impl<T: Scalar> GpuSpmvMulti<T> for coo_kernel::CooKernel<T> {}
impl<T: Scalar> GpuSpmvMulti<T> for ell_kernel::EllKernel<T> {}
impl<T: Scalar> GpuSpmvMulti<T> for hyb_kernel::HybKernel<T> {}
impl<T: Scalar> GpuSpmvMulti<T> for brc_kernel::BrcKernel<T> {}
impl<T: Scalar> GpuSpmvMulti<T> for bccoo_kernel::BccooKernel<T> {}
impl<T: Scalar> GpuSpmvMulti<T> for tcoo_kernel::TcooKernel<T> {}

/// Launch a memset-style kernel writing `value` over all of `y`.
/// Bandwidth-bound, like `cudaMemset`.
pub(crate) fn fill_kernel<T: Scalar>(dev: &Device, y: &DeviceBuffer<T>, value: T) -> RunReport {
    use gpu_sim::{lane_mask, WARP};
    let n = y.len();
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    dev.launch("fill", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let vals = [value; WARP];
            warp.write_coalesced(y, base, &vals, mask);
        });
    })
}

#[cfg(test)]
pub(crate) mod testutil {
    use graphgen::{generate_power_law, PowerLawConfig};
    use sparse_formats::{CsrMatrix, Scalar};

    /// Small skewed matrix for kernel correctness tests.
    pub fn test_matrix(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 9.0,
            max_degree: (rows / 3).max(8),
            pinned_max_rows: 2,
            col_skew: 0.5,
            seed,
            ..Default::default()
        })
    }

    /// Dense-ish x vector with varied entries.
    pub fn test_x<T: Scalar>(cols: usize) -> Vec<T> {
        (0..cols)
            .map(|i| T::from_f64(0.25 + (i % 29) as f64 * 0.125))
            .collect()
    }

    /// Assert two vectors agree to a relative L2 tolerance.
    pub fn assert_close<T: Scalar>(got: &[T], want: &[T], tol: f64, what: &str) {
        let d = sparse_formats::scalar::rel_l2_distance(got, want);
        assert!(d < tol, "{what}: rel L2 distance {d}");
    }
}
