//! Property tests: every simulated GPU kernel must agree with the
//! sequential CSR reference on arbitrary matrices, in both precisions,
//! and regardless of texture-path configuration. This is the
//! cross-cutting guarantee the whole evaluation rests on — if a kernel
//! were wrong, every figure comparing it would be meaningless.

use gpu_sim::{presets, Device};
use proptest::prelude::*;
use sparse_formats::{
    BccooConfig, BccooMatrix, BrcMatrix, CooMatrix, CsrMatrix, HybMatrix, TcooMatrix, TripletMatrix,
};
use spmv_kernels::bccoo_kernel::BccooKernel;
use spmv_kernels::brc_kernel::BrcKernel;
use spmv_kernels::coo_kernel::CooKernel;
use spmv_kernels::csr_scalar::CsrScalar;
use spmv_kernels::csr_vector::CsrVector;
use spmv_kernels::hyb_kernel::HybKernel;
use spmv_kernels::tcoo_kernel::TcooKernel;
use spmv_kernels::{cpu, DevBccoo, DevBrc, DevCoo, DevCsr, DevHyb, DevTcoo, GpuSpmv};

fn arb_matrix() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..50, 1usize..50).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -4.0f64..4.0);
        proptest::collection::vec(entry, 0..350).prop_map(move |entries| {
            let mut t = TripletMatrix::new(rows, cols);
            for (r, c, v) in entries {
                t.push(r, c, v).unwrap();
            }
            t.to_csr()
        })
    })
}

type Case = (CsrMatrix<f64>, Vec<f64>, bool);

fn arb_case() -> impl Strategy<Value = Case> {
    arb_matrix().prop_flat_map(|m| {
        let cols = m.cols();
        (
            Just(m),
            proptest::collection::vec(-3.0f64..3.0, cols..=cols),
            any::<bool>(),
        )
    })
}

fn check(engine: &dyn GpuSpmv<f64>, dev: &Device, x: &[f64], want: &[f64]) -> Result<(), String> {
    let xd = dev.alloc(x.to_vec());
    let yd = dev.alloc(vec![f64::NAN; want.len()]);
    let report = engine.spmv(dev, &xd, &yd);
    if report.time_s <= 0.0 {
        return Err(format!("{}: non-positive modeled time", engine.name()));
    }
    for (i, (got, w)) in yd.as_slice().iter().zip(want.iter()).enumerate() {
        if (got - w).abs() > 1e-9 * (1.0 + w.abs()) {
            return Err(format!("{}: y[{i}] = {got} vs {w}", engine.name()));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_kernels_match_reference((m, x, tex) in arb_case()) {
        let dev = Device::new(presets::gtx_titan());
        let want = m.spmv(&x);
        let mut scalar = CsrScalar::new(DevCsr::upload(&dev, &m));
        scalar.texture_x = tex;
        check(&scalar, &dev, &x, &want).map_err(TestCaseError::fail)?;
        for group in [1usize, 4, 32] {
            let mut vector = CsrVector::with_group(DevCsr::upload(&dev, &m), group);
            vector.texture_x = tex;
            check(&vector, &dev, &x, &want).map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn coo_and_hyb_kernels_match_reference((m, x, tex) in arb_case()) {
        let dev = Device::new(presets::gtx_titan());
        let want = m.spmv(&x);
        let (coo, _) = CooMatrix::from_csr(&m);
        let mut eng = CooKernel::new(DevCoo::upload(&dev, &coo));
        eng.texture_x = tex;
        check(&eng, &dev, &x, &want).map_err(TestCaseError::fail)?;
        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        let mut eng = HybKernel::new(DevHyb::upload(&dev, &hyb));
        eng.set_texture_x(tex);
        check(&eng, &dev, &x, &want).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn blocked_kernels_match_reference((m, x, tex) in arb_case()) {
        let dev = Device::new(presets::gtx_titan());
        let want = m.spmv(&x);
        let (brc, _) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        let mut eng = BrcKernel::new(DevBrc::upload(&dev, &brc));
        eng.texture_x = tex;
        check(&eng, &dev, &x, &want).map_err(TestCaseError::fail)?;
        let (bccoo, _) = BccooMatrix::from_csr(
            &m,
            BccooConfig { texture_x: tex, ..Default::default() },
            usize::MAX,
        )
        .unwrap();
        let eng = BccooKernel::new(DevBccoo::upload(&dev, &bccoo));
        check(&eng, &dev, &x, &want).map_err(TestCaseError::fail)?;
        let (tcoo, _) = TcooMatrix::from_csr(&m, 4, usize::MAX).unwrap();
        let mut eng = TcooKernel::new(DevTcoo::upload(&dev, &tcoo));
        eng.texture_x = tex;
        check(&eng, &dev, &x, &want).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn kernels_agree_across_devices((m, x, _tex) in arb_case()) {
        // the timing model differs per device; the numbers must not
        let want = m.spmv(&x);
        for cfg in [presets::gtx_titan(), presets::gtx_580(), presets::tesla_k10_single()] {
            let dev = Device::new(cfg);
            let eng = CsrVector::new(DevCsr::upload(&dev, &m));
            check(&eng, &dev, &x, &want).map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn cpu_backend_matches_reference((m, x, _tex) in arb_case()) {
        let want = m.spmv(&x);
        let mut y = vec![0.0; m.rows()];
        cpu::spmv_csr(&m, &x, &mut y);
        prop_assert!(y.iter().zip(want.iter()).all(|(a, b)| (a - b).abs() < 1e-9));
        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        cpu::spmv_hyb(&hyb, &x, &mut y);
        prop_assert!(y.iter().zip(want.iter()).all(|(a, b)| (a - b).abs() < 1e-9));
    }
}
