//! One [`SpmvPlanner`] per format: the glue that folds each format's
//! conversion, tuning and upload path into the uniform plan interface.
//!
//! Each planner charges exactly what the bench experiments used to
//! charge ad hoc: the converter's [`PreprocessCost`] (nothing for the
//! raw-CSR uploads, the full tuning sweep for BCCOO/TCOO) plus the
//! device upload, with the budget's byte cap threaded through to the
//! converter so infeasible formats fail with `CapacityExceeded` — the
//! paper's ∅ table cells.

use crate::{PlanBudget, PreprocessClass, SpmvPlan, SpmvPlanner};
use acsr::{AcsrConfig, AcsrEngine};
use gpu_sim::Device;
use sparse_formats::{
    BrcMatrix, CooMatrix, CsrMatrix, EllMatrix, HybMatrix, PreprocessCost, Scalar, SparseError,
};
use spmv_kernels::{
    bccoo_kernel::BccooKernel, brc_kernel::BrcKernel, coo_kernel::CooKernel, csr_scalar::CsrScalar,
    csr_vector::CsrVector, ell_kernel::EllKernel, hyb_kernel::HybKernel, tcoo_kernel::TcooKernel,
    tuning, DevBccoo, DevBrc, DevCoo, DevCsr, DevEll, DevHyb, DevTcoo, GpuSpmvMulti,
};

/// Enforce the budget's byte cap on an assembled plan. Converters
/// already reject oversized *host* layouts; this catches formats whose
/// converter is infallible (COO) or whose device mirror adds index
/// arrays beyond the host footprint.
fn check_budget<T: Scalar>(
    plan: SpmvPlan<T>,
    budget: &PlanBudget,
) -> Result<SpmvPlan<T>, SparseError> {
    use spmv_kernels::GpuSpmv;
    if plan.device_bytes() > budget.max_device_bytes {
        return Err(SparseError::CapacityExceeded {
            format: plan.format(),
            detail: format!(
                "plan needs {} device bytes > budget {}",
                plan.device_bytes(),
                budget.max_device_bytes
            ),
        });
    }
    Ok(plan)
}

/// CSR with one thread per row (Bell & Garland scalar kernel).
pub struct CsrScalarPlanner;

impl<T: Scalar> SpmvPlanner<T> for CsrScalarPlanner {
    fn name(&self) -> &'static str {
        "CSR-scalar"
    }
    fn class(&self) -> PreprocessClass {
        PreprocessClass::Upload
    }
    fn plan(
        &self,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError> {
        let engine: Box<dyn GpuSpmvMulti<T>> = Box::new(CsrScalar::new(DevCsr::upload(dev, m)));
        check_budget(
            SpmvPlan::new(
                "CSR-scalar",
                PreprocessClass::Upload,
                engine,
                PreprocessCost::default(),
            ),
            budget,
        )
    }
}

/// CSR with one warp per row and segmented reduction (cuSPARSE `csrmv`).
pub struct CsrVectorPlanner;

impl<T: Scalar> SpmvPlanner<T> for CsrVectorPlanner {
    fn name(&self) -> &'static str {
        "CSR-vector"
    }
    fn class(&self) -> PreprocessClass {
        PreprocessClass::Upload
    }
    fn plan(
        &self,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError> {
        let engine: Box<dyn GpuSpmvMulti<T>> = Box::new(CsrVector::new(DevCsr::upload(dev, m)));
        check_budget(
            SpmvPlan::new(
                "CSR-vector",
                PreprocessClass::Upload,
                engine,
                PreprocessCost::default(),
            ),
            budget,
        )
    }
}

/// COO with segmented reduction (CUSP `coomv`).
pub struct CooPlanner;

impl<T: Scalar> SpmvPlanner<T> for CooPlanner {
    fn name(&self) -> &'static str {
        "COO"
    }
    fn class(&self) -> PreprocessClass {
        PreprocessClass::Transform
    }
    fn plan(
        &self,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError> {
        let (coo, cost) = CooMatrix::from_csr(m);
        let engine: Box<dyn GpuSpmvMulti<T>> = Box::new(CooKernel::new(DevCoo::upload(dev, &coo)));
        check_budget(
            SpmvPlan::new("COO", PreprocessClass::Transform, engine, cost),
            budget,
        )
    }
}

/// ELL padded to the max row length (CUSP `ellmv`).
pub struct EllPlanner;

impl<T: Scalar> SpmvPlanner<T> for EllPlanner {
    fn name(&self) -> &'static str {
        "ELL"
    }
    fn class(&self) -> PreprocessClass {
        PreprocessClass::Transform
    }
    fn plan(
        &self,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError> {
        let (ell, cost) = EllMatrix::from_csr(m, budget.max_bytes_usize())?;
        let engine: Box<dyn GpuSpmvMulti<T>> = Box::new(EllKernel::new(DevEll::upload(dev, &ell)));
        check_budget(
            SpmvPlan::new("ELL", PreprocessClass::Transform, engine, cost),
            budget,
        )
    }
}

/// HYB = ELL head (heuristic width) + COO tail (cuSPARSE `hybmv`).
pub struct HybPlanner;

impl<T: Scalar> SpmvPlanner<T> for HybPlanner {
    fn name(&self) -> &'static str {
        "HYB"
    }
    fn class(&self) -> PreprocessClass {
        PreprocessClass::Transform
    }
    fn plan(
        &self,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError> {
        let (hyb, cost) = HybMatrix::from_csr(m, budget.max_bytes_usize())?;
        let engine: Box<dyn GpuSpmvMulti<T>> = Box::new(HybKernel::new(DevHyb::upload(dev, &hyb)));
        check_budget(
            SpmvPlan::new("HYB", PreprocessClass::Transform, engine, cost),
            budget,
        )
    }
}

/// Blocked row-column with length-sorted chunks (Ashari et al.).
pub struct BrcPlanner;

impl<T: Scalar> SpmvPlanner<T> for BrcPlanner {
    fn name(&self) -> &'static str {
        "BRC"
    }
    fn class(&self) -> PreprocessClass {
        PreprocessClass::Transform
    }
    fn plan(
        &self,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError> {
        let (brc, cost) = BrcMatrix::from_csr(m, budget.max_bytes_usize())?;
        let engine: Box<dyn GpuSpmvMulti<T>> = Box::new(BrcKernel::new(DevBrc::upload(dev, &brc)));
        check_budget(
            SpmvPlan::new("BRC", PreprocessClass::Transform, engine, cost),
            budget,
        )
    }
}

/// BCCOO with the full yaSpMV configuration sweep charged to
/// preprocessing (Yan et al.).
pub struct BccooPlanner;

impl<T: Scalar> SpmvPlanner<T> for BccooPlanner {
    fn name(&self) -> &'static str {
        "BCCOO"
    }
    fn class(&self) -> PreprocessClass {
        PreprocessClass::Autotune
    }
    fn plan(
        &self,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError> {
        let tuned =
            tuning::autotune_bccoo(dev, m, budget.bccoo_sample_rows, budget.max_bytes_usize())?;
        let engine: Box<dyn GpuSpmvMulti<T>> =
            Box::new(BccooKernel::new(DevBccoo::upload(dev, &tuned.matrix)));
        check_budget(
            SpmvPlan::new("BCCOO", PreprocessClass::Autotune, engine, tuned.cost),
            budget,
        )
    }
}

/// Column-tiled COO with exhaustive tile search (Yang et al.).
pub struct TcooPlanner;

impl<T: Scalar> SpmvPlanner<T> for TcooPlanner {
    fn name(&self) -> &'static str {
        "TCOO"
    }
    fn class(&self) -> PreprocessClass {
        PreprocessClass::Autotune
    }
    fn plan(
        &self,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError> {
        let tuned = tuning::tune_tcoo(dev, m, budget.max_bytes_usize())?;
        let engine: Box<dyn GpuSpmvMulti<T>> =
            Box::new(TcooKernel::new(DevTcoo::upload(dev, &tuned.matrix)));
        check_budget(
            SpmvPlan::new("TCOO", PreprocessClass::Autotune, engine, tuned.cost),
            budget,
        )
    }
}

/// ACSR: the paper's contribution. Cheap binning analysis, bin-specific
/// kernels, fused multi-vector path.
#[derive(Default)]
pub struct AcsrPlanner {
    /// `None` = pick per device ([`AcsrConfig::for_device`], i.e. dynamic
    /// parallelism on Titan, binning-only on Fermi-class parts).
    cfg: Option<AcsrConfig>,
}

impl AcsrPlanner {
    /// Pin the ACSR configuration instead of deriving it per device
    /// (e.g. [`AcsrConfig::static_long_tail`] for width-stable runs).
    pub fn with_config(cfg: AcsrConfig) -> Self {
        AcsrPlanner { cfg: Some(cfg) }
    }
}

impl<T: Scalar> SpmvPlanner<T> for AcsrPlanner {
    fn name(&self) -> &'static str {
        "ACSR"
    }
    fn class(&self) -> PreprocessClass {
        PreprocessClass::Scan
    }
    fn supports_multi_fused(&self) -> bool {
        true
    }
    fn plan(
        &self,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError> {
        let cfg = self
            .cfg
            .unwrap_or_else(|| AcsrConfig::for_device(dev.config()));
        let engine = AcsrEngine::from_csr(dev, m, cfg);
        let cost = *engine.preprocess_cost();
        let boxed: Box<dyn GpuSpmvMulti<T>> = Box::new(engine);
        // Only the live entries and the three per-row u32 arrays are
        // staged over PCIe; the slack slots are reserved on the device
        // without a host copy (the footprint still counts them).
        let staged = m.nnz() as u64 * (4 + std::mem::size_of::<T>() as u64) + m.rows() as u64 * 12;
        check_budget(
            SpmvPlan::new("ACSR", PreprocessClass::Scan, boxed, cost).with_upload_bytes(staged),
            budget,
        )
    }
}
