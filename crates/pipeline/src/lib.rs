//! # spmv-pipeline — the `analyze → plan → execute` SpMV lifecycle
//!
//! The paper's argument (Fig. 4, Tables III/IV) is that format choice is
//! a *preprocessing-cost vs. per-SpMV-speed* tradeoff: ACSR wins on graph
//! apps because its analysis phase is cheap enough to amortize within a
//! run, while BCCOO's auto-tuning needs thousands of iterations to pay
//! for itself. This crate turns that offline comparison into the
//! system's online dispatch layer:
//!
//! 1. **analyze** — [`sparse_formats::RowLengthStats`] from the CSR
//!    operator (cheap, one pass over `row_offsets`);
//! 2. **plan** — a [`SpmvPlanner`] folds conversion, auto-tuning and
//!    upload into one [`SpmvPlan`] handle carrying the
//!    [`PreprocessCost`], device bytes and a boxed
//!    [`GpuSpmvMulti`] engine. The [`FormatRegistry`] enumerates every
//!    planner (CSR-scalar, CSR-vector, COO, ELL, HYB, BRC, BCCOO, TCOO,
//!    ACSR) behind one trait;
//! 3. **execute** — the plan *is* a [`GpuSpmv`]/[`GpuSpmvMulti`], so
//!    every consumer (apps, serving, multi-GPU, benches) runs against
//!    the handle without knowing the concrete format.
//!
//! On top of the registry sit the [`AdaptiveSelector`] — which ranks the
//! candidate formats by `preprocess + upload + horizon × spmv`,
//! reproducing the paper's break-even analysis (Eq. 4) as a runtime
//! decision — and the structure-keyed [`PlanCache`], which lets
//! iterative apps and `acsr-serve` reuse a plan across iterations,
//! queries and dynamic-graph deltas (replanning only when the sparsity
//! structure actually changed).

pub mod cache;
pub mod planners;
pub mod selector;

pub use cache::{DriftKey, DriftOutcome, DriftTolerance, PlanCache, PlanKey, StructureKey};
pub use planners::{
    AcsrPlanner, BccooPlanner, BrcPlanner, CooPlanner, CsrScalarPlanner, CsrVectorPlanner,
    EllPlanner, HybPlanner, TcooPlanner,
};
pub use selector::{record_selection, AdaptiveSelector, CandidateReport, Selection};

use gpu_sim::{Device, DeviceBuffer, DeviceConfig, RunReport};
use serde::{Deserialize, Serialize};
use sparse_formats::{CsrMatrix, HostModel, PreprocessCost, Scalar, SparseError};
use spmv_kernels::{GpuSpmv, GpuSpmvMulti};

/// How a format's preprocessing behaves — the rows of the paper's
/// Table III, as a machine-readable class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreprocessClass {
    /// No host-side transformation: the CSR arrays are uploaded as-is
    /// (CSR-scalar, CSR-vector).
    Upload,
    /// A cheap linear scan over the structure (ACSR's binning — the
    /// paper's "analysis phase").
    Scan,
    /// A full format conversion: new arrays are materialized, possibly
    /// with sorting or padding (COO, ELL, HYB, BRC).
    Transform,
    /// Conversion *plus* an auto-tuning sweep whose trials are charged
    /// to preprocessing (BCCOO's >300 configurations, TCOO's tile
    /// search — the paper's Figure 4 headline costs).
    Autotune,
}

impl PreprocessClass {
    /// Short human label for registry listings.
    pub fn label(self) -> &'static str {
        match self {
            PreprocessClass::Upload => "upload",
            PreprocessClass::Scan => "scan",
            PreprocessClass::Transform => "transform",
            PreprocessClass::Autotune => "autotune",
        }
    }
}

/// Resource and amortization budget handed to [`SpmvPlanner::plan`].
#[derive(Clone, Debug)]
pub struct PlanBudget {
    /// Hard cap on the plan's device footprint, bytes. Plans that would
    /// exceed it fail with [`SparseError::CapacityExceeded`] — the ∅
    /// cells of the paper's tables.
    pub max_device_bytes: u64,
    /// Expected number of SpMV applications of the plan (the pagerank
    /// iteration count, the serve query volume, ...). The selector uses
    /// it as the amortization horizon of Eq. 4.
    pub expected_iterations: u64,
    /// Host cost model used to convert [`PreprocessCost`] into seconds.
    pub host: HostModel,
    /// Row-sample cap for the BCCOO tuner (`usize::MAX` = full-size
    /// trials; the default keeps planning tractable on big operators).
    pub bccoo_sample_rows: usize,
    /// Full-scale projection factor for the selector's probes: the
    /// bench suite's analog matrices are generated `scale` times
    /// smaller than the paper's, so probe measurements are projected to
    /// full size the same way the format-comparison experiments do
    /// (throughput terms and streamed bytes grow linearly, launch
    /// overheads and critical-path latency stay fixed). `1` (the
    /// default) means the operator is full-size already: measurements
    /// are taken at face value.
    pub probe_scale: usize,
}

impl Default for PlanBudget {
    fn default() -> Self {
        PlanBudget {
            max_device_bytes: u64::MAX,
            expected_iterations: 1,
            host: HostModel::default(),
            bccoo_sample_rows: 8192,
            probe_scale: 1,
        }
    }
}

impl PlanBudget {
    /// Budget capped at the device's physical memory.
    pub fn for_device(cfg: &DeviceConfig) -> Self {
        PlanBudget {
            max_device_bytes: cfg.memory_bytes() as u64,
            ..Default::default()
        }
    }

    /// Same budget with a different amortization horizon.
    pub fn with_iterations(mut self, n: u64) -> Self {
        self.expected_iterations = n;
        self
    }

    /// Same budget with a different probe projection factor.
    pub fn with_probe_scale(mut self, scale: usize) -> Self {
        self.probe_scale = scale.max(1);
        self
    }

    /// The device-bytes cap as a `usize` for format converters.
    pub(crate) fn max_bytes_usize(&self) -> usize {
        usize::try_from(self.max_device_bytes).unwrap_or(usize::MAX)
    }
}

/// The product of planning: a device-resident, executable SpMV handle.
///
/// A plan owns the uploaded engine and remembers what it cost to build
/// (conversion + tuning in [`PreprocessCost`]; upload size in
/// `device_bytes`). It implements [`GpuSpmv`] and [`GpuSpmvMulti`] by
/// delegation, so anything that ran against a concrete engine runs
/// against a plan unchanged.
pub struct SpmvPlan<T: Scalar> {
    format: &'static str,
    class: PreprocessClass,
    engine: Box<dyn GpuSpmvMulti<T>>,
    preprocess: PreprocessCost,
    device_bytes: u64,
    upload_bytes: u64,
}

impl<T: Scalar> SpmvPlan<T> {
    /// Assemble a plan (called by planners).
    pub fn new(
        format: &'static str,
        class: PreprocessClass,
        engine: Box<dyn GpuSpmvMulti<T>>,
        preprocess: PreprocessCost,
    ) -> Self {
        let device_bytes = engine.device_bytes();
        SpmvPlan {
            format,
            class,
            engine,
            preprocess,
            device_bytes,
            upload_bytes: device_bytes,
        }
    }

    /// Override the bytes that actually cross PCIe when the upload is
    /// smaller than the device footprint (ACSR reserves per-row slack
    /// slots on the device without staging them through the bus).
    pub fn with_upload_bytes(mut self, bytes: u64) -> Self {
        self.upload_bytes = bytes.min(self.device_bytes);
        self
    }

    /// Bytes copied host→device to materialize the plan (≤
    /// [`GpuSpmv::device_bytes`]).
    pub fn upload_bytes(&self) -> u64 {
        self.upload_bytes
    }

    /// The format this plan executes ("ACSR", "HYB", ...).
    pub fn format(&self) -> &'static str {
        self.format
    }

    /// Preprocessing class of the producing planner.
    pub fn class(&self) -> PreprocessClass {
        self.class
    }

    /// The executable engine (also reachable via the [`GpuSpmv`] impl).
    pub fn engine(&self) -> &dyn GpuSpmvMulti<T> {
        self.engine.as_ref()
    }

    /// What building this plan cost (conversion, sorting, tuning).
    pub fn preprocess_cost(&self) -> &PreprocessCost {
        &self.preprocess
    }

    /// Modeled host-side preprocessing seconds under `host`.
    pub fn preprocess_seconds(&self, host: &HostModel) -> f64 {
        self.preprocess.modeled_host_seconds(host)
    }

    /// Modeled PCIe upload seconds for the plan's staged bytes.
    pub fn upload_seconds(&self, host: &HostModel) -> f64 {
        host.copy_seconds(self.upload_bytes)
    }
}

impl<T: Scalar> GpuSpmv<T> for SpmvPlan<T> {
    fn name(&self) -> &'static str {
        self.format
    }
    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        self.engine.spmv(dev, x, y)
    }
    fn rows(&self) -> usize {
        self.engine.rows()
    }
    fn cols(&self) -> usize {
        self.engine.cols()
    }
    fn nnz(&self) -> usize {
        self.engine.nnz()
    }
    fn device_bytes(&self) -> u64 {
        self.device_bytes
    }
}

impl<T: Scalar> GpuSpmvMulti<T> for SpmvPlan<T> {
    fn spmv_multi(
        &self,
        dev: &Device,
        xs: &[&DeviceBuffer<T>],
        ys: &[&DeviceBuffer<T>],
    ) -> RunReport {
        self.engine.spmv_multi(dev, xs, ys)
    }
}

/// One format's entry point into the pipeline: fold conversion, tuning
/// and upload into a [`SpmvPlan`] under a [`PlanBudget`].
pub trait SpmvPlanner<T: Scalar> {
    /// Registry name ("ACSR", "CSR-vector", ...).
    fn name(&self) -> &'static str;
    /// Preprocessing class (Table III row).
    fn class(&self) -> PreprocessClass;
    /// Whether the engine has a *fused* multi-vector path (reads the
    /// matrix once per wave); `false` means the k-sequential-launch
    /// fallback.
    fn supports_multi_fused(&self) -> bool {
        false
    }
    /// Build the plan. Fails with [`SparseError::CapacityExceeded`]
    /// when the format cannot represent `m` within the budget.
    fn plan(
        &self,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError>;
}

/// One row of [`FormatRegistry::descriptors`] — what `repro formats`
/// prints.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FormatDescriptor {
    /// Registry name.
    pub name: &'static str,
    /// Preprocessing class.
    pub class: PreprocessClass,
    /// Fused multi-vector support (vs. the sequential fallback).
    pub multi_fused: bool,
}

/// The set of registered planners — the pipeline's dispatch table.
pub struct FormatRegistry<T: Scalar> {
    planners: Vec<Box<dyn SpmvPlanner<T>>>,
}

impl<T: Scalar> Default for FormatRegistry<T> {
    fn default() -> Self {
        Self::with_all()
    }
}

impl<T: Scalar> FormatRegistry<T> {
    /// An empty registry (for tests or custom line-ups).
    pub fn empty() -> Self {
        FormatRegistry {
            planners: Vec::new(),
        }
    }

    /// Every format the repo implements, in the paper's comparison
    /// order: the two CSR baselines, the classic conversions, the two
    /// auto-tuned comparators, then ACSR.
    pub fn with_all() -> Self {
        let mut r = Self::empty();
        r.register(Box::new(CsrScalarPlanner));
        r.register(Box::new(CsrVectorPlanner));
        r.register(Box::new(CooPlanner));
        r.register(Box::new(EllPlanner));
        r.register(Box::new(HybPlanner));
        r.register(Box::new(BrcPlanner));
        r.register(Box::new(BccooPlanner));
        r.register(Box::new(TcooPlanner));
        r.register(Box::new(AcsrPlanner::default()));
        r
    }

    /// Add a planner, replacing any existing one with the same name
    /// (lets callers override e.g. the ACSR config).
    pub fn register(&mut self, planner: Box<dyn SpmvPlanner<T>>) {
        if let Some(slot) = self
            .planners
            .iter_mut()
            .find(|p| p.name() == planner.name())
        {
            *slot = planner;
        } else {
            self.planners.push(planner);
        }
    }

    /// Look up a planner by registry name.
    pub fn get(&self, name: &str) -> Option<&dyn SpmvPlanner<T>> {
        self.planners
            .iter()
            .find(|p| p.name() == name)
            .map(|p| p.as_ref())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.planners.iter().map(|p| p.name()).collect()
    }

    /// Iterate the planners in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn SpmvPlanner<T>> {
        self.planners.iter().map(|p| p.as_ref())
    }

    /// Descriptor rows for listings (`repro formats`).
    pub fn descriptors(&self) -> Vec<FormatDescriptor> {
        self.planners
            .iter()
            .map(|p| FormatDescriptor {
                name: p.name(),
                class: p.class(),
                multi_fused: p.supports_multi_fused(),
            })
            .collect()
    }

    /// Plan `m` with the named format.
    pub fn plan(
        &self,
        name: &str,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<SpmvPlan<T>, SparseError> {
        let planner = self.get(name).ok_or(SparseError::CapacityExceeded {
            format: "registry",
            detail: format!("no planner registered under '{name}'"),
        })?;
        planner.plan(dev, m, budget)
    }
}

/// Eq. 4 of the paper: the iteration count at which format `a`'s total
/// time overtakes format `b`'s, given per-format preprocessing (incl.
/// upload) and per-SpMV seconds. `None` when `a` never catches up (it
/// is slower per SpMV *and* costlier up front, or equal speed).
pub fn break_even_iterations(pre_a: f64, spmv_a: f64, pre_b: f64, spmv_b: f64) -> Option<f64> {
    let d_spmv = spmv_b - spmv_a;
    let d_pre = pre_a - pre_b;
    if d_spmv <= 0.0 {
        // `a` is not faster per SpMV: it only "wins" if it is also
        // cheaper to build, i.e. wins at n = 0.
        return if d_pre < 0.0 { Some(0.0) } else { None };
    }
    Some((d_pre / d_spmv).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn tiny(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 6.0,
            max_degree: (rows / 4).max(8),
            pinned_max_rows: 1,
            col_skew: 0.5,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn registry_lists_all_nine_formats() {
        let reg = FormatRegistry::<f64>::with_all();
        let names = reg.names();
        assert_eq!(names.len(), 9, "{names:?}");
        for want in [
            "CSR-scalar",
            "CSR-vector",
            "COO",
            "ELL",
            "HYB",
            "BRC",
            "BCCOO",
            "TCOO",
            "ACSR",
        ] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
        // Only ACSR has the fused multi-vector path.
        for d in reg.descriptors() {
            assert_eq!(d.multi_fused, d.name == "ACSR", "{}", d.name);
        }
    }

    #[test]
    fn every_plan_computes_the_same_product() {
        let m = tiny(300, 9);
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::default();
        let x: Vec<f64> = (0..m.cols())
            .map(|i| 0.5 + (i % 13) as f64 * 0.25)
            .collect();
        let xd = dev.alloc(x.clone());
        let mut reference: Option<Vec<f64>> = None;
        for name in reg.names() {
            let plan = reg.plan(name, &dev, &m, &budget).unwrap();
            assert_eq!(plan.rows(), m.rows());
            assert_eq!(plan.nnz(), m.nnz());
            assert!(plan.device_bytes() > 0);
            let yd = dev.alloc_zeroed::<f64>(m.rows());
            plan.spmv(&dev, &xd, &yd);
            let y = yd.into_vec();
            match &reference {
                None => reference = Some(y),
                Some(want) => {
                    let d = sparse_formats::scalar::rel_l2_distance(&y, want);
                    assert!(d < 1e-10, "{name}: rel L2 {d}");
                }
            }
        }
    }

    #[test]
    fn budget_cap_rejects_oversized_plans() {
        let m = tiny(400, 11);
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget {
            max_device_bytes: 64, // nothing fits in 64 bytes
            ..Default::default()
        };
        for name in reg.names() {
            let res = reg.plan(name, &dev, &m, &budget);
            assert!(res.is_err(), "{name} accepted a 64-byte budget");
        }
    }

    #[test]
    fn register_replaces_by_name() {
        let mut reg = FormatRegistry::<f64>::with_all();
        let n = reg.names().len();
        reg.register(Box::new(AcsrPlanner::with_config(
            acsr::AcsrConfig::static_long_tail(),
        )));
        assert_eq!(
            reg.names().len(),
            n,
            "replacement must not grow the registry"
        );
    }

    #[test]
    fn break_even_matches_eq4() {
        // a: costly pre, fast spmv; b: cheap pre, slow spmv.
        // a overtakes b at n = (pre_a - pre_b) / (spmv_b - spmv_a).
        let n = break_even_iterations(10.0, 0.1, 1.0, 1.0).unwrap();
        assert!((n - 10.0).abs() < 1e-12, "{n}");
        // never catches up: slower per-SpMV and costlier up front
        assert!(break_even_iterations(10.0, 1.0, 1.0, 0.5).is_none());
        // dominates outright: wins from iteration 0
        assert_eq!(break_even_iterations(1.0, 0.5, 10.0, 0.5), Some(0.0));
    }
}
