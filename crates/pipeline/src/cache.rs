//! Structure-keyed plan cache: reuse a plan across iterations, queries
//! and dynamic-graph epochs, replanning only when the sparsity
//! structure actually changed.
//!
//! The key hashes the CSR *structure* (`row_offsets` + `col_indices`),
//! not the values: every plan in this stack — binning, padding, tiling,
//! tuning — depends only on the sparsity pattern, and the modeled
//! kernel times are value-independent, so a value-only update (edge
//! reweighting) keeps the cached plan valid. Any structural delta
//! produces a different fingerprint and therefore a miss, which *is*
//! the invalidation policy for dynamic graphs; ACSR's in-place
//! incremental updates (`apply_update`) deliberately bypass the cache.

use crate::{FormatRegistry, PlanBudget, SpmvPlan};
use acsr_telemetry::Telemetry;
use gpu_sim::Device;
use serde::{Deserialize, Serialize};
use sparse_formats::{CsrMatrix, Scalar, SparseError};
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of a sparsity structure: shape, nnz and an FNV-1a
/// fingerprint of the index arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StructureKey {
    /// Rows of the operator.
    pub rows: usize,
    /// Columns of the operator.
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// FNV-1a over `row_offsets` then `col_indices` bytes.
    pub fingerprint: u64,
}

impl StructureKey {
    /// Key for a CSR operator.
    pub fn of<T: Scalar>(m: &CsrMatrix<T>) -> Self {
        let mut h = Fnv::new();
        for &o in m.row_offsets() {
            h.write_u32(o);
        }
        for &c in m.col_indices() {
            h.write_u32(c);
        }
        StructureKey {
            rows: m.rows(),
            cols: m.cols(),
            nnz: m.nnz(),
            fingerprint: h.finish(),
        }
    }
}

/// FNV-1a, 64-bit — tiny, dependency-free, good enough to distinguish
/// sparsity structures (collisions only waste a replan, never corrupt).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Full cache key: which format, for which structure.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanKey {
    /// Registry format name.
    pub format: String,
    /// Sparsity-structure identity.
    pub structure: StructureKey,
}

/// Identity of a *streamed* operator: structural epoch plus the per-bin
/// row census. Unlike [`StructureKey`], a drift key is cheap to produce
/// (no index-array scan — `acsr-stream` maintains both fields anyway)
/// and deliberately lossy: two epochs whose occupancy vectors are close
/// describe matrices whose binning — and therefore whose plan — is
/// still essentially the same.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftKey {
    /// Rows of the operator.
    pub rows: usize,
    /// Columns of the operator.
    pub cols: usize,
    /// Structural epoch (batches applied since build).
    pub epoch: u64,
    /// Rows per bin (index 0 = empty rows).
    pub occupancy: Vec<u32>,
}

/// How much drift a cached plan is allowed to survive.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DriftTolerance {
    /// Maximum fraction of rows that may have changed length class since
    /// the plan was anchored.
    pub max_row_churn: f64,
    /// Maximum bins populated now that were empty at the anchor.
    pub max_new_bins: usize,
}

impl Default for DriftTolerance {
    fn default() -> Self {
        DriftTolerance {
            max_row_churn: 0.25,
            max_new_bins: 2,
        }
    }
}

/// What [`PlanCache::probe_drift`] decided.
#[derive(Clone, Debug, PartialEq)]
pub enum DriftOutcome {
    /// Same epoch as the anchor — nothing moved.
    Hit,
    /// The structure drifted, but within tolerance: keep the plan.
    Survived {
        /// Batches applied since the plan was anchored.
        epochs_behind: u64,
        /// Fraction of rows that changed length class since the anchor.
        row_churn: f64,
    },
    /// Drift exceeded tolerance (or no anchor yet): replan required. The
    /// anchor has been reset to the probed key.
    Replan {
        /// Human-readable cause, for bench stderr.
        reason: String,
    },
}

/// Rows that changed bins between two occupancy vectors: half the L1
/// distance (every mover leaves one bin and joins another).
fn churn_rows(a: &[u32], b: &[u32]) -> u64 {
    let n = a.len().max(b.len());
    let at = |v: &[u32], i: usize| v.get(i).copied().unwrap_or(0) as i64;
    (0..n)
        .map(|i| (at(a, i) - at(b, i)).unsigned_abs())
        .sum::<u64>()
        / 2
}

/// A `(format, structure) → SpmvPlan` cache with hit/miss accounting.
///
/// Plans are device-resident; the cache owns them, so its lifetime
/// bounds how long the device memory stays allocated.
pub struct PlanCache<T: Scalar> {
    plans: HashMap<PlanKey, SpmvPlan<T>>,
    /// Per-stream drift anchors: the key each live plan was built at.
    anchors: HashMap<String, DriftKey>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    /// Optional metrics sink; `plan_cache.*` counters mirror the three
    /// accounting fields above (one branch per event when absent).
    telemetry: Option<Arc<Telemetry>>,
}

impl<T: Scalar> Default for PlanCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> PlanCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            plans: HashMap::new(),
            anchors: HashMap::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
            telemetry: acsr_telemetry::active(),
        }
    }

    /// Route `plan_cache.*` metrics into `tel` (replacing any sink
    /// picked up from [`acsr_telemetry::active`] at construction).
    pub fn attach_telemetry(&mut self, tel: Arc<Telemetry>) {
        self.telemetry = Some(tel);
    }

    fn bump(&self, name: &str, delta: u64) {
        if let Some(tel) = &self.telemetry {
            tel.metrics.add(name, delta);
        }
    }

    /// Look up the plan for (`format`, structure of `m`), planning it
    /// through `reg` on a miss. Iterations 2..n of an iterative app hit
    /// here and pay **zero** additional preprocessing.
    pub fn get_or_plan(
        &mut self,
        reg: &FormatRegistry<T>,
        format: &str,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<&SpmvPlan<T>, SparseError> {
        let key = PlanKey {
            format: format.to_string(),
            structure: StructureKey::of(m),
        };
        // (entry API would borrow `self.plans` across the fallible plan
        // call; a contains/insert pair keeps the error path clean)
        if self.plans.contains_key(&key) {
            self.hits += 1;
            self.bump("plan_cache.hits", 1);
        } else {
            let plan = reg.plan(format, dev, m, budget)?;
            self.plans.insert(key.clone(), plan);
            self.misses += 1;
            self.bump("plan_cache.misses", 1);
        }
        Ok(self.plans.get(&key).expect("just inserted"))
    }

    /// Drop every plan for a structure (all formats) — the dynamic-graph
    /// hook for callers that mutate a matrix in place and know its old
    /// key.
    pub fn invalidate(&mut self, structure: &StructureKey) {
        let before = self.plans.len();
        self.plans.retain(|k, _| k.structure != *structure);
        let dropped = (before - self.plans.len()) as u64;
        self.invalidations += dropped;
        self.bump("plan_cache.invalidations", dropped);
    }

    /// Probe whether the plan anchored for `stream_id` survives the
    /// operator's current drift key. An exact epoch match is a [`Hit`];
    /// drift within `tol` is [`Survived`] (the anchor is kept, so drift
    /// accumulates against the *planning-time* structure, not the last
    /// probe); anything else — including the first probe — resets the
    /// anchor and demands a [`Replan`].
    ///
    /// [`Hit`]: DriftOutcome::Hit
    /// [`Survived`]: DriftOutcome::Survived
    /// [`Replan`]: DriftOutcome::Replan
    pub fn probe_drift(
        &mut self,
        stream_id: &str,
        current: &DriftKey,
        tol: &DriftTolerance,
    ) -> DriftOutcome {
        let outcome = match self.anchors.get(stream_id) {
            None => DriftOutcome::Replan {
                reason: "no anchored plan".to_string(),
            },
            Some(anchor) if anchor == current => DriftOutcome::Hit,
            Some(anchor) if anchor.rows != current.rows || anchor.cols != current.cols => {
                DriftOutcome::Replan {
                    reason: format!(
                        "shape changed {}x{} -> {}x{}",
                        anchor.rows, anchor.cols, current.rows, current.cols
                    ),
                }
            }
            Some(anchor) => {
                let moved = churn_rows(&anchor.occupancy, &current.occupancy);
                let row_churn = moved as f64 / current.rows.max(1) as f64;
                let new_bins = current
                    .occupancy
                    .iter()
                    .enumerate()
                    .filter(|&(b, &occ)| {
                        occ > 0 && anchor.occupancy.get(b).copied().unwrap_or(0) == 0
                    })
                    .count();
                if row_churn <= tol.max_row_churn && new_bins <= tol.max_new_bins {
                    DriftOutcome::Survived {
                        epochs_behind: current.epoch.saturating_sub(anchor.epoch),
                        row_churn,
                    }
                } else {
                    DriftOutcome::Replan {
                        reason: format!(
                            "row churn {:.1}% (cap {:.1}%), {} new bins (cap {})",
                            row_churn * 100.0,
                            tol.max_row_churn * 100.0,
                            new_bins,
                            tol.max_new_bins
                        ),
                    }
                }
            }
        };
        match &outcome {
            DriftOutcome::Hit | DriftOutcome::Survived { .. } => {
                self.hits += 1;
                self.bump("plan_cache.hits", 1);
            }
            DriftOutcome::Replan { .. } => {
                if self
                    .anchors
                    .insert(stream_id.to_string(), current.clone())
                    .is_some()
                {
                    self.invalidations += 1;
                    self.bump("plan_cache.invalidations", 1);
                }
                self.misses += 1;
                self.bump("plan_cache.misses", 1);
            }
        }
        outcome
    }

    /// Cache hits so far (exact and drift-survived).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (= plans actually built).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Plans dropped by [`invalidate`](Self::invalidate) plus drift
    /// anchors displaced by an over-tolerance replan.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};
    use sparse_formats::UpdateBatch;

    fn m(seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows: 400,
            cols: 400,
            mean_degree: 7.0,
            max_degree: 60,
            pinned_max_rows: 1,
            col_skew: 0.5,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn same_structure_hits_different_structure_misses() {
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::default();
        let mut cache = PlanCache::new();
        let a = m(1);
        let b = m(2);
        for _ in 0..5 {
            cache.get_or_plan(&reg, "ACSR", &dev, &a, &budget).unwrap();
        }
        assert_eq!((cache.misses(), cache.hits()), (1, 4));
        cache.get_or_plan(&reg, "ACSR", &dev, &b, &budget).unwrap();
        assert_eq!(cache.misses(), 2, "different structure must replan");
        cache.get_or_plan(&reg, "HYB", &dev, &a, &budget).unwrap();
        assert_eq!(cache.misses(), 3, "different format must replan");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn value_only_update_keeps_the_key() {
        let a = m(3);
        let same_structure = CsrMatrix::from_raw_parts(
            a.rows(),
            a.cols(),
            a.row_offsets().to_vec(),
            a.col_indices().to_vec(),
            a.values().iter().map(|v| v * 2.0).collect(),
        )
        .unwrap();
        assert_eq!(StructureKey::of(&a), StructureKey::of(&same_structure));
    }

    #[test]
    fn structural_delta_changes_the_key() {
        let a = m(4);
        // Insert one edge into row 0 at the last free column slot.
        let free_col = (0..a.cols() as u32)
            .find(|c| !a.row(0).0.contains(c))
            .expect("row 0 has a free column");
        let batch = UpdateBatch {
            rows: vec![0],
            delete_offsets: vec![0, 0],
            delete_cols: vec![],
            insert_offsets: vec![0, 1],
            insert_cols: vec![free_col],
            insert_vals: vec![1.0],
        };
        let b = batch.apply_to_csr(&a);
        assert_ne!(
            StructureKey::of(&a),
            StructureKey::of(&b),
            "an inserted edge must invalidate the structure key"
        );
    }

    #[test]
    fn drift_probe_survives_bounded_churn_and_replans_past_it() {
        let mut cache = PlanCache::<f64>::new();
        let tol = DriftTolerance::default();
        let base = DriftKey {
            rows: 100,
            cols: 100,
            epoch: 0,
            occupancy: vec![10, 40, 30, 20],
        };
        // first probe: no anchor yet
        assert!(matches!(
            cache.probe_drift("s", &base, &tol),
            DriftOutcome::Replan { .. }
        ));
        // unchanged epoch: exact hit
        assert_eq!(cache.probe_drift("s", &base, &tol), DriftOutcome::Hit);
        // 10 rows moved bins (churn 10%) over 3 epochs: survives
        let drifted = DriftKey {
            epoch: 3,
            occupancy: vec![10, 30, 40, 20],
            ..base.clone()
        };
        match cache.probe_drift("s", &drifted, &tol) {
            DriftOutcome::Survived {
                epochs_behind,
                row_churn,
            } => {
                assert_eq!(epochs_behind, 3);
                assert!((row_churn - 0.10).abs() < 1e-12);
            }
            other => panic!("expected Survived, got {other:?}"),
        }
        // drift is measured against the ANCHOR, not the last probe: 30
        // rows from the anchor (churn 30%) exceeds the 25% cap
        let too_far = DriftKey {
            epoch: 9,
            occupancy: vec![10, 10, 50, 30],
            ..base.clone()
        };
        assert!(matches!(
            cache.probe_drift("s", &too_far, &tol),
            DriftOutcome::Replan { .. }
        ));
        assert_eq!(cache.invalidations(), 1, "replan displaced the anchor");
        // the replan re-anchored at `too_far`
        assert_eq!(cache.probe_drift("s", &too_far, &tol), DriftOutcome::Hit);
        assert_eq!((cache.hits(), cache.misses()), (3, 2));
    }

    #[test]
    fn drift_probe_replans_on_new_bins_and_shape_change() {
        let mut cache = PlanCache::<f64>::new();
        let tol = DriftTolerance {
            max_row_churn: 1.0,
            max_new_bins: 1,
        };
        let base = DriftKey {
            rows: 50,
            cols: 50,
            epoch: 0,
            occupancy: vec![5, 45],
        };
        cache.probe_drift("s", &base, &tol);
        // two newly populated bins with a cap of one: replan even though
        // the churn tolerance would allow it
        let widened = DriftKey {
            epoch: 1,
            occupancy: vec![5, 41, 2, 2],
            ..base.clone()
        };
        assert!(matches!(
            cache.probe_drift("s", &widened, &tol),
            DriftOutcome::Replan { .. }
        ));
        let reshaped = DriftKey {
            rows: 60,
            ..widened.clone()
        };
        assert!(matches!(
            cache.probe_drift("s", &reshaped, &tol),
            DriftOutcome::Replan { .. }
        ));
        // independent streams keep independent anchors
        assert!(matches!(
            cache.probe_drift("other", &base, &tol),
            DriftOutcome::Replan { .. }
        ));
        assert_eq!(cache.probe_drift("other", &base, &tol), DriftOutcome::Hit);
    }

    #[test]
    fn invalidate_counts_dropped_plans() {
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::default();
        let mut cache = PlanCache::new();
        let a = m(6);
        cache.get_or_plan(&reg, "ACSR", &dev, &a, &budget).unwrap();
        cache.get_or_plan(&reg, "HYB", &dev, &a, &budget).unwrap();
        assert_eq!(cache.invalidations(), 0);
        cache.invalidate(&StructureKey::of(&a));
        assert_eq!(cache.invalidations(), 2, "both formats dropped");
        cache.invalidate(&StructureKey::of(&a));
        assert_eq!(cache.invalidations(), 2, "idempotent on an empty set");
    }

    #[test]
    fn telemetry_counters_mirror_cache_accounting() {
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::default();
        let tel = std::sync::Arc::new(Telemetry::new());
        let mut cache = PlanCache::new();
        cache.attach_telemetry(tel.clone());
        let a = m(7);
        for _ in 0..3 {
            cache.get_or_plan(&reg, "ACSR", &dev, &a, &budget).unwrap();
        }
        cache.invalidate(&StructureKey::of(&a));
        let key = DriftKey {
            rows: 10,
            cols: 10,
            epoch: 0,
            occupancy: vec![1, 9],
        };
        cache.probe_drift("s", &key, &DriftTolerance::default());
        cache.probe_drift("s", &key, &DriftTolerance::default());
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("plan_cache.hits"), Some(cache.hits()));
        assert_eq!(snap.counter("plan_cache.misses"), Some(cache.misses()));
        assert_eq!(
            snap.counter("plan_cache.invalidations"),
            Some(cache.invalidations())
        );
        assert_eq!(
            (cache.hits(), cache.misses(), cache.invalidations()),
            (3, 2, 1)
        );
    }

    #[test]
    fn invalidate_drops_all_formats_for_a_structure() {
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::default();
        let mut cache = PlanCache::new();
        let a = m(5);
        cache.get_or_plan(&reg, "ACSR", &dev, &a, &budget).unwrap();
        cache
            .get_or_plan(&reg, "CSR-vector", &dev, &a, &budget)
            .unwrap();
        assert_eq!(cache.len(), 2);
        cache.invalidate(&StructureKey::of(&a));
        assert!(cache.is_empty());
    }
}
