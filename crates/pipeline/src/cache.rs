//! Structure-keyed plan cache: reuse a plan across iterations, queries
//! and dynamic-graph epochs, replanning only when the sparsity
//! structure actually changed.
//!
//! The key hashes the CSR *structure* (`row_offsets` + `col_indices`),
//! not the values: every plan in this stack — binning, padding, tiling,
//! tuning — depends only on the sparsity pattern, and the modeled
//! kernel times are value-independent, so a value-only update (edge
//! reweighting) keeps the cached plan valid. Any structural delta
//! produces a different fingerprint and therefore a miss, which *is*
//! the invalidation policy for dynamic graphs; ACSR's in-place
//! incremental updates (`apply_update`) deliberately bypass the cache.

use crate::{FormatRegistry, PlanBudget, SpmvPlan};
use gpu_sim::Device;
use serde::{Deserialize, Serialize};
use sparse_formats::{CsrMatrix, Scalar, SparseError};
use std::collections::HashMap;

/// Identity of a sparsity structure: shape, nnz and an FNV-1a
/// fingerprint of the index arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StructureKey {
    /// Rows of the operator.
    pub rows: usize,
    /// Columns of the operator.
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// FNV-1a over `row_offsets` then `col_indices` bytes.
    pub fingerprint: u64,
}

impl StructureKey {
    /// Key for a CSR operator.
    pub fn of<T: Scalar>(m: &CsrMatrix<T>) -> Self {
        let mut h = Fnv::new();
        for &o in m.row_offsets() {
            h.write_u32(o);
        }
        for &c in m.col_indices() {
            h.write_u32(c);
        }
        StructureKey {
            rows: m.rows(),
            cols: m.cols(),
            nnz: m.nnz(),
            fingerprint: h.finish(),
        }
    }
}

/// FNV-1a, 64-bit — tiny, dependency-free, good enough to distinguish
/// sparsity structures (collisions only waste a replan, never corrupt).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Full cache key: which format, for which structure.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanKey {
    /// Registry format name.
    pub format: String,
    /// Sparsity-structure identity.
    pub structure: StructureKey,
}

/// A `(format, structure) → SpmvPlan` cache with hit/miss accounting.
///
/// Plans are device-resident; the cache owns them, so its lifetime
/// bounds how long the device memory stays allocated.
pub struct PlanCache<T: Scalar> {
    plans: HashMap<PlanKey, SpmvPlan<T>>,
    hits: u64,
    misses: u64,
}

impl<T: Scalar> Default for PlanCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> PlanCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            plans: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up the plan for (`format`, structure of `m`), planning it
    /// through `reg` on a miss. Iterations 2..n of an iterative app hit
    /// here and pay **zero** additional preprocessing.
    pub fn get_or_plan(
        &mut self,
        reg: &FormatRegistry<T>,
        format: &str,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Result<&SpmvPlan<T>, SparseError> {
        let key = PlanKey {
            format: format.to_string(),
            structure: StructureKey::of(m),
        };
        // (entry API would borrow `self.plans` across the fallible plan
        // call; a contains/insert pair keeps the error path clean)
        if self.plans.contains_key(&key) {
            self.hits += 1;
        } else {
            let plan = reg.plan(format, dev, m, budget)?;
            self.plans.insert(key.clone(), plan);
            self.misses += 1;
        }
        Ok(self.plans.get(&key).expect("just inserted"))
    }

    /// Drop every plan for a structure (all formats) — the dynamic-graph
    /// hook for callers that mutate a matrix in place and know its old
    /// key.
    pub fn invalidate(&mut self, structure: &StructureKey) {
        self.plans.retain(|k, _| k.structure != *structure);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (= plans actually built).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};
    use sparse_formats::UpdateBatch;

    fn m(seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows: 400,
            cols: 400,
            mean_degree: 7.0,
            max_degree: 60,
            pinned_max_rows: 1,
            col_skew: 0.5,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn same_structure_hits_different_structure_misses() {
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::default();
        let mut cache = PlanCache::new();
        let a = m(1);
        let b = m(2);
        for _ in 0..5 {
            cache.get_or_plan(&reg, "ACSR", &dev, &a, &budget).unwrap();
        }
        assert_eq!((cache.misses(), cache.hits()), (1, 4));
        cache.get_or_plan(&reg, "ACSR", &dev, &b, &budget).unwrap();
        assert_eq!(cache.misses(), 2, "different structure must replan");
        cache.get_or_plan(&reg, "HYB", &dev, &a, &budget).unwrap();
        assert_eq!(cache.misses(), 3, "different format must replan");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn value_only_update_keeps_the_key() {
        let a = m(3);
        let same_structure = CsrMatrix::from_raw_parts(
            a.rows(),
            a.cols(),
            a.row_offsets().to_vec(),
            a.col_indices().to_vec(),
            a.values().iter().map(|v| v * 2.0).collect(),
        )
        .unwrap();
        assert_eq!(StructureKey::of(&a), StructureKey::of(&same_structure));
    }

    #[test]
    fn structural_delta_changes_the_key() {
        let a = m(4);
        // Insert one edge into row 0 at the last free column slot.
        let free_col = (0..a.cols() as u32)
            .find(|c| !a.row(0).0.contains(c))
            .expect("row 0 has a free column");
        let batch = UpdateBatch {
            rows: vec![0],
            delete_offsets: vec![0, 0],
            delete_cols: vec![],
            insert_offsets: vec![0, 1],
            insert_cols: vec![free_col],
            insert_vals: vec![1.0],
        };
        let b = batch.apply_to_csr(&a);
        assert_ne!(
            StructureKey::of(&a),
            StructureKey::of(&b),
            "an inserted edge must invalidate the structure key"
        );
    }

    #[test]
    fn invalidate_drops_all_formats_for_a_structure() {
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::default();
        let mut cache = PlanCache::new();
        let a = m(5);
        cache.get_or_plan(&reg, "ACSR", &dev, &a, &budget).unwrap();
        cache
            .get_or_plan(&reg, "CSR-vector", &dev, &a, &budget)
            .unwrap();
        assert_eq!(cache.len(), 2);
        cache.invalidate(&StructureKey::of(&a));
        assert!(cache.is_empty());
    }
}
