//! The adaptive format selector — the paper's Fig. 4 break-even
//! analysis promoted to a runtime decision.
//!
//! Given an operator and an amortization horizon (the expected number of
//! SpMV applications), the selector:
//!
//! 1. **analyzes** the CSR structure ([`RowLengthStats`]) and shortlists
//!    the formats that are structurally plausible — there is no point
//!    auto-tuning BCCOO for a 10-iteration run, or padding ELL for a
//!    power-law matrix;
//! 2. **plans** each shortlisted format through the registry (charging
//!    real conversion/tuning costs);
//! 3. **probes** one modeled SpMV per feasible plan on the target
//!    device;
//! 4. ranks candidates by modeled total time
//!    `preprocess + upload + horizon × spmv` and returns the winner's
//!    plan plus the full ranked report (including per-candidate
//!    break-even iterations against the winner, Eq. 4).
//!
//! Every input to the ranking is deterministic — the structural stats,
//! the modeled host costs, and the simulator's modeled kernel times are
//! all independent of the host thread count — so selection is stable
//! across `ACSR_SIM_THREADS` widths (pinned by a test).

use crate::{break_even_iterations, FormatRegistry, PlanBudget, SpmvPlan};
use acsr_telemetry::Telemetry;
use gpu_sim::{Device, RunReport};
use serde::{Deserialize, Serialize};
use sparse_formats::{CsrMatrix, RowLengthStats, Scalar};
use spmv_kernels::GpuSpmv;

/// Horizon above which auto-tuned formats (BCCOO, TCOO) are worth
/// *considering*: below this not even the paper's best case amortizes a
/// tuning sweep (Fig. 4 shows break-evens in the hundreds to tens of
/// thousands of iterations for the tuned comparators).
const AUTOTUNE_HORIZON: u64 = 100;

/// One probed SpMV projected to `scale`-times-larger size, exactly like
/// the bench suite's format comparison: throughput-bound components
/// (compute issue, DRAM traffic) grow linearly with matrix size, while
/// per-warp critical paths (set by the longest row, which real degree
/// distributions clamp) and launch overheads stay fixed.
pub fn projected_spmv_seconds(r: &RunReport, scale: usize) -> f64 {
    let s = scale as f64;
    let work = (r.breakdown.compute_s * s)
        .max(r.breakdown.memory_s * s)
        .max(r.breakdown.latency_s);
    r.breakdown.launch_s + r.breakdown.dynamic_launch_s + work
}

/// One candidate's modeled outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CandidateReport {
    /// Registry name.
    pub format: String,
    /// Whether planning succeeded within the budget.
    pub feasible: bool,
    /// Why not, when `feasible` is false.
    pub reason: Option<String>,
    /// Modeled host preprocessing seconds (conversion + tuning).
    pub preprocess_s: f64,
    /// Modeled PCIe upload seconds for the plan's device footprint.
    pub upload_s: f64,
    /// Modeled seconds for one SpMV on the target device.
    pub spmv_s: f64,
    /// `preprocess_s + upload_s + horizon × spmv_s` — the ranking key.
    pub total_s: f64,
    /// Device bytes the plan occupies.
    pub device_bytes: u64,
    /// Eq. 4: iterations at which this candidate overtakes the winner
    /// (`None` = never; `Some(0)` ≈ ties or wins immediately). Filled
    /// in relative to the selected winner.
    pub break_even_vs_winner: Option<f64>,
}

/// The selector's decision: the winning plan plus the evidence.
pub struct Selection<T: Scalar> {
    /// The executable winning plan.
    pub plan: SpmvPlan<T>,
    /// Name of the winning format.
    pub winner: String,
    /// All evaluated candidates, ranked best-first (infeasible last).
    pub candidates: Vec<CandidateReport>,
    /// The structural analysis the shortlist was derived from.
    pub stats: RowLengthStats,
    /// The amortization horizon used for ranking.
    pub horizon: u64,
}

/// Record one ranked selection into `tel`: the decision itself
/// (`selector.decisions`, `selector.winner.<format>`), the candidate
/// census (`selector.candidates_ranked`, `selector.infeasible`), and
/// every feasible candidate's ranking key as a
/// `selector.ranked_total_s` histogram sample. Callers that own a
/// [`Selection`] pass `(&sel.winner, &sel.candidates)`.
pub fn record_selection(tel: &Telemetry, winner: &str, candidates: &[CandidateReport]) {
    let m = &tel.metrics;
    m.add("selector.decisions", 1);
    m.add(&format!("selector.winner.{winner}"), 1);
    m.add("selector.candidates_ranked", candidates.len() as u64);
    for c in candidates {
        if c.feasible {
            m.observe("selector.ranked_total_s", c.total_s);
        } else {
            m.add("selector.infeasible", 1);
        }
    }
}

/// Cost-model-driven format selection over a [`FormatRegistry`].
#[derive(Default)]
pub struct AdaptiveSelector;

impl AdaptiveSelector {
    /// The structural shortlist: which formats are worth planning for
    /// this operator at this horizon. HYB and ACSR are always
    /// candidates; the CSR kernels only on low-skew structures (on
    /// power-law matrices their warp efficiency collapses — the paper's
    /// Fig. 5 shows 2–20× behind, and our probes concur — so planning
    /// them would waste an upload).
    pub fn shortlist(stats: &RowLengthStats, horizon: u64) -> Vec<&'static str> {
        let mut list = vec!["HYB", "ACSR"];
        let uniform = !stats.looks_power_law();
        if uniform {
            list.push("CSR-vector");
            if stats.max_row <= 4 * stats.mean.max(1.0) as usize {
                // Short, even rows: padding is cheap and thread/row
                // balanced.
                list.push("ELL");
                list.push("CSR-scalar");
            }
        }
        if stats.mean < 4.0 {
            // Very sparse rows: segmented COO avoids per-row launch waste.
            list.push("COO");
        }
        if stats.looks_power_law() {
            // Skewed rows: BRC's length-sorted chunks are competitive.
            list.push("BRC");
        }
        if horizon >= AUTOTUNE_HORIZON {
            // Only long runs can amortize a tuning sweep (Fig. 4).
            list.push("BCCOO");
            list.push("TCOO");
        }
        list
    }

    /// Analyze, plan, probe and rank; returns the winning plan and the
    /// full candidate report.
    ///
    /// Infeasible candidates (budget, capacity) are kept in the report
    /// with `feasible = false`. Panics only if *no* registered candidate
    /// is feasible — CSR-vector plans whenever the operator itself fits,
    /// so this means the budget cannot hold the matrix at all.
    pub fn select<T: Scalar>(
        &self,
        reg: &FormatRegistry<T>,
        dev: &Device,
        m: &CsrMatrix<T>,
        budget: &PlanBudget,
    ) -> Selection<T> {
        let stats = m.row_stats();
        let horizon = budget.expected_iterations.max(1);
        let scale = budget.probe_scale.max(1);
        let x: Vec<T> = (0..m.cols())
            .map(|i| T::from_f64(1.0 + (i % 7) as f64 * 0.1))
            .collect();
        let xd = dev.alloc(x);

        let mut plans: Vec<(String, SpmvPlan<T>)> = Vec::new();
        let mut reports: Vec<CandidateReport> = Vec::new();
        let mut shortlist = Self::shortlist(&stats, horizon);
        // Last-resort fallback: raw CSR is representable whenever the
        // operator fits at all, so a winner always exists.
        if !shortlist.contains(&"CSR-vector") {
            shortlist.push("CSR-vector");
        }
        let fallback_only = stats.looks_power_law();
        for name in shortlist {
            if reg.get(name).is_none() {
                continue; // custom registries may carry fewer formats
            }
            // The fallback CSR entry only competes when nothing from the
            // structural shortlist planned successfully.
            if name == "CSR-vector" && fallback_only && !plans.is_empty() {
                break;
            }
            let mut infeasible = |reason: String| {
                reports.push(CandidateReport {
                    format: name.to_string(),
                    feasible: false,
                    reason: Some(reason),
                    preprocess_s: f64::INFINITY,
                    upload_s: f64::INFINITY,
                    spmv_s: f64::INFINITY,
                    total_s: f64::INFINITY,
                    device_bytes: 0,
                    break_even_vs_winner: None,
                });
            };
            match reg.plan(name, dev, m, budget) {
                Ok(plan) => {
                    // Full-scale feasibility: a probe-scaled operator
                    // must still fit the byte budget (the ∅ cells).
                    let full_bytes = plan.device_bytes().saturating_mul(scale as u64);
                    if full_bytes > budget.max_device_bytes {
                        infeasible(format!(
                            "{} device bytes at probe scale {scale} exceed budget {}",
                            full_bytes, budget.max_device_bytes
                        ));
                        continue;
                    }
                    let yd = dev.alloc_zeroed::<T>(m.rows());
                    let spmv_s = projected_spmv_seconds(&plan.spmv(dev, &xd, &yd), scale);
                    let preprocess_s = plan
                        .preprocess_cost()
                        .scaled(scale as u64)
                        .modeled_host_seconds(&budget.host);
                    let upload_s = budget
                        .host
                        .copy_seconds(plan.upload_bytes().saturating_mul(scale as u64));
                    reports.push(CandidateReport {
                        format: name.to_string(),
                        feasible: true,
                        reason: None,
                        preprocess_s,
                        upload_s,
                        spmv_s,
                        total_s: preprocess_s + upload_s + horizon as f64 * spmv_s,
                        device_bytes: plan.device_bytes(),
                        break_even_vs_winner: None,
                    });
                    plans.push((name.to_string(), plan));
                }
                Err(e) => infeasible(e.to_string()),
            }
        }

        // Rank: feasible by total time (name as a deterministic
        // tie-break), infeasible last.
        reports.sort_by(|a, b| {
            b.feasible
                .cmp(&a.feasible)
                .then(a.total_s.partial_cmp(&b.total_s).unwrap())
                .then(a.format.cmp(&b.format))
        });
        let winner = reports
            .first()
            .filter(|r| r.feasible)
            .map(|r| r.format.clone())
            .expect("no feasible format: budget cannot hold the operator");
        let (wp, ws) = {
            let w = &reports[0];
            (w.preprocess_s + w.upload_s, w.spmv_s)
        };
        for r in reports.iter_mut() {
            if r.feasible {
                r.break_even_vs_winner = if r.format == winner {
                    Some(0.0)
                } else {
                    break_even_iterations(r.preprocess_s + r.upload_s, r.spmv_s, wp, ws)
                };
            }
        }
        let plan = plans
            .into_iter()
            .find(|(n, _)| *n == winner)
            .map(|(_, p)| p)
            .expect("winner has a plan");
        Selection {
            plan,
            winner,
            candidates: reports,
            stats,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{presets, set_sim_threads};
    use graphgen::{generate_power_law, PowerLawConfig, TABLE1_SUITE};
    use std::sync::Mutex;

    // `set_sim_threads` is process-global: serialize the tests that
    // touch it (same pattern as the serve proptests).
    static WIDTH_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        // A failed sibling must not cascade into PoisonErrors here.
        WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A suite analog at `scale`, as the bench experiments generate it.
    fn suite_matrix(abbrev: &str, scale: usize) -> CsrMatrix<f64> {
        let spec = TABLE1_SUITE.iter().find(|s| s.abbrev == abbrev).unwrap();
        spec.generate::<f64>(scale, 1).csr
    }

    fn power_law(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 8.0,
            max_degree: (rows / 3).max(8),
            pinned_max_rows: 2,
            col_skew: 0.5,
            seed,
            ..Default::default()
        })
    }

    /// Uniform short-row matrix: every row has exactly `deg` entries.
    fn uniform(rows: usize, deg: usize, seed: u64) -> CsrMatrix<f64> {
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut cols = Vec::with_capacity(rows * deg);
        let mut vals = Vec::with_capacity(rows * deg);
        let mut state = seed | 1;
        offsets.push(0u32);
        for r in 0..rows {
            let mut seen = std::collections::BTreeSet::new();
            while seen.len() < deg {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                seen.insert(((state >> 33) as usize) % rows);
            }
            for c in seen {
                cols.push(c as u32);
                vals.push(1.0 + ((r + c) % 5) as f64 * 0.25);
            }
            offsets.push(cols.len() as u32);
        }
        CsrMatrix::from_raw_parts(rows, rows, offsets, cols, vals).unwrap()
    }

    #[test]
    fn power_law_app_horizon_picks_acsr() {
        let _guard = lock();
        // YOT at the bench's standard 512× downscale, probed with the
        // same 512× projection the format experiments use. 30 iterations
        // is past ACSR's sub-iteration break-even but well short of
        // HYB's (Table IV: ~100-250 on the suite).
        let m = suite_matrix("YOT", 512);
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::for_device(dev.config())
            .with_iterations(30)
            .with_probe_scale(512);
        let sel = AdaptiveSelector.select(&reg, &dev, &m, &budget);
        assert_eq!(sel.winner, "ACSR", "candidates: {:#?}", sel.candidates);
        assert!(sel.stats.looks_power_law());
        // CSR kernels are structurally excluded on power-law inputs.
        assert!(!sel.candidates.iter().any(|c| c.format.starts_with("CSR")));
        // HYB eventually amortizes its conversion (finite Eq. 4
        // break-even beyond this horizon).
        let hyb = sel.candidates.iter().find(|c| c.format == "HYB").unwrap();
        assert!(hyb.feasible, "{hyb:#?}");
        let be = hyb.break_even_vs_winner.expect("HYB amortizes eventually");
        assert!(be > 30.0, "HYB break-even {be} should exceed the horizon");
    }

    #[test]
    fn power_law_past_break_even_drops_acsr() {
        let _guard = lock();
        // Same operator, but a horizon past every conversion-heavy
        // format's break-even: ACSR's cheap preprocessing no longer
        // carries it, and a faster-per-SpMV format must win.
        let m = suite_matrix("YOT", 512);
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::for_device(dev.config())
            .with_iterations(2000)
            .with_probe_scale(512);
        let sel = AdaptiveSelector.select(&reg, &dev, &m, &budget);
        assert_ne!(sel.winner, "ACSR", "candidates: {:#?}", sel.candidates);
        let acsr = sel.candidates.iter().find(|c| c.format == "ACSR").unwrap();
        let winner = &sel.candidates[0];
        assert!(
            winner.spmv_s <= acsr.spmv_s,
            "winner {} must be at least as fast per SpMV as ACSR: {:#?}",
            sel.winner,
            sel.candidates
        );
    }

    #[test]
    fn uniform_short_rows_pick_a_padded_format() {
        let _guard = lock();
        let m = uniform(2000, 6, 97);
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        // Past ELL's ~37-iteration break-even against the zero-conversion
        // CSR upload, below the autotune threshold.
        let budget = PlanBudget::for_device(dev.config())
            .with_iterations(60)
            .with_probe_scale(64);
        let sel = AdaptiveSelector.select(&reg, &dev, &m, &budget);
        assert!(
            ["ELL", "HYB"].contains(&sel.winner.as_str()),
            "winner {} on a uniform matrix; candidates: {:#?}",
            sel.winner,
            sel.candidates
        );
        assert!(!sel.stats.looks_power_law());
    }

    #[test]
    fn selection_never_exceeds_device_budget() {
        let _guard = lock();
        let m = power_law(800, 33);
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        // At probe scale 4 this caps plans at ~2× the CSR footprint:
        // tight enough to knock out heavily padded formats, loose enough
        // that the raw layouts stay feasible (CSR ≈ nnz·12 + rows·4).
        let csr_bytes = (m.nnz() * 12 + (m.rows() + 1) * 4) as u64;
        let budget = PlanBudget {
            max_device_bytes: csr_bytes * 8,
            expected_iterations: 50,
            probe_scale: 4,
            ..Default::default()
        };
        let sel = AdaptiveSelector.select(&reg, &dev, &m, &budget);
        let full = sel.plan.device_bytes() * budget.probe_scale as u64;
        assert!(
            full <= budget.max_device_bytes,
            "selected {} at {} projected bytes > budget {}",
            sel.winner,
            full,
            budget.max_device_bytes
        );
        for c in &sel.candidates {
            if c.feasible {
                assert!(
                    c.device_bytes * budget.probe_scale as u64 <= budget.max_device_bytes,
                    "{c:#?}"
                );
            }
        }
    }

    #[test]
    fn selection_is_deterministic_across_sim_widths() {
        let _guard = lock();
        let m = power_law(700, 55);
        let dev_budget = PlanBudget::default()
            .with_iterations(200)
            .with_probe_scale(32);
        let mut outcomes: Vec<(String, Vec<(String, u64)>)> = Vec::new();
        for width in [1usize, 2, 4] {
            set_sim_threads(width);
            let dev = Device::new(presets::gtx_titan());
            let reg = FormatRegistry::<f64>::with_all();
            let sel = AdaptiveSelector.select(&reg, &dev, &m, &dev_budget);
            outcomes.push((
                sel.winner.clone(),
                sel.candidates
                    .iter()
                    .map(|c| (c.format.clone(), c.device_bytes))
                    .collect(),
            ));
        }
        set_sim_threads(0);
        for o in &outcomes[1..] {
            assert_eq!(o, &outcomes[0], "selection drifted across sim widths");
        }
    }

    #[test]
    fn record_selection_counts_decisions_and_feasibility() {
        let _guard = lock();
        let m = power_law(400, 11);
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::for_device(dev.config())
            .with_iterations(30)
            .with_probe_scale(8);
        let sel = AdaptiveSelector.select(&reg, &dev, &m, &budget);
        let tel = Telemetry::new();
        record_selection(&tel, &sel.winner, &sel.candidates);
        record_selection(&tel, &sel.winner, &sel.candidates);
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("selector.decisions"), Some(2));
        assert_eq!(
            snap.counter(&format!("selector.winner.{}", sel.winner)),
            Some(2)
        );
        assert_eq!(
            snap.counter("selector.candidates_ranked"),
            Some(2 * sel.candidates.len() as u64)
        );
        let feasible = sel.candidates.iter().filter(|c| c.feasible).count() as u64;
        let infeasible = sel.candidates.len() as u64 - feasible;
        assert_eq!(
            snap.counter("selector.infeasible"),
            if infeasible > 0 {
                Some(2 * infeasible)
            } else {
                None
            }
        );
        assert_eq!(
            snap.histogram("selector.ranked_total_s").unwrap().count(),
            2 * feasible
        );
    }

    #[test]
    fn shortlist_excludes_autotuned_formats_on_short_horizons() {
        let m = power_law(300, 7);
        let stats = m.row_stats();
        let short = AdaptiveSelector::shortlist(&stats, 10);
        assert!(
            !short.contains(&"BCCOO") && !short.contains(&"TCOO"),
            "{short:?}"
        );
        let long = AdaptiveSelector::shortlist(&stats, 100_000);
        assert!(
            long.contains(&"BCCOO") && long.contains(&"TCOO"),
            "{long:?}"
        );
    }
}
