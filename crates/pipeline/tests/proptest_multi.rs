//! Satellite invariant for the universal multi-vector contract: for
//! every format the registry can plan, `spmv_multi` over k vectors is
//! **bit-identical** to k sequential `spmv` calls. The baseline engines
//! satisfy this by construction (their `GpuSpmvMulti` impl *is* the
//! sequential loop); ACSR's fused wave kernel must preserve it because
//! each (vector, row) pair accumulates in the same order either way.

use gpu_sim::{presets, Device};
use proptest::prelude::*;
use sparse_formats::{CsrMatrix, TripletMatrix};
use spmv_kernels::{GpuSpmv, GpuSpmvMulti};
use spmv_pipeline::{FormatRegistry, PlanBudget};

fn arb_matrix() -> impl Strategy<Value = CsrMatrix<f64>> {
    (
        1usize..20,
        1usize..20,
        prop::collection::vec((0u32..20, 0u32..20, -4i32..5), 0..120),
    )
        .prop_map(|(rows, cols, entries)| {
            let mut t = TripletMatrix::with_capacity(rows, cols, entries.len());
            for (r, c, v) in entries {
                if (r as usize) < rows && (c as usize) < cols {
                    t.push_unchecked(r, c, v as f64 * 0.5);
                }
            }
            t.to_csr()
        })
}

fn arb_vectors() -> impl Strategy<Value = (usize, u64)> {
    (1usize..4, 0u64..1000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn spmv_multi_is_bit_identical_to_sequential_spmv(
        m in arb_matrix(),
        (k, seed) in arb_vectors(),
    ) {
        let dev = Device::new(presets::gtx_titan());
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::default();
        let xs: Vec<Vec<f64>> = (0..k)
            .map(|v| {
                (0..m.cols())
                    .map(|i| 0.25 + ((seed as usize + v * 13 + i * 7) % 11) as f64 * 0.125)
                    .collect()
            })
            .collect();
        for name in reg.names() {
            let plan = reg.plan(name, &dev, &m, &budget).unwrap();
            let xds: Vec<_> = xs.iter().map(|x| dev.alloc(x.clone())).collect();
            let xrefs: Vec<_> = xds.iter().collect();

            let fused: Vec<_> = (0..k).map(|_| dev.alloc_zeroed::<f64>(m.rows())).collect();
            let frefs: Vec<_> = fused.iter().collect();
            plan.spmv_multi(&dev, &xrefs, &frefs);

            for (v, fd) in fused.iter().enumerate() {
                let yd = dev.alloc_zeroed::<f64>(m.rows());
                plan.spmv(&dev, &xds[v], &yd);
                let seq = yd.into_vec();
                let multi = fd.as_slice();
                for (r, (a, b)) in multi.iter().zip(&seq).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{}: vector {} row {} diverged ({} vs {})",
                        name, v, r, a, b
                    );
                }
            }
        }
    }
}
