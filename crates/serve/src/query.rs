//! Queries and per-query outcomes.

use serde::{Deserialize, Serialize};

/// One personalized random-walk-with-restart query: "relevance of every
/// node to `seed`", the per-user question a PPR service answers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Caller-assigned id (stable across scheduling).
    pub id: u64,
    /// Seed node of the walk.
    pub seed: usize,
    /// Restart probability `c` (paper Eq. 8; 0.85 in the experiments).
    pub restart_c: f64,
    /// Arrival time on the model clock, seconds.
    pub arrival_s: f64,
    /// Owning tenant (priority class / fair-share bucket). Tenant 0 is
    /// the default class; see [`crate::tenant::TenantTable`].
    pub tenant: u32,
}

/// A finished query with its full latency accounting. All timestamps are
/// on the serving engine's virtual model clock.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryOutcome<T> {
    /// The query's id.
    pub id: u64,
    /// Seed node.
    pub seed: usize,
    /// Arrival time.
    pub arrival_s: f64,
    /// Time the scheduler admitted it into a batch (>= arrival).
    pub admitted_s: f64,
    /// Time its last wave finished (convergence or iteration cap).
    pub completed_s: f64,
    /// RWR iterations (== waves it rode in).
    pub iterations: usize,
    /// Whether it converged below epsilon (vs. hitting `max_iters`).
    pub converged: bool,
    /// Final relevance vector, when the engine keeps scores.
    pub scores: Option<Vec<T>>,
}

impl<T> QueryOutcome<T> {
    /// Admission-to-convergence latency (what the client observes).
    pub fn latency_s(&self) -> f64 {
        self.completed_s - self.arrival_s
    }

    /// Time spent waiting in the submission queue.
    pub fn queue_wait_s(&self) -> f64 {
        self.admitted_s - self.arrival_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_decomposes_into_wait_plus_service() {
        let o = QueryOutcome::<f64> {
            id: 1,
            seed: 0,
            arrival_s: 1.0,
            admitted_s: 1.5,
            completed_s: 4.0,
            iterations: 10,
            converged: true,
            scores: None,
        };
        assert_eq!(o.latency_s(), 3.0);
        assert_eq!(o.queue_wait_s(), 0.5);
        assert!(o.latency_s() >= o.queue_wait_s());
    }
}
