//! Per-tenant priority classes and fair-share admission.
//!
//! A production front-end serves several classes of traffic against one
//! graph: interactive user queries with tight latency SLOs, standard
//! API traffic, and bulk/batch crawls that should soak up leftover
//! capacity without starving anyone. Each [`TenantSpec`] carries the
//! three knobs admission needs:
//!
//! * **priority** — strict admission tiers (lower = more urgent). A
//!   waiting query of a better tier is always admitted before any
//!   worse-tier waiter.
//! * **share** — weighted fair-share *within* a tier: admissions are
//!   balanced so each tenant's admitted count stays proportional to its
//!   share (deficit comparison by exact integer cross-multiplication —
//!   no float drift, bit-reproducible).
//! * **slo_s** — the tenant's end-to-end latency budget. Deadline-based
//!   shedding drops a query whose queue wait alone has already consumed
//!   the whole budget, *before* it burns a batch slot it can no longer
//!   use (see [`crate::slo`]).

use crate::query::Query;
use std::cmp::Ordering;

/// Admission parameters of one tenant (priority class).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantSpec {
    /// Tenant id carried by [`Query::tenant`].
    pub tenant: u32,
    /// Strict admission tier; lower is more urgent.
    pub priority: u8,
    /// Fair-share weight within the tier (integer, so deficit
    /// comparisons are exact). Must be ≥ 1.
    pub share: u32,
    /// End-to-end latency budget, seconds. `f64::INFINITY` disables
    /// deadline shedding for this tenant.
    pub slo_s: f64,
}

impl TenantSpec {
    /// A single default class: priority 0, share 1, the given budget.
    pub fn default_class(slo_s: f64) -> TenantSpec {
        TenantSpec {
            tenant: 0,
            priority: 0,
            share: 1,
            slo_s,
        }
    }
}

/// The tenant registry an engine serves with. Unknown tenant ids fall
/// back to the first (default) spec, so single-tenant streams need no
/// setup.
#[derive(Clone, Debug)]
pub struct TenantTable {
    specs: Vec<TenantSpec>,
}

impl TenantTable {
    /// A table of explicit specs; the first entry doubles as the
    /// fallback for unknown tenant ids.
    pub fn new(specs: Vec<TenantSpec>) -> TenantTable {
        assert!(!specs.is_empty(), "need at least one tenant spec");
        assert!(
            specs.iter().all(|s| s.share >= 1),
            "tenant shares must be at least 1"
        );
        TenantTable { specs }
    }

    /// One default class with the given SLO budget.
    pub fn single(slo_s: f64) -> TenantTable {
        TenantTable::new(vec![TenantSpec::default_class(slo_s)])
    }

    /// Spec for `tenant`, falling back to the first entry.
    pub fn spec(&self, tenant: u32) -> &TenantSpec {
        self.specs
            .iter()
            .find(|s| s.tenant == tenant)
            .unwrap_or(&self.specs[0])
    }

    /// All registered specs.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }
}

/// Running fair-share state: admitted counts per tenant, compared as
/// exact deficits.
#[derive(Clone, Debug, Default)]
pub struct FairShare {
    /// `(tenant, admitted)` pairs, insertion-ordered (tiny).
    admitted: Vec<(u32, u64)>,
}

impl FairShare {
    /// Admitted count for `tenant`.
    fn count(&self, tenant: u32) -> u64 {
        self.admitted
            .iter()
            .find(|(t, _)| *t == tenant)
            .map_or(0, |(_, n)| *n)
    }

    /// Record one admission for `tenant`.
    pub fn record(&mut self, tenant: u32) {
        match self.admitted.iter_mut().find(|(t, _)| *t == tenant) {
            Some((_, n)) => *n += 1,
            None => self.admitted.push((tenant, 1)),
        }
    }

    /// Admission order between two waiting queries: strict priority
    /// first, then the smaller weighted deficit `admitted / share`
    /// (compared exactly as `admitted_a · share_b` vs
    /// `admitted_b · share_a`), ties to the caller (FIFO in
    /// [`crate::queue::SubmissionQueue::pop_min_by`]).
    pub fn order(&self, table: &TenantTable, a: &Query, b: &Query) -> Ordering {
        let sa = table.spec(a.tenant);
        let sb = table.spec(b.tenant);
        sa.priority.cmp(&sb.priority).then_with(|| {
            let da = self.count(a.tenant) as u128 * sb.share as u128;
            let db = self.count(b.tenant) as u128 * sa.share as u128;
            da.cmp(&db)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(tenant: u32) -> Query {
        Query {
            id: tenant as u64,
            seed: 0,
            restart_c: 0.85,
            arrival_s: 0.0,
            tenant,
        }
    }

    #[test]
    fn unknown_tenants_fall_back_to_default() {
        let t = TenantTable::single(0.5);
        assert_eq!(t.spec(0).slo_s, 0.5);
        assert_eq!(t.spec(42).slo_s, 0.5);
    }

    #[test]
    fn priority_dominates_deficit() {
        let table = TenantTable::new(vec![
            TenantSpec {
                tenant: 0,
                priority: 1,
                share: 100,
                slo_s: 1.0,
            },
            TenantSpec {
                tenant: 1,
                priority: 0,
                share: 1,
                slo_s: 1.0,
            },
        ]);
        let mut fair = FairShare::default();
        // even after many tenant-1 admissions, its better tier wins
        for _ in 0..50 {
            fair.record(1);
        }
        assert_eq!(fair.order(&table, &q(1), &q(0)), Ordering::Less);
    }

    #[test]
    fn shares_balance_admissions_three_to_one() {
        let table = TenantTable::new(vec![
            TenantSpec {
                tenant: 0,
                priority: 0,
                share: 3,
                slo_s: 1.0,
            },
            TenantSpec {
                tenant: 1,
                priority: 0,
                share: 1,
                slo_s: 1.0,
            },
        ]);
        let mut fair = FairShare::default();
        let mut admitted = [0usize; 2];
        // both tenants always have waiters; admit 40 times
        for _ in 0..40 {
            let pick = match fair.order(&table, &q(0), &q(1)) {
                Ordering::Greater => 1u32,
                _ => 0u32, // ties go to the first-offered (FIFO) waiter
            };
            fair.record(pick);
            admitted[pick as usize] += 1;
        }
        assert_eq!(admitted, [30, 10], "3:1 shares admit 3:1");
    }
}
