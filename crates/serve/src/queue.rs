//! Bounded submission queue.

use crate::query::Query;
use std::collections::VecDeque;

/// FIFO admission queue with a hard capacity: arrivals beyond capacity
/// are rejected (load shedding) rather than buffered without bound, so
/// tail latency under overload stays interpretable.
#[derive(Debug)]
pub struct SubmissionQueue {
    pending: VecDeque<Query>,
    capacity: usize,
    rejected: Vec<u64>,
}

impl SubmissionQueue {
    /// An empty queue holding at most `capacity` waiting queries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        SubmissionQueue {
            pending: VecDeque::new(),
            capacity,
            rejected: Vec::new(),
        }
    }

    /// Try to enqueue `q`; returns `false` (and records the rejection)
    /// when the queue is full.
    pub fn offer(&mut self, q: Query) -> bool {
        if self.pending.len() >= self.capacity {
            self.rejected.push(q.id);
            return false;
        }
        self.pending.push_back(q);
        true
    }

    /// Pop the oldest waiting query.
    pub fn pop(&mut self) -> Option<Query> {
        self.pending.pop_front()
    }

    /// Queries currently waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Ids of queries shed because the queue was full, in arrival order.
    pub fn rejected(&self) -> &[u64] {
        &self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64) -> Query {
        Query {
            id,
            seed: 0,
            restart_c: 0.85,
            arrival_s: id as f64,
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut sq = SubmissionQueue::new(4);
        for id in 0..4 {
            assert!(sq.offer(q(id)));
        }
        for id in 0..4 {
            assert_eq!(sq.pop().unwrap().id, id);
        }
        assert!(sq.pop().is_none());
    }

    #[test]
    fn overflow_is_rejected_and_recorded() {
        let mut sq = SubmissionQueue::new(2);
        assert!(sq.offer(q(0)));
        assert!(sq.offer(q(1)));
        assert!(!sq.offer(q(2)));
        assert!(!sq.offer(q(3)));
        assert_eq!(sq.rejected(), &[2, 3]);
        // draining makes room again
        sq.pop();
        assert!(sq.offer(q(4)));
        assert_eq!(sq.len(), 2);
    }
}
