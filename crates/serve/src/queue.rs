//! Bounded submission queue.

use crate::query::Query;
use std::cmp::Ordering;
use std::collections::VecDeque;

/// FIFO admission queue with a hard capacity: arrivals beyond capacity
/// are rejected (load shedding) rather than buffered without bound, so
/// tail latency under overload stays interpretable.
///
/// Shedding is decided at **offer time against the occupancy at that
/// instant** — the caller offers each arrival at its true arrival time,
/// so a query is never rejected against a backlog that had already
/// drained (or not yet built up) when it actually arrived.
#[derive(Debug)]
pub struct SubmissionQueue {
    pending: VecDeque<Query>,
    capacity: usize,
    rejected: Vec<u64>,
}

impl SubmissionQueue {
    /// An empty queue holding at most `capacity` waiting queries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        SubmissionQueue {
            pending: VecDeque::new(),
            capacity,
            rejected: Vec::new(),
        }
    }

    /// Try to enqueue `q`; returns `false` (and records the rejection)
    /// when the queue is full.
    pub fn offer(&mut self, q: Query) -> bool {
        if self.pending.len() >= self.capacity {
            self.rejected.push(q.id);
            return false;
        }
        self.pending.push_back(q);
        true
    }

    /// Pop the oldest waiting query.
    pub fn pop(&mut self) -> Option<Query> {
        self.pending.pop_front()
    }

    /// Pop the waiting query that minimizes `cmp` (the fair-share /
    /// priority admission hook). Ties resolve to the oldest waiter, so
    /// a constant comparator degenerates to FIFO [`Self::pop`].
    pub fn pop_min_by(&mut self, mut cmp: impl FnMut(&Query, &Query) -> Ordering) -> Option<Query> {
        let mut best = 0usize;
        for i in 1..self.pending.len() {
            if cmp(&self.pending[i], &self.pending[best]) == Ordering::Less {
                best = i;
            }
        }
        self.pending.remove(best)
    }

    /// Queries currently waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Hard capacity the queue sheds beyond.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ids of queries shed because the queue was full, in arrival order.
    pub fn rejected(&self) -> &[u64] {
        &self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64) -> Query {
        Query {
            id,
            seed: 0,
            restart_c: 0.85,
            arrival_s: id as f64,
            tenant: 0,
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut sq = SubmissionQueue::new(4);
        for id in 0..4 {
            assert!(sq.offer(q(id)));
        }
        for id in 0..4 {
            assert_eq!(sq.pop().unwrap().id, id);
        }
        assert!(sq.pop().is_none());
    }

    #[test]
    fn overflow_is_rejected_and_recorded() {
        let mut sq = SubmissionQueue::new(2);
        assert!(sq.offer(q(0)));
        assert!(sq.offer(q(1)));
        assert!(!sq.offer(q(2)));
        assert!(!sq.offer(q(3)));
        assert_eq!(sq.rejected(), &[2, 3]);
        // draining makes room again
        sq.pop();
        assert!(sq.offer(q(4)));
        assert_eq!(sq.len(), 2);
    }

    /// Shed decisions must track the occupancy at each offer, not a
    /// batch boundary: interleaving offers and pops, every offer
    /// succeeds exactly when the queue has space *at that instant*.
    #[test]
    fn interleaved_offer_pop_sheds_by_instantaneous_occupancy() {
        let mut sq = SubmissionQueue::new(2);
        assert!(sq.offer(q(0)));
        assert!(sq.offer(q(1)));
        assert!(!sq.offer(q(2))); // full: shed
        assert_eq!(sq.pop().unwrap().id, 0); // drains one place
        assert!(sq.offer(q(3))); // space again: admitted
        assert!(!sq.offer(q(4))); // full again: shed
        assert_eq!(sq.pop().unwrap().id, 1);
        assert_eq!(sq.pop().unwrap().id, 3);
        assert!(sq.offer(q(5))); // empty queue admits
        assert_eq!(sq.rejected(), &[2, 4]);
        assert_eq!(sq.len(), 1);
    }

    #[test]
    fn pop_min_by_selects_and_breaks_ties_fifo() {
        let mut sq = SubmissionQueue::new(8);
        for id in [5u64, 3, 7, 3] {
            // ids 5,3,7,3 — two waiters share the minimum key
            sq.offer(Query {
                id,
                seed: 0,
                restart_c: 0.85,
                arrival_s: 0.0,
                tenant: 0,
            });
        }
        // min by id: picks 3, and of the two 3s the *older* one
        let got = sq.pop_min_by(|a, b| a.id.cmp(&b.id)).unwrap();
        assert_eq!(got.id, 3);
        assert_eq!(sq.len(), 3);
        // remaining order preserved for the rest
        assert_eq!(sq.pop().unwrap().id, 5);
        assert_eq!(sq.pop_min_by(|a, b| a.id.cmp(&b.id)).unwrap().id, 3);
        assert_eq!(sq.pop().unwrap().id, 7);
        // constant comparator == FIFO
        sq.offer(q(9));
        sq.offer(q(10));
        assert_eq!(sq.pop_min_by(|_, _| Ordering::Equal).unwrap().id, 9);
    }

    #[test]
    fn pop_min_by_on_empty_is_none() {
        let mut sq = SubmissionQueue::new(2);
        assert!(sq.pop_min_by(|a, b| a.id.cmp(&b.id)).is_none());
    }
}
