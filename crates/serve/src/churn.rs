//! Serving concurrent with graph churn on one virtual clock.
//!
//! The scheduler in [`crate::scheduler`] serves a *static* operator. A
//! streaming deployment interleaves two workloads on the same device:
//! query waves, and maintenance batches that mutate the operator between
//! waves. This module models that contention: a [`ChurnSource`] owns the
//! live operator and a timetable of maintenance events; the serving loop
//! applies every event that has come due **before forming each wave**
//! (maintenance preempts admission, never an in-flight wave), charges its
//! modeled seconds to the shared clock, and then runs the wave against
//! the freshly maintained operator. Query latency therefore includes
//! time spent stalled behind maintenance — exactly the p99 degradation a
//! streaming deployment has to budget for.

use crate::latency::LatencyStats;
use crate::query::Query;
use gpu_sim::{Device, DeviceBuffer, RunReport};
use graph_apps::rwr::rwr_update_multi;
use sparse_formats::Scalar;
use spmv_kernels::GpuSpmvMulti;

/// A live operator plus its maintenance timetable.
///
/// `apply_next` is only called when `next_event_s()` returned a time at
/// or before the serving clock; it applies the due event and returns the
/// modeled seconds the maintenance occupied the device.
pub trait ChurnSource<T: Scalar> {
    /// The operator queries run against (reflects all applied events).
    fn operator(&self) -> &dyn GpuSpmvMulti<T>;
    /// Virtual time of the next pending maintenance event, if any.
    fn next_event_s(&self) -> Option<f64>;
    /// Apply the next pending event; returns modeled seconds spent.
    fn apply_next(&mut self, dev: &Device) -> f64;
}

/// A [`ChurnSource`] with no events: the no-churn baseline, so the same
/// serving loop (same wave model, same clock accounting) produces the
/// comparison run.
pub struct SteadyOperator<'a, T: Scalar> {
    op: &'a dyn GpuSpmvMulti<T>,
}

impl<'a, T: Scalar> SteadyOperator<'a, T> {
    pub fn new(op: &'a dyn GpuSpmvMulti<T>) -> Self {
        SteadyOperator { op }
    }
}

impl<T: Scalar> ChurnSource<T> for SteadyOperator<'_, T> {
    fn operator(&self) -> &dyn GpuSpmvMulti<T> {
        self.op
    }
    fn next_event_s(&self) -> Option<f64> {
        None
    }
    fn apply_next(&mut self, _dev: &Device) -> f64 {
        unreachable!("SteadyOperator has no maintenance events")
    }
}

/// Configuration for [`serve_with_churn`].
#[derive(Clone, Copy, Debug)]
pub struct ChurnServeConfig {
    /// Maximum queries per wave.
    pub max_batch: usize,
    /// Fixed RWR iterations per query (deterministic latency model).
    pub iterations: usize,
}

impl Default for ChurnServeConfig {
    fn default() -> Self {
        ChurnServeConfig {
            max_batch: 16,
            iterations: 10,
        }
    }
}

/// Result of one churn-concurrent serving run.
#[derive(Clone, Debug)]
pub struct ChurnServeReport {
    /// Queries completed (all offered queries complete — no shedding in
    /// this model; contention shows up as latency, not loss).
    pub completed: usize,
    /// Maintenance events applied during the run.
    pub maintenance_events: usize,
    /// Modeled seconds the device spent on maintenance.
    pub maintenance_seconds: f64,
    /// Clock at the last completion.
    pub makespan_s: f64,
    /// Waves executed.
    pub waves: usize,
    /// Arrival-to-completion latency summary.
    pub latency: LatencyStats,
    /// Accumulated wave kernel accounting.
    pub device_report: RunReport,
}

struct ActiveQ<T> {
    q: Query,
    iters: usize,
    r: DeviceBuffer<T>,
}

/// Serve `queries` (fixed-iteration RWR) while `source`'s maintenance
/// events contend for the same device. Events due at wave-formation time
/// are applied first — in timetable order — and their modeled cost
/// advances the clock before the wave runs.
pub fn serve_with_churn<T: Scalar>(
    dev: &Device,
    source: &mut dyn ChurnSource<T>,
    queries: &[Query],
    cfg: &ChurnServeConfig,
) -> ChurnServeReport {
    assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
    assert!(cfg.iterations >= 1, "need at least one iteration");
    let mut stream: Vec<Query> = queries.to_vec();
    stream.sort_by(|a, b| {
        a.arrival_s
            .partial_cmp(&b.arrival_s)
            .expect("arrival times must not be NaN")
            .then(a.id.cmp(&b.id))
    });
    let n = source.operator().rows();
    for q in &stream {
        assert!(q.seed < n, "query {} seed out of range", q.id);
    }

    let mut clock = 0.0f64;
    let mut next_arrival = 0usize;
    let mut active: Vec<ActiveQ<T>> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut device_report = RunReport::default();
    let mut waves = 0usize;
    let mut maintenance_events = 0usize;
    let mut maintenance_seconds = 0.0f64;
    let mut makespan = 0.0f64;

    loop {
        // 1. Maintenance first: apply every event due by `clock`.
        while let Some(t) = source.next_event_s() {
            if t > clock {
                break;
            }
            let spent = source.apply_next(dev);
            maintenance_events += 1;
            maintenance_seconds += spent;
            clock += spent;
        }

        // 2. Admit due arrivals into free wave slots (FIFO).
        while active.len() < cfg.max_batch
            && next_arrival < stream.len()
            && stream[next_arrival].arrival_s <= clock
        {
            let q = stream[next_arrival];
            next_arrival += 1;
            let mut e = vec![T::ZERO; n];
            e[q.seed] = T::ONE;
            active.push(ActiveQ {
                q,
                iters: 0,
                r: dev.alloc(e),
            });
        }

        if active.is_empty() {
            if next_arrival >= stream.len() {
                break; // all queries served; trailing events don't matter
            }
            // Idle until the next arrival — but churn keeps running, so
            // jump only as far as the next event if one comes first.
            let next_t = stream[next_arrival].arrival_s;
            clock = match source.next_event_s() {
                Some(ev) if ev < next_t => ev.max(clock),
                _ => next_t.max(clock),
            };
            continue;
        }

        // 3. One batched RWR iteration for the wave.
        waves += 1;
        let ys: Vec<DeviceBuffer<T>> = (0..active.len())
            .map(|_| dev.alloc_zeroed::<T>(n))
            .collect();
        let xs_ref: Vec<&DeviceBuffer<T>> = active.iter().map(|a| &a.r).collect();
        let ys_ref: Vec<&DeviceBuffer<T>> = ys.iter().collect();
        let spmv = source.operator().spmv_multi(dev, &xs_ref, &ys_ref);
        let next_r: Vec<DeviceBuffer<T>> = (0..active.len())
            .map(|_| dev.alloc_zeroed::<T>(n))
            .collect();
        let c: Vec<T> = active.iter().map(|a| T::from_f64(a.q.restart_c)).collect();
        let restart: Vec<T> = active
            .iter()
            .map(|a| T::from_f64(1.0 - a.q.restart_c))
            .collect();
        let seeds: Vec<Option<usize>> = active.iter().map(|a| Some(a.q.seed)).collect();
        let next_ref: Vec<&DeviceBuffer<T>> = next_r.iter().collect();
        let upd = rwr_update_multi(dev, &ys_ref, &c, &restart, &seeds, &next_ref);
        clock += spmv.time_s + upd.time_s;
        device_report = device_report.then(&spmv).then(&upd);

        // 4. Retire finished queries.
        let mut next_iter = next_r.into_iter();
        let mut kept: Vec<ActiveQ<T>> = Vec::with_capacity(active.len());
        for mut a in active {
            a.r = next_iter.next().expect("one iterate per active query");
            a.iters += 1;
            if a.iters >= cfg.iterations {
                latencies.push(clock - a.q.arrival_s);
                makespan = clock;
            } else {
                kept.push(a);
            }
        }
        active = kept;
    }

    ChurnServeReport {
        completed: latencies.len(),
        maintenance_events,
        maintenance_seconds,
        makespan_s: makespan,
        waves,
        latency: LatencyStats::from_samples(&latencies),
        device_report,
    }
}
