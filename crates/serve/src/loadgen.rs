//! Closed-loop synthetic load generation.
//!
//! Produces a deterministic, seeded stream of RWR queries with either
//! Poisson (memoryless) or bursty arrivals, so serving experiments are
//! reproducible end to end: same seed, same queries, same timeline.

use crate::query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arrival process of the synthetic query stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalPattern {
    /// Memoryless arrivals: exponential inter-arrival gaps with the
    /// given mean rate.
    Poisson {
        /// Mean arrival rate, queries per second.
        rate_qps: f64,
    },
    /// Clumped arrivals: bursts of `burst` simultaneous queries, with
    /// burst epochs spaced so the *mean* rate is still `rate_qps`.
    Bursty {
        /// Mean arrival rate, queries per second.
        rate_qps: f64,
        /// Queries per burst.
        burst: usize,
    },
}

/// Generate `n` queries against a graph of `n_nodes` nodes, sorted by
/// arrival time. Seeds are uniform over the nodes; every query uses the
/// same restart probability `restart_c` (the paper's RWR setting).
pub fn generate_queries(
    pattern: ArrivalPattern,
    n: usize,
    n_nodes: usize,
    restart_c: f64,
    rng_seed: u64,
) -> Vec<Query> {
    assert!(n_nodes >= 1, "need a non-empty graph");
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut queries = Vec::with_capacity(n);
    let mut clock = 0.0f64;
    match pattern {
        ArrivalPattern::Poisson { rate_qps } => {
            assert!(rate_qps > 0.0, "rate must be positive");
            for id in 0..n as u64 {
                // inverse-CDF exponential gap; 1-u keeps ln's argument
                // in (0, 1]
                let u: f64 = rng.random();
                clock += -(1.0 - u).ln() / rate_qps;
                queries.push(Query {
                    id,
                    seed: rng.random_range(0..n_nodes),
                    restart_c,
                    arrival_s: clock,
                });
            }
        }
        ArrivalPattern::Bursty { rate_qps, burst } => {
            assert!(rate_qps > 0.0, "rate must be positive");
            assert!(burst >= 1, "burst size must be at least 1");
            let epoch_gap = burst as f64 / rate_qps;
            for id in 0..n as u64 {
                if id > 0 && id % burst as u64 == 0 {
                    clock += epoch_gap;
                }
                queries.push(Query {
                    id,
                    seed: rng.random_range(0..n_nodes),
                    restart_c,
                    arrival_s: clock,
                });
            }
        }
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_stream_is_sorted_seeded_and_rate_accurate() {
        let qs = generate_queries(
            ArrivalPattern::Poisson { rate_qps: 100.0 },
            2000,
            50,
            0.85,
            7,
        );
        assert_eq!(qs.len(), 2000);
        assert!(qs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(qs.iter().all(|q| q.seed < 50));
        // empirical rate within 10% of nominal at this sample size
        let rate = qs.len() as f64 / qs.last().unwrap().arrival_s;
        assert!((90.0..110.0).contains(&rate), "empirical rate {rate}");
        // same seed, same stream
        let again = generate_queries(
            ArrivalPattern::Poisson { rate_qps: 100.0 },
            2000,
            50,
            0.85,
            7,
        );
        assert_eq!(qs, again);
        // different seed, different stream
        let other = generate_queries(
            ArrivalPattern::Poisson { rate_qps: 100.0 },
            2000,
            50,
            0.85,
            8,
        );
        assert_ne!(qs, other);
    }

    #[test]
    fn bursty_stream_clumps_at_epochs() {
        let qs = generate_queries(
            ArrivalPattern::Bursty {
                rate_qps: 100.0,
                burst: 4,
            },
            12,
            10,
            0.85,
            3,
        );
        // 3 epochs of 4 simultaneous queries, 0.04 s apart
        for chunk in qs.chunks(4) {
            assert!(chunk.iter().all(|q| q.arrival_s == chunk[0].arrival_s));
        }
        assert!((qs[4].arrival_s - qs[0].arrival_s - 0.04).abs() < 1e-12);
        assert!((qs[8].arrival_s - qs[4].arrival_s - 0.04).abs() < 1e-12);
    }
}
