//! Latency accounting: percentile summaries of completed queries.
//!
//! The nearest-rank quantile itself lives in
//! [`acsr_telemetry::nearest_rank`] — one implementation shared with the
//! telemetry histograms, so the report path and the metrics path cannot
//! drift apart.

use acsr_telemetry::nearest_rank;
use serde::{Deserialize, Serialize};

/// Percentile/mean summary of a set of latencies (seconds).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples summarized.
    pub count: usize,
    /// Median (nearest-rank).
    pub p50_s: f64,
    /// 95th percentile (nearest-rank).
    pub p95_s: f64,
    /// 99th percentile (nearest-rank).
    pub p99_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Worst observed latency.
    pub max_s: f64,
}

impl LatencyStats {
    /// Summarize `samples` (order irrelevant). Empty input yields the
    /// all-zero summary.
    pub fn from_samples(samples: &[f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies must not be NaN"));
        let n = sorted.len();
        let rank = |p: f64| nearest_rank(&sorted, p);
        LatencyStats {
            count: n,
            p50_s: rank(0.50),
            p95_s: rank(0.95),
            p99_s: rank(0.99),
            mean_s: sorted.iter().sum::<f64>() / n as f64,
            max_s: sorted[n - 1],
        }
    }
}

/// Number of samples at or below `target` (SLO "met" count).
pub fn count_within(samples: &[f64], target: f64) -> usize {
    samples.iter().filter(|&&s| s <= target).count()
}

/// Fraction of samples at or below `target`; an empty set vacuously
/// attains 1.0 (never NaN).
pub fn fraction_within(samples: &[f64], target: f64) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    count_within(samples, target) as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        // 1..=100 in shuffled order: p50 = 50, p95 = 95, p99 = 99
        let samples: Vec<f64> = (1..=100).rev().map(|v| v as f64).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_and_empty_are_degenerate() {
        let one = LatencyStats::from_samples(&[2.5]);
        assert_eq!(one.p50_s, 2.5);
        assert_eq!(one.p99_s, 2.5);
        assert_eq!(one.max_s, 2.5);
        let none = LatencyStats::from_samples(&[]);
        assert_eq!(none.count, 0);
        assert_eq!(none.max_s, 0.0);
    }

    #[test]
    fn within_counts_and_fractions() {
        let samples = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(count_within(&samples, 0.25), 2);
        assert_eq!(count_within(&samples, 0.4), 4, "boundary is inclusive");
        assert_eq!(count_within(&samples, 0.05), 0);
        assert_eq!(fraction_within(&samples, 0.25), 0.5);
        assert_eq!(fraction_within(&[], 1.0), 1.0, "vacuous attainment");
        assert!(fraction_within(&samples, 0.0).is_finite());
    }
}
