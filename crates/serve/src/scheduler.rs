//! Continuous-batching RWR scheduler over multi-vector ACSR.
//!
//! Queries are admitted from a bounded [`SubmissionQueue`] into one
//! shared *wave*: every wave runs one RWR iteration for every active
//! query as a single batched SpMM (`spmv_multi`) plus one batched
//! update kernel per device. Converged queries retire at the end of a
//! wave and their batch slots are refilled from the queue — continuous
//! batching, not gang scheduling.
//!
//! Two invariants make the modeled numbers trustworthy:
//!
//! 1. **Batch independence** — per vector, the batched kernels execute
//!    exactly the single-vector float-op sequence, so a query's
//!    trajectory (scores *and* iteration count) is bit-identical no
//!    matter which queries it is co-batched with or what `max_batch`
//!    is. Batching changes *when* a query runs, never *what* it
//!    computes.
//! 2. **Device-count independence** — rows are partitioned with
//!    [`multi_gpu::partition_rows_by_bins`]; a row keeps its bin (and
//!    its per-row accumulation order) in the device-local sub-matrix,
//!    so results are bit-identical across device counts too.
//!
//! Both are pinned by proptests in `tests/proptest_serve.rs`.

use crate::latency::LatencyStats;
use crate::loadgen::{generate_queries, ArrivalPattern};
use crate::query::{Query, QueryOutcome};
use crate::queue::SubmissionQueue;
use acsr::AcsrConfig;
use gpu_sim::trace::TraceLedger;
use gpu_sim::{presets, Device, DeviceConfig, RunReport};
use graph_apps::rwr::{rwr_operator, rwr_update_multi};
use graph_apps::IterParams;
use multi_gpu::{extract_rows, partition_rows_by_bins};
use sparse_formats::{CsrMatrix, Scalar};
use spmv_kernels::GpuSpmvMulti;
use spmv_pipeline::{AcsrPlanner, FormatRegistry, PlanBudget, SpmvPlan};
use std::sync::Arc;

/// Serving-engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum queries per wave (the SpMM batch width `k`).
    pub max_batch: usize,
    /// Submission-queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Simulated devices to spread each wave across.
    pub n_devices: usize,
    /// Per-query RWR iteration limits.
    pub iter: IterParams,
    /// Registry format the per-device plans are built with. ACSR (the
    /// default) is the only format with a *fused* multi-vector wave;
    /// every other registry format is servable through the sequential
    /// [`GpuSpmvMulti`] fallback.
    pub format: &'static str,
    /// ACSR configuration for the per-device engines (used when
    /// `format` is "ACSR").
    pub acsr: AcsrConfig,
    /// Simulated device model.
    pub device: DeviceConfig,
    /// Keep each query's final relevance vector in its outcome.
    pub keep_scores: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            queue_capacity: 64,
            n_devices: 1,
            iter: IterParams::default(),
            format: "ACSR",
            acsr: AcsrConfig::static_long_tail(),
            device: presets::gtx_titan(),
            keep_scores: false,
        }
    }
}

/// A query currently riding in the wave.
struct Active<T> {
    q: Query,
    admitted_s: f64,
    iterations: usize,
    /// Current global relevance iterate (host copy between waves).
    r: Vec<T>,
}

/// Result of serving one query stream.
#[derive(Clone, Debug)]
pub struct ServeReport<T> {
    /// Completed queries, in retirement order.
    pub outcomes: Vec<QueryOutcome<T>>,
    /// Ids shed because the submission queue was full.
    pub rejected: Vec<u64>,
    /// Virtual-clock span from start to the last retirement, seconds.
    pub makespan_s: f64,
    /// Batched iteration waves executed.
    pub waves: usize,
    /// Accumulated per-device kernel/transfer accounting.
    pub device_reports: Vec<RunReport>,
    /// Non-zeros of the serving operator (for GFLOPS accounting).
    pub nnz: usize,
}

impl<T> ServeReport<T> {
    /// Completed queries per virtual second.
    pub fn throughput_qps(&self) -> f64 {
        self.outcomes.len() as f64 / self.makespan_s
    }

    /// Total RWR iterations executed across all completed queries.
    pub fn total_iterations(&self) -> usize {
        self.outcomes.iter().map(|o| o.iterations).sum()
    }

    /// Useful SpMV throughput: 2·nnz flops per query iteration over the
    /// makespan.
    pub fn gflops(&self) -> f64 {
        (2 * self.nnz * self.total_iterations()) as f64 / self.makespan_s / 1e9
    }

    /// Arrival-to-completion latency summary.
    pub fn latency_stats(&self) -> LatencyStats {
        let samples: Vec<f64> = self.outcomes.iter().map(|o| o.latency_s()).collect();
        LatencyStats::from_samples(&samples)
    }

    /// Queue-wait summary (arrival to admission).
    pub fn queue_wait_stats(&self) -> LatencyStats {
        let samples: Vec<f64> = self.outcomes.iter().map(|o| o.queue_wait_s()).collect();
        LatencyStats::from_samples(&samples)
    }

    /// Mean iterations per completed query.
    pub fn mean_iterations(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.total_iterations() as f64 / self.outcomes.len() as f64
    }
}

/// A multi-device RWR/PPR serving engine over one graph.
pub struct ServeEngine<T: Scalar> {
    devices: Vec<Device>,
    plans: Vec<SpmvPlan<T>>,
    /// `row_maps[d][local] = global`.
    row_maps: Vec<Vec<u32>>,
    /// `local_of[d][global] = local`, `u32::MAX` when `d` does not own
    /// the row.
    local_of: Vec<Vec<u32>>,
    rows: usize,
    nnz: usize,
    config: ServeConfig,
    /// Device barrier + hand-off cost charged once per multi-device
    /// wave, seconds.
    pub sync_overhead_s: f64,
}

impl<T: Scalar> ServeEngine<T> {
    /// Build a serving engine for `adjacency` (square, unnormalized).
    /// The RWR operator (column-normalized adjacency) is partitioned
    /// across `config.n_devices` simulated devices by bin.
    pub fn new(adjacency: &CsrMatrix<T>, config: ServeConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.n_devices >= 1, "need at least one device");
        let w = rwr_operator(adjacency);
        let parts = partition_rows_by_bins(&w, config.n_devices);
        let mut reg = FormatRegistry::<T>::with_all();
        reg.register(Box::new(AcsrPlanner::with_config(config.acsr)));
        let mut devices = Vec::with_capacity(parts.len());
        let mut plans = Vec::with_capacity(parts.len());
        let mut row_maps = Vec::with_capacity(parts.len());
        let mut local_of = Vec::with_capacity(parts.len());
        for part in parts {
            let mut cfg = config.device.clone();
            if config.n_devices > 1 {
                cfg.name = format!("{} #{}", cfg.name, part.device);
            }
            let dev = Device::new(cfg);
            let sub = extract_rows(&w, &part.rows);
            let budget = PlanBudget::for_device(dev.config());
            plans.push(
                reg.plan(config.format, &dev, &sub, &budget)
                    .expect("serving plan must fit the device"),
            );
            devices.push(dev);
            let mut lookup = vec![u32::MAX; w.rows()];
            for (local, &global) in part.rows.iter().enumerate() {
                lookup[global as usize] = local as u32;
            }
            local_of.push(lookup);
            row_maps.push(part.rows);
        }
        ServeEngine {
            devices,
            plans,
            row_maps,
            local_of,
            rows: w.rows(),
            nnz: w.nnz(),
            config,
            sync_overhead_s: 20e-6,
        }
    }

    /// Graph nodes (rows of the serving operator).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Non-zeros of the serving operator.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Devices serving waves.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Attach one shared trace ledger to every device and return it, so
    /// the next [`Self::serve`] records a device-tagged span timeline.
    pub fn enable_tracing(&mut self) -> Arc<TraceLedger> {
        let ledger = Arc::new(TraceLedger::new());
        for dev in &mut self.devices {
            dev.attach_ledger(ledger.clone());
        }
        ledger
    }

    /// Serve a query stream to completion and account every wave.
    pub fn serve(&self, queries: &[Query]) -> ServeReport<T> {
        let mut stream: Vec<Query> = queries.to_vec();
        stream.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("arrival times must not be NaN")
                .then(a.id.cmp(&b.id))
        });
        for q in &stream {
            assert!(q.seed < self.rows, "query {} seed out of range", q.id);
        }

        let mut queue = SubmissionQueue::new(self.config.queue_capacity);
        let mut active: Vec<Active<T>> = Vec::new();
        let mut outcomes: Vec<QueryOutcome<T>> = Vec::new();
        let mut device_reports = vec![RunReport::default(); self.devices.len()];
        let mut next_arrival = 0usize;
        let mut clock = 0.0f64;
        let mut waves = 0usize;

        loop {
            // 1. admit everything that has arrived by now
            while next_arrival < stream.len() && stream[next_arrival].arrival_s <= clock {
                queue.offer(stream[next_arrival]);
                next_arrival += 1;
            }
            // 2. refill free batch slots from the queue
            while active.len() < self.config.max_batch {
                let Some(q) = queue.pop() else { break };
                let mut r = vec![T::ZERO; self.rows];
                r[q.seed] = T::ONE; // r⁰ = e_seed
                active.push(Active {
                    q,
                    admitted_s: clock,
                    iterations: 0,
                    r,
                });
            }
            if active.is_empty() {
                if next_arrival >= stream.len() {
                    break; // drained
                }
                // idle until the next arrival
                clock = clock.max(stream[next_arrival].arrival_s);
                continue;
            }

            // 3. one batched RWR iteration for the whole wave
            let k = active.len();
            let c: Vec<T> = active.iter().map(|a| T::from_f64(a.q.restart_c)).collect();
            let restart: Vec<T> = active
                .iter()
                .map(|a| T::from_f64(1.0 - a.q.restart_c))
                .collect();
            let mut new_r: Vec<Vec<T>> = vec![vec![T::ZERO; self.rows]; k];
            let mut wave_time = 0.0f64;
            for (d, dev) in self.devices.iter().enumerate() {
                let local_n = self.row_maps[d].len();
                if local_n == 0 {
                    continue; // more devices than this graph's bins can feed
                }
                let elt = std::mem::size_of::<T>();
                // each device gets every active iterate in full width
                let mut rep = dev.record_htod("serve_x_upload", (k * self.rows * elt) as u64);
                let xs: Vec<_> = active.iter().map(|a| dev.alloc(a.r.clone())).collect();
                let tmps: Vec<_> = (0..k).map(|_| dev.alloc_zeroed::<T>(local_n)).collect();
                let xr: Vec<_> = xs.iter().collect();
                let tr: Vec<_> = tmps.iter().collect();
                rep = rep.then(&self.plans[d].spmv_multi(dev, &xr, &tr));
                let seeds: Vec<Option<usize>> = active
                    .iter()
                    .map(|a| match self.local_of[d][a.q.seed] {
                        u32::MAX => None,
                        local => Some(local as usize),
                    })
                    .collect();
                let nexts: Vec<_> = (0..k).map(|_| dev.alloc_zeroed::<T>(local_n)).collect();
                let nr: Vec<_> = nexts.iter().collect();
                rep = rep.then(&rwr_update_multi(dev, &tr, &c, &restart, &seeds, &nr));
                rep = rep.then(&dev.record_dtoh("serve_y_readback", (k * local_n * elt) as u64));
                for (v, next) in nexts.iter().enumerate() {
                    let local = next.as_slice();
                    for (l, &g) in self.row_maps[d].iter().enumerate() {
                        new_r[v][g as usize] = local[l];
                    }
                }
                wave_time = wave_time.max(rep.time_s);
                device_reports[d] = device_reports[d].clone().then(&rep);
            }
            if self.devices.len() > 1 {
                wave_time += self.sync_overhead_s;
            }
            clock += wave_time;
            waves += 1;

            // 4. retire converged queries, keep the rest for the next wave
            let mut survivors = Vec::with_capacity(active.len());
            for (v, mut a) in active.into_iter().enumerate() {
                a.iterations += 1;
                // Euclidean distance of successive iterates, summed over
                // global rows in ascending order — identical arithmetic
                // whatever the batch or device split, so convergence is
                // a per-query property.
                let mut dist2 = 0.0f64;
                for (old, new) in a.r.iter().zip(&new_r[v]) {
                    let d = new.to_f64() - old.to_f64();
                    dist2 += d * d;
                }
                std::mem::swap(&mut a.r, &mut new_r[v]);
                let converged = dist2.sqrt() < self.config.iter.epsilon;
                if converged || a.iterations >= self.config.iter.max_iters {
                    outcomes.push(QueryOutcome {
                        id: a.q.id,
                        seed: a.q.seed,
                        arrival_s: a.q.arrival_s,
                        admitted_s: a.admitted_s,
                        completed_s: clock,
                        iterations: a.iterations,
                        converged,
                        scores: self.config.keep_scores.then_some(a.r),
                    });
                } else {
                    survivors.push(a);
                }
            }
            active = survivors;
        }

        ServeReport {
            outcomes,
            rejected: queue.rejected().to_vec(),
            makespan_s: clock,
            waves,
            device_reports,
            nnz: self.nnz,
        }
    }

    /// Generate a seeded query stream against this engine's graph and
    /// serve it: the closed-loop experiment entry point.
    pub fn serve_generated(
        &self,
        pattern: ArrivalPattern,
        n_queries: usize,
        restart_c: f64,
        rng_seed: u64,
    ) -> ServeReport<T> {
        let queries = generate_queries(pattern, n_queries, self.rows, restart_c, rng_seed);
        self.serve(&queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_apps::rwr::rwr_cpu;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn graph(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 6.0,
            max_degree: 200,
            pinned_max_rows: 1,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    }

    fn saturated(n: usize) -> ArrivalPattern {
        // arrivals far faster than service: everything queues at t≈0
        let _ = n;
        ArrivalPattern::Poisson { rate_qps: 1e9 }
    }

    #[test]
    fn served_scores_match_cpu_reference() {
        let g = graph(400, 201);
        let w = rwr_operator(&g);
        let engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 4,
                keep_scores: true,
                ..ServeConfig::default()
            },
        );
        let report = engine.serve_generated(saturated(6), 6, 0.85, 11);
        assert_eq!(report.outcomes.len(), 6);
        assert!(report.rejected.is_empty());
        for o in &report.outcomes {
            assert!(o.converged, "query {} hit the iteration cap", o.id);
            let (cpu, _) = rwr_cpu(&w, o.seed, 0.85, &IterParams::default());
            let scores = o.scores.as_ref().unwrap();
            let d = sparse_formats::scalar::rel_l2_distance(scores, &cpu);
            assert!(d < 1e-9, "query {} rel distance {d}", o.id);
        }
    }

    #[test]
    fn non_acsr_formats_are_servable() {
        // Any registry format serves through the sequential
        // `spmv_multi` fallback; answers must match the CPU reference
        // (and therefore the default ACSR path) exactly as closely.
        let g = graph(350, 206);
        let w = rwr_operator(&g);
        for format in ["HYB", "CSR-vector"] {
            let engine = ServeEngine::new(
                &g,
                ServeConfig {
                    max_batch: 4,
                    format,
                    keep_scores: true,
                    ..ServeConfig::default()
                },
            );
            let report = engine.serve_generated(saturated(5), 5, 0.85, 23);
            assert_eq!(report.outcomes.len(), 5, "{format}");
            for o in &report.outcomes {
                assert!(o.converged, "{format}: query {} hit the cap", o.id);
                let (cpu, cpu_iters) = rwr_cpu(&w, o.seed, 0.85, &IterParams::default());
                assert_eq!(o.iterations, cpu_iters, "{format}: query {}", o.id);
                let scores = o.scores.as_ref().unwrap();
                let d = sparse_formats::scalar::rel_l2_distance(scores, &cpu);
                assert!(d < 1e-9, "{format}: query {} rel distance {d}", o.id);
            }
        }
    }

    #[test]
    fn continuous_batching_refills_slots_as_queries_retire() {
        let g = graph(300, 202);
        let engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 3,
                queue_capacity: 64,
                ..ServeConfig::default()
            },
        );
        let report = engine.serve_generated(saturated(9), 9, 0.85, 13);
        assert_eq!(report.outcomes.len(), 9);
        // 9 queries through 3 slots: the wave count must be far below
        // serial (sum of iterations) but at least the longest query
        let longest = report.outcomes.iter().map(|o| o.iterations).max().unwrap();
        let serial: usize = report.total_iterations();
        assert!(report.waves >= longest);
        assert!(
            report.waves < serial,
            "waves {} vs serial {serial}",
            report.waves
        );
        // later queries waited in the queue
        assert!(report.outcomes.iter().any(|o| o.queue_wait_s() > 0.0));
        assert!(report.makespan_s > 0.0);
        assert!(report.throughput_qps() > 0.0);
        assert!(report.gflops() > 0.0);
    }

    #[test]
    fn overload_sheds_queries_beyond_queue_capacity() {
        let g = graph(200, 203);
        let engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 1,
                queue_capacity: 2,
                ..ServeConfig::default()
            },
        );
        // 8 simultaneous arrivals into 1 slot + 2 queue places
        let queries: Vec<Query> = (0..8)
            .map(|id| Query {
                id,
                seed: (id as usize * 13) % 200,
                restart_c: 0.85,
                arrival_s: 0.0,
            })
            .collect();
        let report = engine.serve(&queries);
        assert!(!report.rejected.is_empty(), "overload must shed load");
        assert_eq!(report.outcomes.len() + report.rejected.len(), 8);
        // the 8 queries arrive at the same instant, so only the queue's
        // two places are admitted; the rest shed in arrival order
        assert_eq!(report.rejected, vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(report.outcomes.len(), 2);
    }

    #[test]
    fn multi_device_waves_account_sync_and_tag_devices() {
        let g = graph(500, 204);
        let mut engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 4,
                n_devices: 2,
                ..ServeConfig::default()
            },
        );
        assert_eq!(engine.n_devices(), 2);
        let ledger = engine.enable_tracing();
        let report = engine.serve_generated(saturated(4), 4, 0.85, 17);
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.device_reports.len(), 2);
        assert!(report.device_reports.iter().all(|r| r.launches > 0));
        ledger.reconcile().expect("serve trace must reconcile");
        let json = ledger.chrome_trace_json();
        assert!(json.contains("#0") && json.contains("#1"));
        assert!(json.contains("serve_x_upload"));
    }

    #[test]
    fn batching_improves_throughput_on_saturated_load() {
        let g = graph(600, 205);
        let qps = |max_batch: usize| {
            let engine = ServeEngine::new(
                &g,
                ServeConfig {
                    max_batch,
                    queue_capacity: 64,
                    ..ServeConfig::default()
                },
            );
            engine
                .serve_generated(saturated(16), 16, 0.85, 19)
                .throughput_qps()
        };
        let serial = qps(1);
        let batched = qps(8);
        assert!(
            batched > serial * 1.5,
            "batched {batched} vs serial {serial}"
        );
    }
}
