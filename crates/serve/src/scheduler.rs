//! Continuous-batching RWR scheduler over multi-vector ACSR.
//!
//! Queries are admitted from a bounded [`SubmissionQueue`] into one
//! shared *wave*: every wave runs one RWR iteration for every active
//! query as a single batched SpMM (`spmv_multi`) plus one batched
//! update kernel per device. Converged queries retire at the end of a
//! wave and their batch slots are refilled from the queue — continuous
//! batching, not gang scheduling.
//!
//! Admission is **event-driven**: every arrival is offered to the queue
//! at its true arrival time — mid-wave arrivals queue (or shed) against
//! the occupancy at that instant, and at a wave boundary offers
//! interleave with eager pops into free batch slots, so a burst flows
//! through the queue into idle slots instead of being shed against a
//! backlog that is about to drain. (The original scheduler offered a
//! boundary's whole arrival batch before refilling, so queries could be
//! capacity-shed while batch slots sat idle — shed attribution now
//! always uses arrival-time occupancy.) The open-loop entry point
//! [`ServeEngine::serve_slo`] adds per-tenant fair-share admission,
//! deadline shedding, and adaptive batch sizing on the same core; the
//! closed-loop [`ServeEngine::serve`] is the fixed-width no-deadline
//! special case.
//!
//! Two invariants make the modeled numbers trustworthy:
//!
//! 1. **Batch independence** — per vector, the batched kernels execute
//!    exactly the single-vector float-op sequence, so a query's
//!    trajectory (scores *and* iteration count) is bit-identical no
//!    matter which queries it is co-batched with or what the batch
//!    policy picks. Batching changes *when* a query runs, never *what*
//!    it computes.
//! 2. **Device-count independence** — rows are partitioned with
//!    [`multi_gpu::partition_rows_by_bins`]; a row keeps its bin (and
//!    its per-row accumulation order) in the device-local sub-matrix,
//!    so results are bit-identical across device counts too.
//!
//! Both are pinned by proptests in `tests/proptest_serve.rs`; the
//! open-loop shed/admission decisions are themselves deterministic
//! functions of modeled time, pinned across host worker widths in
//! `tests/slo_serving.rs`.

use crate::latency::{count_within, LatencyStats};
use crate::loadgen::{generate_queries, ArrivalPattern};
use crate::query::{Query, QueryOutcome};
use crate::queue::SubmissionQueue;
use crate::slo::{DispatchPolicy, SloPolicy};
use crate::telemetry::ServeScope;
use crate::tenant::FairShare;
use acsr::AcsrConfig;
use acsr_telemetry::{Telemetry, WaveRecord};
use gpu_sim::trace::TraceLedger;
use gpu_sim::{presets, Device, DeviceConfig, RunReport};
use graph_apps::rwr::{rwr_operator, rwr_update_multi};
use graph_apps::IterParams;
use multi_gpu::{extract_rows, partition_rows_by_bins};
use sparse_formats::{CsrMatrix, Scalar};
use spmv_kernels::GpuSpmvMulti;
use spmv_pipeline::{AcsrPlanner, FormatRegistry, PlanBudget, SpmvPlan};
use std::sync::{Arc, OnceLock};

/// Serving-engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum queries per wave (the SpMM batch width `k`) for the
    /// closed-loop [`ServeEngine::serve`] path; [`ServeEngine::serve_slo`]
    /// takes its width from the policy's [`crate::slo::BatchPolicy`].
    pub max_batch: usize,
    /// Submission-queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Simulated devices to spread each wave across.
    pub n_devices: usize,
    /// Per-query RWR iteration limits.
    pub iter: IterParams,
    /// Registry format the per-device plans are built with. ACSR (the
    /// default) is the only format with a *fused* multi-vector wave;
    /// every other registry format is servable through the sequential
    /// [`GpuSpmvMulti`] fallback.
    pub format: &'static str,
    /// ACSR configuration for the per-device engines (used when
    /// `format` is "ACSR").
    pub acsr: AcsrConfig,
    /// Simulated device model.
    pub device: DeviceConfig,
    /// Keep each query's final relevance vector in its outcome.
    pub keep_scores: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            queue_capacity: 64,
            n_devices: 1,
            iter: IterParams::default(),
            format: "ACSR",
            acsr: AcsrConfig::static_long_tail(),
            device: presets::gtx_titan(),
            keep_scores: false,
        }
    }
}

/// A query currently riding in the wave.
struct Active<T> {
    q: Query,
    admitted_s: f64,
    iterations: usize,
    /// Current global relevance iterate (host copy between waves).
    r: Vec<T>,
}

/// How one executed wave was actually dispatched (the resolution of the
/// policy's [`DispatchPolicy`], observable per wave in
/// [`ServeReport::wave_modes`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchMode {
    /// Every query ran on every device over that device's row shard.
    RowSplit,
    /// Whole queries were stolen onto replicated devices.
    QuerySplit,
}

/// Probe-calibrated linear wave-cost model: `rs1 + rs_marg·(k-1)` for a
/// row-split wave of width `k`, and per-device `qs1 + qs_marg·(w-1)`
/// for a device running `w` whole queries on its replicated full plan.
/// Calibrated once per engine from four probe waves (widths 1 and 2,
/// both modes) on the real simulator — every term is a modeled time, so
/// the choice is deterministic across host worker widths.
#[derive(Clone, Copy, Debug)]
struct DispatchCost {
    rs1: f64,
    rs_marg: f64,
    qs1: f64,
    qs_marg: f64,
}

impl DispatchCost {
    fn row_split_s(&self, k: usize) -> f64 {
        self.rs1 + self.rs_marg * (k.saturating_sub(1)) as f64
    }

    fn query_split_s(&self, k: usize, devices: usize, sync_s: f64) -> f64 {
        let d_active = k.min(devices).max(1);
        let widest = k.div_ceil(d_active);
        let sync = if d_active > 1 { sync_s } else { 0.0 };
        self.qs1 + self.qs_marg * (widest - 1) as f64 + sync
    }
}

/// Result of serving one query stream.
#[derive(Clone, Debug)]
pub struct ServeReport<T> {
    /// Completed queries, in retirement order.
    pub outcomes: Vec<QueryOutcome<T>>,
    /// Ids shed because the submission queue was full at their arrival
    /// (capacity shedding), in arrival order.
    pub rejected: Vec<u64>,
    /// Ids dropped at admission because their queue wait had already
    /// exceeded their tenant's SLO budget (deadline shedding), in
    /// admission-attempt order.
    pub deadline_shed: Vec<u64>,
    /// Queries in the offered stream (completed + shed).
    pub offered: usize,
    /// Virtual-clock span from start to the last retirement, seconds.
    pub makespan_s: f64,
    /// Batched iteration waves executed.
    pub waves: usize,
    /// Batch width of every executed wave, in order (the adaptive
    /// policy's decisions are observable here).
    pub wave_widths: Vec<usize>,
    /// How each wave was dispatched, in order (the [`DispatchPolicy`]'s
    /// per-wave resolutions; parallel to `wave_widths`).
    pub wave_modes: Vec<DispatchMode>,
    /// Accumulated per-device kernel/transfer accounting.
    pub device_reports: Vec<RunReport>,
    /// Non-zeros of the serving operator (for GFLOPS accounting).
    pub nnz: usize,
}

impl<T> ServeReport<T> {
    /// Completed queries per virtual second. A stream with nothing
    /// completed (or an empty makespan — e.g. every query shed) reports
    /// 0.0, never NaN/∞, so serialized artifacts stay valid.
    pub fn throughput_qps(&self) -> f64 {
        if self.outcomes.is_empty() || self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / self.makespan_s
    }

    /// Total RWR iterations executed across all completed queries.
    pub fn total_iterations(&self) -> usize {
        self.outcomes.iter().map(|o| o.iterations).sum()
    }

    /// Useful SpMV throughput: 2·nnz flops per query iteration over the
    /// makespan. 0.0 (not NaN/∞) when nothing completed.
    pub fn gflops(&self) -> f64 {
        if self.outcomes.is_empty() || self.makespan_s <= 0.0 {
            return 0.0;
        }
        (2 * self.nnz * self.total_iterations()) as f64 / self.makespan_s / 1e9
    }

    /// Arrival-to-completion latency summary.
    pub fn latency_stats(&self) -> LatencyStats {
        let samples: Vec<f64> = self.outcomes.iter().map(|o| o.latency_s()).collect();
        LatencyStats::from_samples(&samples)
    }

    /// Queue-wait summary (arrival to admission).
    pub fn queue_wait_stats(&self) -> LatencyStats {
        let samples: Vec<f64> = self.outcomes.iter().map(|o| o.queue_wait_s()).collect();
        LatencyStats::from_samples(&samples)
    }

    /// Mean iterations per completed query (0.0 when none completed).
    pub fn mean_iterations(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.total_iterations() as f64 / self.outcomes.len() as f64
    }

    /// Waves dispatched by whole-query stealing.
    pub fn stolen_waves(&self) -> usize {
        self.wave_modes
            .iter()
            .filter(|m| **m == DispatchMode::QuerySplit)
            .count()
    }

    /// Mean batch width over executed waves (0.0 when no wave ran).
    pub fn mean_wave_width(&self) -> f64 {
        if self.wave_widths.is_empty() {
            return 0.0;
        }
        self.wave_widths.iter().sum::<usize>() as f64 / self.wave_widths.len() as f64
    }

    /// SLO attainment: the fraction of **offered** queries that
    /// completed within `target_s` — shed queries (capacity or
    /// deadline) count as misses, so shedding can protect the tail but
    /// never flatter the curve. An empty stream vacuously attains 1.0.
    pub fn attainment(&self, target_s: f64) -> f64 {
        let offered = self.outcomes.len() + self.rejected.len() + self.deadline_shed.len();
        if offered == 0 {
            return 1.0;
        }
        let samples: Vec<f64> = self.outcomes.iter().map(|o| o.latency_s()).collect();
        count_within(&samples, target_s) as f64 / offered as f64
    }

    /// Queries meeting `target_s` per virtual second. Unlike
    /// [`Self::throughput_qps`] this is *goodput*: shed queries and
    /// SLO-missing completions never inflate it. 0.0 when nothing met
    /// the target (or the makespan is empty).
    pub fn goodput_qps(&self, target_s: f64) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        let samples: Vec<f64> = self.outcomes.iter().map(|o| o.latency_s()).collect();
        count_within(&samples, target_s) as f64 / self.makespan_s
    }
}

/// A multi-device RWR/PPR serving engine over one graph.
pub struct ServeEngine<T: Scalar> {
    devices: Vec<Device>,
    plans: Vec<SpmvPlan<T>>,
    /// `row_maps[d][local] = global`.
    row_maps: Vec<Vec<u32>>,
    /// `local_of[d][global] = local`, `u32::MAX` when `d` does not own
    /// the row.
    local_of: Vec<Vec<u32>>,
    rows: usize,
    nnz: usize,
    config: ServeConfig,
    /// The full serving operator, kept for building replicated
    /// whole-graph plans when a wave steals queries.
    operator: CsrMatrix<T>,
    /// Replicated full-graph plans (one per device), built lazily the
    /// first time a wave dispatches by query-split.
    full_plans: OnceLock<Vec<SpmvPlan<T>>>,
    /// Probe-calibrated wave-cost model, built lazily on the first
    /// [`DispatchPolicy::Auto`] wave.
    dispatch_cost: OnceLock<DispatchCost>,
    /// Serving-plane telemetry (metrics + request tracing); `None`
    /// means every record site is a single skipped branch.
    telemetry: Option<Arc<Telemetry>>,
    /// Device barrier + hand-off cost charged once per multi-device
    /// wave, seconds.
    pub sync_overhead_s: f64,
}

impl<T: Scalar> ServeEngine<T> {
    /// Build a serving engine for `adjacency` (square, unnormalized).
    /// The RWR operator (column-normalized adjacency) is partitioned
    /// across `config.n_devices` simulated devices by bin.
    pub fn new(adjacency: &CsrMatrix<T>, config: ServeConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.n_devices >= 1, "need at least one device");
        let w = rwr_operator(adjacency);
        let parts = partition_rows_by_bins(&w, config.n_devices);
        let mut reg = FormatRegistry::<T>::with_all();
        reg.register(Box::new(AcsrPlanner::with_config(config.acsr)));
        let mut devices = Vec::with_capacity(parts.len());
        let mut plans = Vec::with_capacity(parts.len());
        let mut row_maps = Vec::with_capacity(parts.len());
        let mut local_of = Vec::with_capacity(parts.len());
        for part in parts {
            let mut cfg = config.device.clone();
            if config.n_devices > 1 {
                cfg.name = format!("{} #{}", cfg.name, part.device);
            }
            let dev = Device::new(cfg);
            let sub = extract_rows(&w, &part.rows);
            let budget = PlanBudget::for_device(dev.config());
            plans.push(
                reg.plan(config.format, &dev, &sub, &budget)
                    .expect("serving plan must fit the device"),
            );
            devices.push(dev);
            let mut lookup = vec![u32::MAX; w.rows()];
            for (local, &global) in part.rows.iter().enumerate() {
                lookup[global as usize] = local as u32;
            }
            local_of.push(lookup);
            row_maps.push(part.rows);
        }
        ServeEngine {
            devices,
            plans,
            row_maps,
            local_of,
            rows: w.rows(),
            nnz: w.nnz(),
            config,
            operator: w,
            full_plans: OnceLock::new(),
            dispatch_cost: OnceLock::new(),
            telemetry: acsr_telemetry::active(),
            sync_overhead_s: 20e-6,
        }
    }

    /// Graph nodes (rows of the serving operator).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Non-zeros of the serving operator.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Devices serving waves.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Attach one shared trace ledger to every device and return it, so
    /// the next [`Self::serve`] records a device-tagged span timeline.
    pub fn enable_tracing(&mut self) -> Arc<TraceLedger> {
        let ledger = Arc::new(TraceLedger::new());
        for dev in &mut self.devices {
            dev.attach_ledger(ledger.clone());
        }
        ledger
    }

    /// Attach serving-plane telemetry: subsequent serve runs record
    /// metrics and per-query request spans into `tel` (and reconcile
    /// them against their [`ServeReport`] before publishing).
    /// [`Self::new`] picks up [`acsr_telemetry::global`] automatically
    /// while [`acsr_telemetry::enable_global_capture`] is armed.
    pub fn attach_telemetry(&mut self, tel: Arc<Telemetry>) {
        self.telemetry = Some(tel);
    }

    /// The attached telemetry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Serve a query stream to completion with the closed-loop policy
    /// (fixed `max_batch` waves, FIFO admission, no deadlines).
    pub fn serve(&self, queries: &[Query]) -> ServeReport<T> {
        self.serve_slo(
            queries,
            &SloPolicy::closed_loop(self.config.max_batch, self.config.queue_capacity),
        )
    }

    /// Serve a query stream under an open-loop [`SloPolicy`]: arrivals
    /// are offered at their true arrival times, admission applies the
    /// policy's tenant priorities / fair shares, stale waiters are
    /// deadline-shed at pop time, and each wave's width follows the
    /// policy's batch sizing.
    pub fn serve_slo(&self, queries: &[Query], policy: &SloPolicy) -> ServeReport<T> {
        assert!(
            policy.batch.max_width() >= 1,
            "batch policy must allow at least one query per wave"
        );
        let mut stream: Vec<Query> = queries.to_vec();
        stream.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("arrival times must not be NaN")
                .then(a.id.cmp(&b.id))
        });
        for q in &stream {
            assert!(q.seed < self.rows, "query {} seed out of range", q.id);
        }

        let mut queue = SubmissionQueue::new(policy.queue_capacity);
        let mut fair = FairShare::default();
        let mut active: Vec<Active<T>> = Vec::new();
        let mut outcomes: Vec<QueryOutcome<T>> = Vec::new();
        let mut deadline_shed: Vec<u64> = Vec::new();
        let mut device_reports = vec![RunReport::default(); self.devices.len()];
        let mut wave_widths: Vec<usize> = Vec::new();
        let mut wave_modes: Vec<DispatchMode> = Vec::new();
        let mut next_arrival = 0usize;
        let mut clock = 0.0f64;
        let mut scope: Option<ServeScope> = self
            .telemetry
            .as_ref()
            .map(|tel| ServeScope::new(tel.clone()));

        loop {
            // 1. Event-driven admission at the boundary: offer each due
            //    arrival against the queue occupancy at its own arrival
            //    time, interleaved with eager pops into free batch
            //    slots, so a burst drains through the queue instead of
            //    shedding while slots sit idle.
            loop {
                self.refill(
                    clock,
                    policy,
                    &mut queue,
                    &mut fair,
                    &mut active,
                    &mut deadline_shed,
                    &mut scope,
                );
                if next_arrival < stream.len() && stream[next_arrival].arrival_s <= clock {
                    let q = stream[next_arrival];
                    let depth = queue.len();
                    let admitted = queue.offer(q);
                    if let Some(s) = scope.as_mut() {
                        s.on_offer(&q, depth, admitted);
                    }
                    next_arrival += 1;
                } else {
                    break;
                }
            }
            self.refill(
                clock,
                policy,
                &mut queue,
                &mut fair,
                &mut active,
                &mut deadline_shed,
                &mut scope,
            );
            if active.is_empty() {
                debug_assert!(queue.is_empty(), "refill must drain an idle engine's queue");
                if next_arrival >= stream.len() {
                    break; // drained
                }
                // idle until the next arrival
                clock = clock.max(stream[next_arrival].arrival_s);
                continue;
            }

            // 2. one batched RWR iteration for the whole wave, over
            //    whichever dispatch the policy resolves for this width
            let mode = self.choose_mode(policy.dispatch, active.len());
            wave_widths.push(active.len());
            wave_modes.push(mode);
            // Stamp the wave's correlation id onto every kernel span it
            // launches, so the timeline export can join request spans
            // to device work.
            let wave_id = scope.as_mut().map(|s| s.take_wave_id());
            if wave_id.is_some() {
                self.set_wave_context(wave_id);
            }
            let (new_r, wave_time) = match mode {
                DispatchMode::RowSplit => self.wave(&active, &mut device_reports),
                DispatchMode::QuerySplit => self.wave_steal(&active, &mut device_reports),
            };
            if wave_id.is_some() {
                self.set_wave_context(None);
            }
            let wave_end = clock + wave_time;
            if let (Some(s), Some(wave)) = (scope.as_mut(), wave_id) {
                s.on_wave(
                    WaveRecord {
                        wave,
                        t_start_s: clock,
                        dur_s: wave_time,
                        width: active.len(),
                        devices: self.devices.len(),
                        queries: active.iter().map(|a| a.q.id).collect(),
                    },
                    mode == DispatchMode::QuerySplit,
                );
            }
            // 3. Arrivals landing mid-wave queue (or capacity-shed) at
            //    their true arrival times. No pops happen while a wave
            //    is in flight, so offering them in arrival order here
            //    reproduces each query's arrival-instant occupancy
            //    exactly — shed attribution never uses boundary state.
            while next_arrival < stream.len() && stream[next_arrival].arrival_s <= wave_end {
                let q = stream[next_arrival];
                let depth = queue.len();
                let admitted = queue.offer(q);
                if let Some(s) = scope.as_mut() {
                    s.on_offer(&q, depth, admitted);
                }
                next_arrival += 1;
            }
            clock = wave_end;

            // 4. retire converged queries, keep the rest
            active = self.retire(active, new_r, clock, &mut outcomes, policy, &mut scope);
        }

        let report = ServeReport {
            outcomes,
            rejected: queue.rejected().to_vec(),
            deadline_shed,
            offered: stream.len(),
            makespan_s: clock,
            waves: wave_widths.len(),
            wave_widths,
            wave_modes,
            device_reports,
            nnz: self.nnz,
        };
        if let Some(s) = scope {
            // Hard accounting check, then publish into the shared
            // telemetry — a snapshot can never disagree with the report.
            s.finish(&report);
        }
        report
    }

    /// Set (or clear) the wave correlation id on every traced device.
    fn set_wave_context(&self, wave: Option<u64>) {
        for dev in &self.devices {
            if let Some(ledger) = dev.ledger() {
                ledger.set_wave(wave);
            }
        }
    }

    /// Pop waiting queries into free batch slots at virtual time `now`:
    /// fair-share/priority selection, deadline-shedding waiters whose
    /// queue wait already exceeds their tenant's SLO budget, up to the
    /// batch policy's width for the current demand.
    #[allow(clippy::too_many_arguments)]
    fn refill(
        &self,
        now: f64,
        policy: &SloPolicy,
        queue: &mut SubmissionQueue,
        fair: &mut FairShare,
        active: &mut Vec<Active<T>>,
        deadline_shed: &mut Vec<u64>,
        scope: &mut Option<ServeScope>,
    ) {
        loop {
            let cap = policy.batch.cap(active.len() + queue.len());
            if active.len() >= cap {
                return;
            }
            let Some(q) = queue.pop_min_by(|a, b| fair.order(&policy.tenants, a, b)) else {
                return;
            };
            if policy.deadline_shed && now - q.arrival_s > policy.tenants.spec(q.tenant).slo_s {
                // The wait alone has consumed the whole budget: this
                // query cannot meet its SLO any more, so drop it before
                // it burns a batch slot.
                deadline_shed.push(q.id);
                if let Some(s) = scope.as_mut() {
                    s.on_deadline_shed(now, &q);
                }
                continue;
            }
            fair.record(q.tenant);
            if let Some(s) = scope.as_mut() {
                s.on_admitted(now, &q);
            }
            let mut r = vec![T::ZERO; self.rows];
            r[q.seed] = T::ONE; // r⁰ = e_seed
            active.push(Active {
                q,
                admitted_s: now,
                iterations: 0,
                r,
            });
        }
    }

    /// Execute one batched RWR iteration for `active` across all
    /// devices; returns the next iterates and the wave's modeled time.
    fn wave(&self, active: &[Active<T>], device_reports: &mut [RunReport]) -> (Vec<Vec<T>>, f64) {
        let k = active.len();
        let c: Vec<T> = active.iter().map(|a| T::from_f64(a.q.restart_c)).collect();
        let restart: Vec<T> = active
            .iter()
            .map(|a| T::from_f64(1.0 - a.q.restart_c))
            .collect();
        let mut new_r: Vec<Vec<T>> = vec![vec![T::ZERO; self.rows]; k];
        let mut wave_time = 0.0f64;
        for (d, dev) in self.devices.iter().enumerate() {
            let local_n = self.row_maps[d].len();
            if local_n == 0 {
                continue; // more devices than this graph's bins can feed
            }
            let elt = std::mem::size_of::<T>();
            // each device gets every active iterate in full width
            let mut rep = dev.record_htod("serve_x_upload", (k * self.rows * elt) as u64);
            let xs: Vec<_> = active.iter().map(|a| dev.alloc(a.r.clone())).collect();
            let tmps: Vec<_> = (0..k).map(|_| dev.alloc_zeroed::<T>(local_n)).collect();
            let xr: Vec<_> = xs.iter().collect();
            let tr: Vec<_> = tmps.iter().collect();
            rep = rep.then(&self.plans[d].spmv_multi(dev, &xr, &tr));
            let seeds: Vec<Option<usize>> = active
                .iter()
                .map(|a| match self.local_of[d][a.q.seed] {
                    u32::MAX => None,
                    local => Some(local as usize),
                })
                .collect();
            let nexts: Vec<_> = (0..k).map(|_| dev.alloc_zeroed::<T>(local_n)).collect();
            let nr: Vec<_> = nexts.iter().collect();
            rep = rep.then(&rwr_update_multi(dev, &tr, &c, &restart, &seeds, &nr));
            rep = rep.then(&dev.record_dtoh("serve_y_readback", (k * local_n * elt) as u64));
            for (v, next) in nexts.iter().enumerate() {
                let local = next.as_slice();
                for (l, &g) in self.row_maps[d].iter().enumerate() {
                    new_r[v][g as usize] = local[l];
                }
            }
            wave_time = wave_time.max(rep.time_s);
            device_reports[d] = device_reports[d].clone().then(&rep);
        }
        if self.devices.len() > 1 {
            wave_time += self.sync_overhead_s;
        }
        (new_r, wave_time)
    }

    /// Resolve the policy's dispatch for a wave of `k` queries.
    fn choose_mode(&self, policy: DispatchPolicy, k: usize) -> DispatchMode {
        if self.devices.len() <= 1 {
            // One device: stealing degenerates to the same single-plan
            // wave; keep the row-split path and build nothing extra.
            return DispatchMode::RowSplit;
        }
        match policy {
            DispatchPolicy::RowSplit => DispatchMode::RowSplit,
            DispatchPolicy::QuerySplit => DispatchMode::QuerySplit,
            DispatchPolicy::Auto => {
                let cost = self.dispatch_cost();
                let qs = cost.query_split_s(k, self.devices.len(), self.sync_overhead_s);
                if qs < cost.row_split_s(k) {
                    DispatchMode::QuerySplit
                } else {
                    DispatchMode::RowSplit
                }
            }
        }
    }

    /// The probe-calibrated [`DispatchCost`], built on the first
    /// [`DispatchPolicy::Auto`] wave: row-split waves of widths 1 and 2
    /// give that mode's intercept and slope, and whole-query runs of 1
    /// and 2 queries on device 0's replicated plan give the per-device
    /// query-split terms. Probe accounting goes to a scratch accumulator
    /// (and probes run before any wave id is staged), so serving
    /// reports, metrics, and wave correlation never see them.
    fn dispatch_cost(&self) -> DispatchCost {
        *self.dispatch_cost.get_or_init(|| {
            let mut scratch = vec![RunReport::default(); self.devices.len()];
            let (_, rs1) = self.wave(&self.probe_wave(1), &mut scratch);
            let (_, rs2) = self.wave(&self.probe_wave(2), &mut scratch);
            let probes = self.probe_wave(2);
            let one: Vec<&Active<T>> = probes[..1].iter().collect();
            let two: Vec<&Active<T>> = probes.iter().collect();
            let qs1 = self.steal_on_device(0, &one, &mut scratch).1;
            let qs2 = self.steal_on_device(0, &two, &mut scratch).1;
            DispatchCost {
                rs1,
                rs_marg: (rs2 - rs1).max(0.0),
                qs1,
                qs_marg: (qs2 - qs1).max(0.0),
            }
        })
    }

    /// A synthetic wave of `k` fresh unit-seed queries, used only for
    /// cost probing.
    fn probe_wave(&self, k: usize) -> Vec<Active<T>> {
        (0..k)
            .map(|i| {
                let seed = i % self.rows;
                let mut r = vec![T::ZERO; self.rows];
                r[seed] = T::ONE;
                Active {
                    q: Query {
                        id: u64::MAX - i as u64,
                        seed,
                        restart_c: 0.85,
                        arrival_s: 0.0,
                        tenant: 0,
                    },
                    admitted_s: 0.0,
                    iterations: 0,
                    r,
                }
            })
            .collect()
    }

    /// Replicated whole-graph plans, one per device, built on the first
    /// query-split wave (a row-split-only engine never pays for them).
    fn full_plans(&self) -> &[SpmvPlan<T>] {
        self.full_plans.get_or_init(|| {
            let mut reg = FormatRegistry::<T>::with_all();
            reg.register(Box::new(AcsrPlanner::with_config(self.config.acsr)));
            self.devices
                .iter()
                .map(|dev| {
                    let budget = PlanBudget::for_device(dev.config());
                    reg.plan(self.config.format, dev, &self.operator, &budget)
                        .expect("replicated serving plan must fit the device")
                })
                .collect()
        })
    }

    /// Run `mine` whole queries end to end on device `d`'s replicated
    /// full-graph plan; returns their next iterates (parallel to `mine`)
    /// and the device's modeled time, merging the kernel/transfer
    /// accounting into `device_reports[d]`.
    fn steal_on_device(
        &self,
        d: usize,
        mine: &[&Active<T>],
        device_reports: &mut [RunReport],
    ) -> (Vec<Vec<T>>, f64) {
        let dev = &self.devices[d];
        let plan = &self.full_plans()[d];
        let kd = mine.len();
        let elt = std::mem::size_of::<T>();
        let c: Vec<T> = mine.iter().map(|a| T::from_f64(a.q.restart_c)).collect();
        let restart: Vec<T> = mine
            .iter()
            .map(|a| T::from_f64(1.0 - a.q.restart_c))
            .collect();
        let mut rep = dev.record_htod("serve_x_upload", (kd * self.rows * elt) as u64);
        let xs: Vec<_> = mine.iter().map(|a| dev.alloc(a.r.clone())).collect();
        let tmps: Vec<_> = (0..kd).map(|_| dev.alloc_zeroed::<T>(self.rows)).collect();
        let xr: Vec<_> = xs.iter().collect();
        let tr: Vec<_> = tmps.iter().collect();
        rep = rep.then(&plan.spmv_multi(dev, &xr, &tr));
        // The replicated plan covers every row, so seeds stay global.
        let seeds: Vec<Option<usize>> = mine.iter().map(|a| Some(a.q.seed)).collect();
        let nexts: Vec<_> = (0..kd).map(|_| dev.alloc_zeroed::<T>(self.rows)).collect();
        let nr: Vec<_> = nexts.iter().collect();
        rep = rep.then(&rwr_update_multi(dev, &tr, &c, &restart, &seeds, &nr));
        rep = rep.then(&dev.record_dtoh("serve_y_readback", (kd * self.rows * elt) as u64));
        let out: Vec<Vec<T>> = nexts.iter().map(|n| n.as_slice().to_vec()).collect();
        let time = rep.time_s;
        device_reports[d] = device_reports[d].clone().then(&rep);
        (out, time)
    }

    /// Execute one wave by whole-query stealing: query `i` runs end to
    /// end on device `i % d_active`'s replicated full-graph plan, so a
    /// wave narrower than the fleet leaves the surplus devices untouched
    /// instead of underfeeding all of them — and a single active device
    /// skips the multi-device sync entirely. Per query the batched
    /// kernels execute the exact single-vector float-op sequence (the
    /// batch- and device-count-independence invariants), so the iterates
    /// are bit-identical to a row-split wave's.
    fn wave_steal(
        &self,
        active: &[Active<T>],
        device_reports: &mut [RunReport],
    ) -> (Vec<Vec<T>>, f64) {
        let k = active.len();
        let d_active = k.min(self.devices.len()).max(1);
        let mut new_r: Vec<Vec<T>> = vec![Vec::new(); k];
        let mut wave_time = 0.0f64;
        for d in 0..d_active {
            let idxs: Vec<usize> = (d..k).step_by(d_active).collect();
            let mine: Vec<&Active<T>> = idxs.iter().map(|&i| &active[i]).collect();
            let (outs, t) = self.steal_on_device(d, &mine, device_reports);
            for (out, &i) in outs.into_iter().zip(&idxs) {
                new_r[i] = out;
            }
            wave_time = wave_time.max(t);
        }
        if d_active > 1 {
            wave_time += self.sync_overhead_s;
        }
        (new_r, wave_time)
    }

    /// Retire converged (or capped) queries at wave end `clock`;
    /// returns the survivors with their swapped-in iterates.
    fn retire(
        &self,
        active: Vec<Active<T>>,
        mut new_r: Vec<Vec<T>>,
        clock: f64,
        outcomes: &mut Vec<QueryOutcome<T>>,
        policy: &SloPolicy,
        scope: &mut Option<ServeScope>,
    ) -> Vec<Active<T>> {
        let mut survivors = Vec::with_capacity(active.len());
        for (v, mut a) in active.into_iter().enumerate() {
            a.iterations += 1;
            // Euclidean distance of successive iterates, summed over
            // global rows in ascending order — identical arithmetic
            // whatever the batch or device split, so convergence is
            // a per-query property.
            let mut dist2 = 0.0f64;
            for (old, new) in a.r.iter().zip(&new_r[v]) {
                let d = new.to_f64() - old.to_f64();
                dist2 += d * d;
            }
            std::mem::swap(&mut a.r, &mut new_r[v]);
            let converged = dist2.sqrt() < self.config.iter.epsilon;
            if converged || a.iterations >= self.config.iter.max_iters {
                if let Some(s) = scope.as_mut() {
                    s.on_completed(
                        clock,
                        &a.q,
                        a.iterations,
                        converged,
                        policy.tenants.spec(a.q.tenant).slo_s,
                    );
                }
                outcomes.push(QueryOutcome {
                    id: a.q.id,
                    seed: a.q.seed,
                    arrival_s: a.q.arrival_s,
                    admitted_s: a.admitted_s,
                    completed_s: clock,
                    iterations: a.iterations,
                    converged,
                    scores: self.config.keep_scores.then_some(a.r),
                });
            } else {
                survivors.push(a);
            }
        }
        survivors
    }

    /// Generate a seeded query stream against this engine's graph and
    /// serve it: the closed-loop experiment entry point.
    pub fn serve_generated(
        &self,
        pattern: ArrivalPattern,
        n_queries: usize,
        restart_c: f64,
        rng_seed: u64,
    ) -> ServeReport<T> {
        let queries = generate_queries(pattern, n_queries, self.rows, restart_c, rng_seed);
        self.serve(&queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_apps::rwr::rwr_cpu;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn graph(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 6.0,
            max_degree: 200,
            pinned_max_rows: 1,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    }

    fn saturated(n: usize) -> ArrivalPattern {
        // arrivals far faster than service: everything queues at t≈0
        let _ = n;
        ArrivalPattern::Poisson { rate_qps: 1e9 }
    }

    fn query(id: u64, seed: usize, arrival_s: f64) -> Query {
        Query {
            id,
            seed,
            restart_c: 0.85,
            arrival_s,
            tenant: 0,
        }
    }

    #[test]
    fn served_scores_match_cpu_reference() {
        let g = graph(400, 201);
        let w = rwr_operator(&g);
        let engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 4,
                keep_scores: true,
                ..ServeConfig::default()
            },
        );
        let report = engine.serve_generated(saturated(6), 6, 0.85, 11);
        assert_eq!(report.outcomes.len(), 6);
        assert!(report.rejected.is_empty());
        assert!(report.deadline_shed.is_empty());
        assert_eq!(report.offered, 6);
        for o in &report.outcomes {
            assert!(o.converged, "query {} hit the iteration cap", o.id);
            let (cpu, _) = rwr_cpu(&w, o.seed, 0.85, &IterParams::default());
            let scores = o.scores.as_ref().unwrap();
            let d = sparse_formats::scalar::rel_l2_distance(scores, &cpu);
            assert!(d < 1e-9, "query {} rel distance {d}", o.id);
        }
    }

    #[test]
    fn non_acsr_formats_are_servable() {
        // Any registry format serves through the sequential
        // `spmv_multi` fallback; answers must match the CPU reference
        // (and therefore the default ACSR path) exactly as closely.
        let g = graph(350, 206);
        let w = rwr_operator(&g);
        for format in ["HYB", "CSR-vector"] {
            let engine = ServeEngine::new(
                &g,
                ServeConfig {
                    max_batch: 4,
                    format,
                    keep_scores: true,
                    ..ServeConfig::default()
                },
            );
            let report = engine.serve_generated(saturated(5), 5, 0.85, 23);
            assert_eq!(report.outcomes.len(), 5, "{format}");
            for o in &report.outcomes {
                assert!(o.converged, "{format}: query {} hit the cap", o.id);
                let (cpu, cpu_iters) = rwr_cpu(&w, o.seed, 0.85, &IterParams::default());
                assert_eq!(o.iterations, cpu_iters, "{format}: query {}", o.id);
                let scores = o.scores.as_ref().unwrap();
                let d = sparse_formats::scalar::rel_l2_distance(scores, &cpu);
                assert!(d < 1e-9, "{format}: query {} rel distance {d}", o.id);
            }
        }
    }

    #[test]
    fn continuous_batching_refills_slots_as_queries_retire() {
        let g = graph(300, 202);
        let engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 3,
                queue_capacity: 64,
                ..ServeConfig::default()
            },
        );
        let report = engine.serve_generated(saturated(9), 9, 0.85, 13);
        assert_eq!(report.outcomes.len(), 9);
        // 9 queries through 3 slots: the wave count must be far below
        // serial (sum of iterations) but at least the longest query
        let longest = report.outcomes.iter().map(|o| o.iterations).max().unwrap();
        let serial: usize = report.total_iterations();
        assert!(report.waves >= longest);
        assert!(
            report.waves < serial,
            "waves {} vs serial {serial}",
            report.waves
        );
        assert_eq!(report.wave_widths.len(), report.waves);
        assert!(report.wave_widths.iter().all(|&w| (1..=3).contains(&w)));
        // later queries waited in the queue
        assert!(report.outcomes.iter().any(|o| o.queue_wait_s() > 0.0));
        assert!(report.makespan_s > 0.0);
        assert!(report.throughput_qps() > 0.0);
        assert!(report.gflops() > 0.0);
    }

    #[test]
    fn overload_sheds_queries_beyond_queue_capacity() {
        let g = graph(200, 203);
        let engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 1,
                queue_capacity: 2,
                ..ServeConfig::default()
            },
        );
        // 8 simultaneous arrivals into 1 slot + 2 queue places
        let queries: Vec<Query> = (0..8)
            .map(|id| query(id, (id as usize * 13) % 200, 0.0))
            .collect();
        let report = engine.serve(&queries);
        assert!(!report.rejected.is_empty(), "overload must shed load");
        assert_eq!(report.outcomes.len() + report.rejected.len(), 8);
        assert_eq!(report.offered, 8);
        // Event-driven admission: the first arrival flows through the
        // queue straight into the free batch slot, the next two take
        // the queue's places, and the rest shed in arrival order. (The
        // old boundary-batched admission shed query 2 as well, against
        // a queue that still held the query the free slot was about to
        // absorb.)
        assert_eq!(report.rejected, vec![3, 4, 5, 6, 7]);
        assert_eq!(report.outcomes.len(), 3);
    }

    /// The shed-attribution fix: a query arriving *mid-wave*, after the
    /// queue has drained into slots, sees the drained queue (admitted) —
    /// and one arriving after the queue refills sees the full queue
    /// (shed) — regardless of what the occupancy is at the boundary.
    #[test]
    fn mid_wave_arrivals_shed_by_arrival_time_occupancy() {
        let g = graph(250, 207);
        let engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 1,
                queue_capacity: 1,
                ..ServeConfig::default()
            },
        );
        // q0 at t=0 takes the slot (queue drains); its first wave runs
        // for some modeled time W > 0. q1 arrives mid-wave at 1 ns:
        // the queue is empty at that instant, so it must be admitted.
        // q2 arrives just after q1, sees q1 occupying the single queue
        // place, and must be the one shed.
        let queries = vec![
            query(0, 3, 0.0),
            query(1, 5, 1e-9),
            query(2, 7, 2e-9),
            // q3 arrives much later, long after the backlog drained:
            // admitted too (a boundary-occupancy scheduler that batched
            // offers could have shed it against stale state).
            query(3, 9, 1.0),
        ];
        let report = engine.serve(&queries);
        let completed: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
        assert!(completed.contains(&0), "q0 occupies the free slot");
        assert!(
            completed.contains(&1),
            "q1 arrived at a drained queue mid-wave and must be admitted"
        );
        assert!(
            completed.contains(&3),
            "q3 arrived after the backlog cleared and must be admitted"
        );
        assert_eq!(report.rejected, vec![2], "only q2 saw a full queue");
    }

    #[test]
    fn fully_shed_report_has_no_nan_metrics() {
        // The degenerate shape the guards exist for: every query shed,
        // nothing completed, zero makespan. All rate/mean metrics must
        // be exactly 0.0 — NaN/∞ here would corrupt BENCH_serve.json.
        let report = ServeReport::<f64> {
            outcomes: Vec::new(),
            rejected: vec![0, 1, 2],
            deadline_shed: vec![3, 4],
            offered: 5,
            makespan_s: 0.0,
            waves: 0,
            wave_widths: Vec::new(),
            wave_modes: Vec::new(),
            device_reports: Vec::new(),
            nnz: 1000,
        };
        assert_eq!(report.throughput_qps(), 0.0);
        assert_eq!(report.gflops(), 0.0);
        assert_eq!(report.mean_iterations(), 0.0);
        assert_eq!(report.mean_wave_width(), 0.0);
        assert_eq!(report.goodput_qps(0.1), 0.0);
        assert_eq!(report.attainment(0.1), 0.0, "5 offered, 0 met");
        for v in [
            report.throughput_qps(),
            report.gflops(),
            report.mean_iterations(),
            report.goodput_qps(0.1),
            report.attainment(0.1),
        ] {
            assert!(v.is_finite(), "metric must be finite, got {v}");
        }
        // and the empty stream end to end: nothing offered at all
        let g = graph(120, 208);
        let engine = ServeEngine::new(&g, ServeConfig::default());
        let empty = engine.serve(&[]);
        assert_eq!(empty.offered, 0);
        assert_eq!(empty.throughput_qps(), 0.0);
        assert_eq!(empty.gflops(), 0.0);
        assert_eq!(empty.attainment(1.0), 1.0, "vacuously attained");
        assert!(empty.makespan_s == 0.0);
    }

    #[test]
    fn multi_device_waves_account_sync_and_tag_devices() {
        let g = graph(500, 204);
        let mut engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 4,
                n_devices: 2,
                ..ServeConfig::default()
            },
        );
        assert_eq!(engine.n_devices(), 2);
        let ledger = engine.enable_tracing();
        let report = engine.serve_generated(saturated(4), 4, 0.85, 17);
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.device_reports.len(), 2);
        assert!(report.device_reports.iter().all(|r| r.launches > 0));
        ledger.reconcile().expect("serve trace must reconcile");
        let json = ledger.chrome_trace_json();
        assert!(json.contains("#0") && json.contains("#1"));
        assert!(json.contains("serve_x_upload"));
    }

    #[test]
    fn telemetry_reconciles_and_correlates_waves() {
        let g = graph(300, 209);
        let mut engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 2,
                queue_capacity: 2,
                n_devices: 2,
                ..ServeConfig::default()
            },
        );
        let ledger = engine.enable_tracing();
        let tel = Arc::new(acsr_telemetry::Telemetry::new());
        engine.attach_telemetry(tel.clone());
        // 6 simultaneous arrivals into 2 slots + 2 queue places: some
        // capacity shed, everything else completes. serve_slo panics if
        // the scoped registry disagrees with the report.
        let queries: Vec<Query> = (0..6)
            .map(|id| query(id, (id as usize * 17) % 300, 0.0))
            .collect();
        let report = engine.serve(&queries);
        assert!(!report.rejected.is_empty());
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("serve.offered"), Some(6));
        assert_eq!(
            snap.counter("serve.completed"),
            Some(report.outcomes.len() as u64)
        );
        assert_eq!(
            snap.counter("serve.shed.capacity"),
            Some(report.rejected.len() as u64)
        );
        assert_eq!(snap.counter("serve.waves"), Some(report.waves as u64));
        assert_eq!(
            snap.counter("serve.iterations"),
            Some(report.total_iterations() as u64)
        );
        assert!(snap.gauge("serve.tenant.0.attainment").is_some());
        assert!(snap.gauge("serve.device.1.busy_s").is_some());
        // every wave record joins to at least one kernel span, and the
        // timeline export validates the correlation end to end
        let waves = tel.requests.waves();
        assert_eq!(waves.len(), report.waves);
        let spans = ledger.spans();
        for w in &waves {
            assert!(
                spans.iter().any(|s| s.wave == Some(w.wave)),
                "wave {} has no kernel span",
                w.wave
            );
        }
        let json = acsr_telemetry::timeline_json(&ledger, &tel).expect("timeline validates");
        assert!(json.contains("\"name\":\"serving\""));
        assert!(json.contains("\"name\":\"wave1\""));
        // a second run keeps allocating fresh wave ids — no collisions
        let before = waves.len();
        engine.serve(&queries);
        let after = tel.requests.waves();
        assert!(after.len() > before);
        let mut seen = std::collections::BTreeSet::new();
        assert!(after.iter().all(|w| seen.insert(w.wave)), "wave ids unique");
    }

    #[test]
    fn telemetry_counts_deadline_sheds() {
        let g = graph(200, 210);
        let mut engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 1,
                queue_capacity: 32,
                ..ServeConfig::default()
            },
        );
        let tel = Arc::new(acsr_telemetry::Telemetry::new());
        engine.attach_telemetry(tel.clone());
        // Tight SLO + deep backlog: late waiters deadline-shed at pop
        // time. The scoped registry must agree with the report exactly.
        let queries: Vec<Query> = (0..12)
            .map(|id| query(id, (id as usize * 11) % 200, 0.0))
            .collect();
        let policy = SloPolicy::open_loop(1e-4, 1, 32);
        let report = engine.serve_slo(&queries, &policy);
        assert!(!report.deadline_shed.is_empty(), "backlog must shed");
        let snap = tel.metrics.snapshot();
        assert_eq!(
            snap.counter("serve.shed.deadline"),
            Some(report.deadline_shed.len() as u64)
        );
        let events = tel.requests.events();
        let deadline_events = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    acsr_telemetry::RequestEvent::Shed {
                        kind: acsr_telemetry::ShedKind::Deadline,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(deadline_events, report.deadline_shed.len());
    }

    #[test]
    fn query_split_matches_row_split_bitwise() {
        // The dispatch mode changes *when* work runs and on which
        // device, never *what* is computed: scores and iteration counts
        // must be bit-identical between the two dispatches.
        let g = graph(400, 211);
        let run = |dispatch| {
            let engine = ServeEngine::new(
                &g,
                ServeConfig {
                    max_batch: 4,
                    n_devices: 3,
                    keep_scores: true,
                    ..ServeConfig::default()
                },
            );
            let queries: Vec<Query> = (0..6)
                .map(|id| query(id, (id as usize * 29) % 400, 0.0))
                .collect();
            engine.serve_slo(
                &queries,
                &SloPolicy::closed_loop(4, 64).with_dispatch(dispatch),
            )
        };
        let rs = run(DispatchPolicy::RowSplit);
        let qs = run(DispatchPolicy::QuerySplit);
        assert_eq!(rs.outcomes.len(), 6);
        assert_eq!(qs.outcomes.len(), 6);
        assert_eq!(rs.stolen_waves(), 0);
        assert_eq!(qs.stolen_waves(), qs.waves, "every wave stolen");
        assert!(qs.waves > 0);
        for (a, b) in rs.outcomes.iter().zip(&qs.outcomes) {
            assert_eq!(a.id, b.id, "retirement order must match");
            assert_eq!(a.iterations, b.iterations, "query {}", a.id);
            let sa = a.scores.as_ref().unwrap();
            let sb = b.scores.as_ref().unwrap();
            assert!(
                sa.iter()
                    .zip(sb)
                    .all(|(x, y)| x.to_f64().to_bits() == y.to_f64().to_bits()),
                "query {} scores must be bit-identical across dispatches",
                a.id
            );
        }
    }

    #[test]
    fn single_device_never_steals() {
        let g = graph(200, 212);
        let engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 2,
                ..ServeConfig::default()
            },
        );
        let queries: Vec<Query> = (0..4)
            .map(|id| query(id, (id as usize * 7) % 200, 0.0))
            .collect();
        let report = engine.serve_slo(
            &queries,
            &SloPolicy::closed_loop(2, 64).with_dispatch(DispatchPolicy::QuerySplit),
        );
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.stolen_waves(), 0, "one device: nothing to steal");
        assert!(report
            .wave_modes
            .iter()
            .all(|m| *m == DispatchMode::RowSplit));
    }

    #[test]
    fn auto_dispatch_steals_narrow_waves_and_cuts_their_latency() {
        let g = graph(500, 213);
        let config = ServeConfig {
            max_batch: 8,
            n_devices: 4,
            ..ServeConfig::default()
        };
        // Arrivals a full second apart against a microsecond-scale
        // service time: every wave is width 1, the exact shape where
        // row-splitting underfeeds all four devices and pays the sync.
        let queries: Vec<Query> = (0..5)
            .map(|id| query(id, (id as usize * 31) % 500, id as f64))
            .collect();
        let run = |dispatch| {
            let engine = ServeEngine::new(&g, config.clone());
            engine.serve_slo(
                &queries,
                &SloPolicy::open_loop(0.05, 8, 64).with_dispatch(dispatch),
            )
        };
        let rs = run(DispatchPolicy::RowSplit);
        let auto = run(DispatchPolicy::Auto);
        assert!(rs.wave_widths.iter().all(|&w| w == 1));
        assert!(auto.wave_widths.iter().all(|&w| w == 1));
        assert_eq!(auto.outcomes.len(), rs.outcomes.len());
        // Width-1 probes measure exactly the wave the run executes, so
        // the model's choice is ground truth here: stealing must be
        // picked, and picked because it is genuinely faster.
        assert_eq!(auto.stolen_waves(), auto.waves, "narrow waves steal");
        let lat = |r: &ServeReport<f64>| r.latency_stats().p99_s;
        assert!(
            lat(&auto) < lat(&rs),
            "stolen narrow waves must cut latency: auto {} vs row-split {}",
            lat(&auto),
            lat(&rs)
        );
    }

    #[test]
    fn stolen_waves_reconcile_with_telemetry() {
        let g = graph(300, 214);
        let mut engine = ServeEngine::new(
            &g,
            ServeConfig {
                max_batch: 2,
                n_devices: 2,
                ..ServeConfig::default()
            },
        );
        let tel = Arc::new(acsr_telemetry::Telemetry::new());
        engine.attach_telemetry(tel.clone());
        let queries: Vec<Query> = (0..4)
            .map(|id| query(id, (id as usize * 13) % 300, 0.0))
            .collect();
        // serve_slo panics internally if the scoped registry disagrees
        // with the report (including the stolen-wave count).
        let report = engine.serve_slo(
            &queries,
            &SloPolicy::closed_loop(2, 64).with_dispatch(DispatchPolicy::QuerySplit),
        );
        assert!(report.stolen_waves() > 0);
        let snap = tel.metrics.snapshot();
        assert_eq!(
            snap.counter("serve.waves.stolen"),
            Some(report.stolen_waves() as u64)
        );
    }

    #[test]
    fn batching_improves_throughput_on_saturated_load() {
        let g = graph(600, 205);
        let qps = |max_batch: usize| {
            let engine = ServeEngine::new(
                &g,
                ServeConfig {
                    max_batch,
                    queue_capacity: 64,
                    ..ServeConfig::default()
                },
            );
            engine
                .serve_generated(saturated(16), 16, 0.85, 19)
                .throughput_qps()
        };
        let serial = qps(1);
        let batched = qps(8);
        assert!(
            batched > serial * 1.5,
            "batched {batched} vs serial {serial}"
        );
    }
}
