//! Open-loop serving policy: SLO targets, deadline shedding, and
//! queue-depth-adaptive batch sizing.
//!
//! The closed-loop scheduler of [`crate::scheduler`] answers "how fast
//! can the engine drain a backlog"; a production front-end instead
//! faces an **open loop** — arrivals keep coming at the offered rate
//! whether or not the service keeps up — and is judged by its
//! **SLO-attainment**: the fraction of *offered* queries answered
//! within the latency target. [`SloPolicy`] packages the three levers
//! the front-end has:
//!
//! * **admission** — per-tenant priority tiers and weighted fair shares
//!   ([`crate::tenant`]), applied when a batch slot frees;
//! * **deadline shedding** — a query whose queue wait alone has already
//!   exceeded its tenant's SLO budget cannot possibly meet its target,
//!   so it is dropped at pop time instead of burning a batch slot
//!   (turning certain SLO misses into cheap rejections);
//! * **batch sizing** — [`BatchPolicy::Adaptive`] picks each wave's
//!   width from current demand. `BENCH_serve.json` shows the tradeoff
//!   this navigates: `max_batch` 64 maximizes queries/sec but roughly
//!   triples p50 vs narrow waves, so light load runs narrow
//!   (latency-optimal) and a backlog widens waves toward the
//!   throughput-optimal cap.

use crate::tenant::TenantTable;

/// Per-wave batch-width selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchPolicy {
    /// Every wave admits up to `k` queries (the closed-loop behavior).
    Fixed(usize),
    /// Width tracks demand: the next power of two covering the queries
    /// currently in the system (active + queued), clamped to
    /// `[min, max]`. Light load stays at `min` for the best per-query
    /// latency; a backlog ramps to `max` for the best drain rate.
    Adaptive {
        /// Narrowest wave (≥ 1).
        min: usize,
        /// Widest wave (the SpMM batch cap).
        max: usize,
    },
}

impl BatchPolicy {
    /// Wave-width cap given `demand` queries in the system right now.
    pub fn cap(&self, demand: usize) -> usize {
        match *self {
            BatchPolicy::Fixed(k) => k,
            BatchPolicy::Adaptive { min, max } => demand.max(1).next_power_of_two().clamp(min, max),
        }
    }

    /// Largest width the policy can ever pick.
    pub fn max_width(&self) -> usize {
        match *self {
            BatchPolicy::Fixed(k) => k,
            BatchPolicy::Adaptive { max, .. } => max,
        }
    }
}

/// How a wave's work is spread across the engine's devices.
///
/// Row-split runs every query on every device over that device's row
/// shard — the right shape for wide waves, where the batched SpMM
/// amortizes row-structure reads. But a *small* wave (fewer queries
/// than devices, or narrow enough that per-device work no longer covers
/// launch floors) leaves devices nearly idle; those devices can instead
/// *steal whole queries*: each device holds a replicated full-graph
/// plan and runs its stolen queries end to end, trading per-query
/// parallelism for query parallelism and skipping the per-wave
/// multi-device sync entirely on the devices it idles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Always split rows across all devices (the PR 3 behavior).
    #[default]
    RowSplit,
    /// Always assign whole queries round-robin to replicated devices.
    QuerySplit,
    /// Per wave, pick whichever of the two a probe-calibrated linear
    /// cost model predicts is faster for the wave's width.
    Auto,
}

/// Open-loop serving policy: how arrivals are admitted, shed, and
/// batched, and the latency target attainment is reported against.
#[derive(Clone, Debug)]
pub struct SloPolicy {
    /// Submission-queue capacity; offers beyond it are capacity-shed at
    /// their arrival times.
    pub queue_capacity: usize,
    /// Per-wave batch sizing.
    pub batch: BatchPolicy,
    /// Tenant registry (priorities, shares, SLO budgets).
    pub tenants: TenantTable,
    /// Drop queries whose queue wait already exceeds their tenant's
    /// SLO budget instead of admitting them.
    pub deadline_shed: bool,
    /// The headline p99 latency target attainment curves are reported
    /// against, seconds.
    pub p99_target_s: f64,
    /// Per-wave device dispatch (row-split vs whole-query stealing).
    pub dispatch: DispatchPolicy,
}

impl SloPolicy {
    /// An open-loop policy with one default tenant whose SLO budget is
    /// the reporting target: adaptive waves 1..=`max_batch`, deadline
    /// shedding on.
    pub fn open_loop(p99_target_s: f64, max_batch: usize, queue_capacity: usize) -> SloPolicy {
        SloPolicy {
            queue_capacity,
            batch: BatchPolicy::Adaptive {
                min: 1,
                max: max_batch,
            },
            tenants: TenantTable::single(p99_target_s),
            deadline_shed: true,
            p99_target_s,
            dispatch: DispatchPolicy::RowSplit,
        }
    }

    /// The same policy with a different per-wave dispatch.
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> SloPolicy {
        self.dispatch = dispatch;
        self
    }

    /// The closed-loop scheduler expressed as a policy: fixed waves, no
    /// deadlines, one tenant with an unbounded budget. This is what
    /// [`crate::scheduler::ServeEngine::serve`] runs.
    pub fn closed_loop(max_batch: usize, queue_capacity: usize) -> SloPolicy {
        SloPolicy {
            queue_capacity,
            batch: BatchPolicy::Fixed(max_batch),
            tenants: TenantTable::single(f64::INFINITY),
            deadline_shed: false,
            p99_target_s: f64::INFINITY,
            dispatch: DispatchPolicy::RowSplit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_cap_tracks_demand_within_bounds() {
        let p = BatchPolicy::Adaptive { min: 2, max: 64 };
        assert_eq!(p.cap(0), 2, "idle stays at min");
        assert_eq!(p.cap(1), 2);
        assert_eq!(p.cap(3), 4, "next power of two");
        assert_eq!(p.cap(9), 16);
        assert_eq!(p.cap(64), 64);
        assert_eq!(p.cap(500), 64, "backlog clamps to max");
        assert_eq!(p.max_width(), 64);
    }

    #[test]
    fn fixed_cap_ignores_demand() {
        let p = BatchPolicy::Fixed(8);
        assert_eq!(p.cap(0), 8);
        assert_eq!(p.cap(1000), 8);
        assert_eq!(p.max_width(), 8);
    }

    #[test]
    fn policy_constructors_wire_the_knobs() {
        let open = SloPolicy::open_loop(0.25, 32, 128);
        assert!(open.deadline_shed);
        assert_eq!(open.batch, BatchPolicy::Adaptive { min: 1, max: 32 });
        assert_eq!(open.tenants.spec(0).slo_s, 0.25);
        assert_eq!(open.dispatch, DispatchPolicy::RowSplit);
        let closed = SloPolicy::closed_loop(16, 64);
        assert!(!closed.deadline_shed);
        assert_eq!(closed.batch, BatchPolicy::Fixed(16));
        assert_eq!(closed.tenants.spec(7).slo_s, f64::INFINITY);
        assert_eq!(closed.dispatch, DispatchPolicy::RowSplit);
        let stealing = SloPolicy::open_loop(0.25, 32, 128).with_dispatch(DispatchPolicy::Auto);
        assert_eq!(stealing.dispatch, DispatchPolicy::Auto);
    }
}
