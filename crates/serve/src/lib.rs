//! # acsr-serve — batched multi-query SpMV serving
//!
//! The paper evaluates ACSR one SpMV at a time; a deployed graph
//! service answers many personalized queries (RWR/PPR, §VI-C Eq. 8)
//! concurrently against one shared graph. This crate models that
//! serving path on the simulated SIMT substrate:
//!
//! * [`loadgen`] — seeded open-loop arrival traces: steady Poisson,
//!   diurnal rate curves, bursty clumps, and adversarial hot-key
//!   streams, plus tenant-mix assignment;
//! * [`queue`] — a bounded submission queue that sheds overload at each
//!   offer's true arrival-time occupancy;
//! * [`scheduler`] — a continuous-batching engine: each *wave* runs one
//!   RWR iteration for every active query as a single multi-vector
//!   ACSR SpMM (amortizing launch floors and row-structure reads across
//!   the batch), retires converged queries, and refills their slots.
//!   Admission is event-driven — arrivals are offered at their true
//!   arrival times, never batch-admitted at wave boundaries;
//! * [`slo`] — open-loop serving policy: SLO targets, deadline
//!   shedding, queue-depth-adaptive batch sizing, and per-wave device
//!   dispatch ([`slo::DispatchPolicy`]: row-split vs whole-query
//!   stealing onto replicated devices, or a probe-calibrated automatic
//!   choice) ([`ServeEngine::serve_slo`](scheduler::ServeEngine::serve_slo));
//! * [`tenant`] — per-tenant priority classes and exact-integer
//!   weighted fair-share admission;
//! * [`latency`] — p50/p95/p99 latency accounting and SLO-attainment
//!   helpers over the virtual model clock;
//! * [`churn`] — serving concurrent with operator maintenance on one
//!   clock: a [`churn::ChurnSource`] (e.g. `acsr-stream`'s maintained
//!   engine) preempts wave formation with due maintenance events, so
//!   query latency includes streaming-update contention.
//!
//! Batching never changes answers: per vector, the batched kernels run
//! exactly the single-vector float-op sequence, so every query's scores
//! and iteration count are bit-identical to a dedicated single-query
//! run — whatever the batch width or device count. See
//! [`scheduler::ServeEngine`].

pub mod churn;
pub mod latency;
pub mod loadgen;
pub mod query;
pub mod queue;
pub mod scheduler;
pub mod slo;
pub mod telemetry;
pub mod tenant;

pub use churn::{
    serve_with_churn, ChurnServeConfig, ChurnServeReport, ChurnSource, SteadyOperator,
};
pub use latency::LatencyStats;
pub use loadgen::{assign_tenants, generate_queries, ArrivalPattern};
pub use query::{Query, QueryOutcome};
pub use queue::SubmissionQueue;
pub use scheduler::{DispatchMode, ServeConfig, ServeEngine, ServeReport};
pub use slo::{BatchPolicy, DispatchPolicy, SloPolicy};
pub use telemetry::reconcile_serve;
pub use tenant::{FairShare, TenantSpec, TenantTable};
