//! # acsr-serve — batched multi-query SpMV serving
//!
//! The paper evaluates ACSR one SpMV at a time; a deployed graph
//! service answers many personalized queries (RWR/PPR, §VI-C Eq. 8)
//! concurrently against one shared graph. This crate models that
//! serving path on the simulated SIMT substrate:
//!
//! * [`loadgen`] — seeded Poisson / bursty query streams;
//! * [`queue`] — a bounded submission queue that sheds overload;
//! * [`scheduler`] — a continuous-batching engine: each *wave* runs one
//!   RWR iteration for every active query as a single multi-vector
//!   ACSR SpMM (amortizing launch floors and row-structure reads across
//!   the batch), retires converged queries, and refills their slots;
//! * [`latency`] — p50/p95/p99 latency accounting over the virtual
//!   model clock.
//!
//! Batching never changes answers: per vector, the batched kernels run
//! exactly the single-vector float-op sequence, so every query's scores
//! and iteration count are bit-identical to a dedicated single-query
//! run — whatever the batch width or device count. See
//! [`scheduler::ServeEngine`].

pub mod latency;
pub mod loadgen;
pub mod query;
pub mod queue;
pub mod scheduler;

pub use latency::LatencyStats;
pub use loadgen::{generate_queries, ArrivalPattern};
pub use query::{Query, QueryOutcome};
pub use queue::SubmissionQueue;
pub use scheduler::{ServeConfig, ServeEngine, ServeReport};
