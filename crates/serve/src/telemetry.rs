//! Serving-plane instrumentation and its accounting check.
//!
//! When a [`crate::ServeEngine`] holds a [`Telemetry`] handle, each
//! [`serve_slo`](crate::ServeEngine::serve_slo) run records into a
//! *scoped* per-run [`MetricsRegistry`] (plus the shared request trace),
//! then — before anything is published — [`reconcile_serve`] asserts the
//! scoped counters equal the just-built [`ServeReport`]'s fields
//! *integer-exactly*. Only a reconciled registry is merged into the
//! shared telemetry, so `repro metrics serve` snapshots can never drift
//! from the report the run already ships. A mismatch is a panic, not a
//! warning: the registry is an accounting mirror of the scheduler, and
//! disagreement means one of them miscounted.

use crate::query::Query;
use crate::scheduler::ServeReport;
use acsr_telemetry::{MetricsRegistry, RequestEvent, ShedKind, Telemetry, WaveRecord};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Per-run instrumentation scope: the scoped registry, the pending wave
/// id (allocated at first admission so `Admitted` events can name the
/// wave they will ride before it runs), and the tenants seen so far.
pub(crate) struct ServeScope {
    tel: Arc<Telemetry>,
    metrics: MetricsRegistry,
    pending_wave: Option<u64>,
    tenants: BTreeSet<u32>,
}

impl ServeScope {
    pub(crate) fn new(tel: Arc<Telemetry>) -> ServeScope {
        ServeScope {
            tel,
            metrics: MetricsRegistry::new(),
            pending_wave: None,
            tenants: BTreeSet::new(),
        }
    }

    /// One arrival offered to the submission queue (`depth_before` is
    /// the occupancy at the offer instant; `accepted` false means
    /// capacity shed).
    pub(crate) fn on_offer(&mut self, q: &Query, depth_before: usize, accepted: bool) {
        self.tenants.insert(q.tenant);
        self.metrics.add("serve.offered", 1);
        self.metrics
            .add(&format!("serve.tenant.{}.offered", q.tenant), 1);
        self.metrics
            .observe("serve.queue_depth", depth_before as f64);
        self.tel.requests.record(RequestEvent::Arrival {
            t_s: q.arrival_s,
            query: q.id,
            tenant: q.tenant,
        });
        if !accepted {
            self.metrics.add("serve.shed.capacity", 1);
            self.metrics
                .add(&format!("serve.tenant.{}.shed", q.tenant), 1);
            self.tel.requests.record(RequestEvent::Shed {
                t_s: q.arrival_s,
                query: q.id,
                tenant: q.tenant,
                kind: ShedKind::Capacity,
            });
        }
    }

    /// A waiter dropped at pop time because its queue wait had already
    /// consumed the tenant's SLO budget.
    pub(crate) fn on_deadline_shed(&mut self, now: f64, q: &Query) {
        self.metrics.add("serve.shed.deadline", 1);
        self.metrics
            .add(&format!("serve.tenant.{}.shed", q.tenant), 1);
        self.tel.requests.record(RequestEvent::Shed {
            t_s: now,
            query: q.id,
            tenant: q.tenant,
            kind: ShedKind::Deadline,
        });
    }

    /// A query admitted into a batch slot at `now`; it will ride the
    /// pending wave (allocated here on first admission).
    pub(crate) fn on_admitted(&mut self, now: f64, q: &Query) {
        let wave = *self
            .pending_wave
            .get_or_insert_with(|| self.tel.next_wave_id());
        let wait = now - q.arrival_s;
        self.metrics.add("serve.admitted", 1);
        self.metrics
            .add(&format!("serve.tenant.{}.admitted", q.tenant), 1);
        self.metrics.observe("serve.queue_wait_s", wait);
        self.tel.requests.record(RequestEvent::Admitted {
            t_s: now,
            query: q.id,
            tenant: q.tenant,
            wave,
            queue_wait_s: wait,
        });
    }

    /// The wave id the next wave executes under: the pending id its
    /// admissions announced, or a fresh one when only survivors ride.
    pub(crate) fn take_wave_id(&mut self) -> u64 {
        self.pending_wave
            .take()
            .unwrap_or_else(|| self.tel.next_wave_id())
    }

    /// One executed wave. `stolen` marks a wave dispatched by
    /// whole-query stealing ([`crate::DispatchMode::QuerySplit`]); the
    /// `serve.waves.stolen` counter only materializes when a steal
    /// actually happens, so row-split-only runs snapshot identically to
    /// before the dispatch policy existed.
    pub(crate) fn on_wave(&mut self, record: WaveRecord, stolen: bool) {
        self.metrics.add("serve.waves", 1);
        if stolen {
            self.metrics.add("serve.waves.stolen", 1);
        }
        self.metrics.add("serve.iterations", record.width as u64);
        self.metrics
            .observe("serve.wave_width", record.width as f64);
        self.tel.requests.record_wave(record);
    }

    /// A query retired at wave end `now` (`slo_s` is its tenant's
    /// latency budget, for the per-tenant attainment counters).
    pub(crate) fn on_completed(
        &mut self,
        now: f64,
        q: &Query,
        iterations: usize,
        converged: bool,
        slo_s: f64,
    ) {
        let latency = now - q.arrival_s;
        self.metrics.add("serve.completed", 1);
        if converged {
            self.metrics.add("serve.converged", 1);
        }
        self.metrics
            .add(&format!("serve.tenant.{}.completed", q.tenant), 1);
        if latency <= slo_s {
            self.metrics
                .add(&format!("serve.tenant.{}.met", q.tenant), 1);
        }
        self.metrics.observe("serve.latency_s", latency);
        self.tel.requests.record(RequestEvent::Completed {
            t_s: now,
            query: q.id,
            tenant: q.tenant,
            iterations,
            converged,
            latency_s: latency,
        });
    }

    /// Reconcile the scoped registry against the finished report
    /// (panicking on any mismatch), derive the summary gauges, and merge
    /// the run into the shared telemetry.
    pub(crate) fn finish<T>(self, report: &ServeReport<T>) {
        if let Err(e) = reconcile_serve(&self.metrics, report) {
            panic!("serve telemetry does not reconcile with the report: {e}");
        }
        self.metrics
            .set_gauge("serve.makespan_s", report.makespan_s);
        for &t in &self.tenants {
            let offered = self.metrics.counter(&format!("serve.tenant.{t}.offered"));
            let met = self.metrics.counter(&format!("serve.tenant.{t}.met"));
            let attainment = if offered == 0 {
                1.0
            } else {
                met as f64 / offered as f64
            };
            self.metrics
                .set_gauge(&format!("serve.tenant.{t}.attainment"), attainment);
            // Burn rate of a 1% error budget (the p99-style SLO): 1.0
            // means the tenant misses exactly its budget, >1 burns it.
            self.metrics.set_gauge(
                &format!("serve.tenant.{t}.slo_burn_rate"),
                (1.0 - attainment) / 0.01,
            );
        }
        multi_gpu::record_device_gauges(
            &self.metrics,
            "serve.device",
            &report.device_reports,
            report.makespan_s,
        );
        self.tel.metrics.merge_snapshot(&self.metrics.snapshot());
    }
}

/// Assert that a serve run's scoped registry totals equal the
/// [`ServeReport`]'s fields integer-exactly. `Ok(())` or a message
/// naming the first disagreeing pair.
pub fn reconcile_serve<T>(
    metrics: &MetricsRegistry,
    report: &ServeReport<T>,
) -> Result<(), String> {
    let snap = metrics.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let hist_count = |name: &str| snap.histogram(name).map(|h| h.count()).unwrap_or(0);
    let check = |name: &str, got: u64, want: u64| {
        if got == want {
            Ok(())
        } else {
            Err(format!("{name}: registry {got} != report {want}"))
        }
    };

    let completed = report.outcomes.len() as u64;
    let converged = report.outcomes.iter().filter(|o| o.converged).count() as u64;
    let iterations = report.total_iterations() as u64;
    check(
        "serve.offered",
        counter("serve.offered"),
        report.offered as u64,
    )?;
    check("serve.admitted", counter("serve.admitted"), completed)?;
    check("serve.completed", counter("serve.completed"), completed)?;
    check("serve.converged", counter("serve.converged"), converged)?;
    check(
        "serve.shed.capacity",
        counter("serve.shed.capacity"),
        report.rejected.len() as u64,
    )?;
    check(
        "serve.shed.deadline",
        counter("serve.shed.deadline"),
        report.deadline_shed.len() as u64,
    )?;
    check("serve.waves", counter("serve.waves"), report.waves as u64)?;
    check(
        "serve.waves.stolen",
        counter("serve.waves.stolen"),
        report.stolen_waves() as u64,
    )?;
    check("serve.iterations", counter("serve.iterations"), iterations)?;
    let widths: u64 = report.wave_widths.iter().map(|&w| w as u64).sum();
    check(
        "serve.iterations (wave widths)",
        counter("serve.iterations"),
        widths,
    )?;
    check(
        "serve.latency_s samples",
        hist_count("serve.latency_s"),
        completed,
    )?;
    check(
        "serve.queue_wait_s samples",
        hist_count("serve.queue_wait_s"),
        completed,
    )?;
    check(
        "serve.wave_width samples",
        hist_count("serve.wave_width"),
        report.waves as u64,
    )?;
    if let Some(h) = snap.histogram("serve.wave_width") {
        if h.sum() != widths as f64 {
            return Err(format!(
                "serve.wave_width sum: registry {} != report {widths}",
                h.sum()
            ));
        }
    }
    check(
        "serve.queue_depth samples",
        hist_count("serve.queue_depth"),
        report.offered as u64,
    )?;

    // Per-tenant counters partition the global ones.
    let sum_suffix = |suffix: &str| -> u64 {
        snap.entries
            .iter()
            .filter(|(name, _)| name.starts_with("serve.tenant.") && name.ends_with(suffix))
            .filter_map(|(name, _)| snap.counter(name))
            .sum()
    };
    check(
        "tenant offered sum",
        sum_suffix(".offered"),
        report.offered as u64,
    )?;
    check("tenant completed sum", sum_suffix(".completed"), completed)?;
    check("tenant admitted sum", sum_suffix(".admitted"), completed)?;
    check(
        "tenant shed sum",
        sum_suffix(".shed"),
        (report.rejected.len() + report.deadline_shed.len()) as u64,
    )?;
    Ok(())
}
