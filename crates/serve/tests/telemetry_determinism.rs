//! Cross-width determinism of the telemetry plane, property-tested:
//! the metrics snapshot (`acsr-metrics-v1` bytes), the request-event
//! stream, and the wave records produced by `serve_slo` must be
//! bit-identical at host worker widths 1, 2, and 4.
//!
//! The serving clock is virtual and wave ids come from the attached
//! [`acsr_telemetry::Telemetry`] (fresh per run, so ids restart at 1);
//! nothing observable may depend on how many host threads the
//! simulator spreads warps over. Guarded by a width lock since
//! `set_sim_threads` is process-global.

use acsr_serve::{
    BatchPolicy, DispatchPolicy, Query, ServeConfig, ServeEngine, SloPolicy, TenantSpec,
    TenantTable,
};
use acsr_telemetry::{RequestEvent, ShedKind, Telemetry};
use gpu_sim::set_sim_threads;
use graphgen::{generate_power_law, PowerLawConfig};
use proptest::prelude::*;
use sparse_formats::CsrMatrix;
use std::sync::{Arc, Mutex};

/// `set_sim_threads` is process-global; hold this across width changes.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn graph(rows: usize, seed: u64) -> CsrMatrix<f64> {
    generate_power_law(&PowerLawConfig {
        rows,
        cols: rows,
        mean_degree: 5.0,
        max_degree: rows / 2 + 4,
        pinned_max_rows: 1,
        col_skew: 0.4,
        seed,
        ..Default::default()
    })
}

/// A two-tenant stream that exercises every lifecycle edge: a burst at
/// t = 0 overflows the queue (capacity sheds), and tenant 1's tight SLO
/// budget deadline-sheds late waiters while tenant 0 completes.
fn stream(n_nodes: usize, n: usize) -> Vec<Query> {
    (0..n as u64)
        .map(|id| Query {
            id,
            seed: (id as usize * 31 + 7) % n_nodes,
            restart_c: 0.85,
            arrival_s: 0.0,
            tenant: (id % 2) as u32,
        })
        .collect()
}

fn policy() -> SloPolicy {
    SloPolicy {
        queue_capacity: 6,
        batch: BatchPolicy::Adaptive { min: 1, max: 4 },
        tenants: TenantTable::new(vec![
            TenantSpec {
                tenant: 0,
                priority: 0,
                share: 2,
                slo_s: f64::INFINITY,
            },
            TenantSpec {
                tenant: 1,
                priority: 1,
                share: 1,
                slo_s: 2e-4,
            },
        ]),
        deadline_shed: true,
        p99_target_s: 0.05,
        dispatch: DispatchPolicy::RowSplit,
    }
}

/// One serve_slo run at the given width; returns the three telemetry
/// artifacts that must not depend on it.
fn run_at(width: usize, g: &CsrMatrix<f64>, queries: &[Query]) -> (String, String, String) {
    set_sim_threads(width);
    let mut engine = ServeEngine::new(
        g,
        ServeConfig {
            max_batch: 4,
            queue_capacity: 6,
            n_devices: 2,
            ..ServeConfig::default()
        },
    );
    let tel = Arc::new(Telemetry::new());
    engine.attach_telemetry(tel.clone());
    engine.serve_slo(queries, &policy());
    set_sim_threads(0);
    (
        tel.metrics.snapshot().to_json(),
        format!("{:?}", tel.requests.events()),
        format!("{:?}", tel.requests.waves()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Widths 1, 2, 4: snapshot bytes, event stream, and wave records
    /// all bit-identical.
    #[test]
    fn telemetry_streams_are_width_invariant(rows in 60usize..200, seed in 4u64..2000) {
        let _guard = WIDTH_LOCK.lock().unwrap();
        let g = graph(rows, seed);
        let queries = stream(g.rows(), 14);
        let (snap1, events1, waves1) = run_at(1, &g, &queries);
        for width in [2usize, 4] {
            let (snap, events, waves) = run_at(width, &g, &queries);
            assert_eq!(snap, snap1, "metrics snapshot drifted at width {width}");
            assert_eq!(events, events1, "request events drifted at width {width}");
            assert_eq!(waves, waves1, "wave records drifted at width {width}");
        }
    }
}

/// The pinned scenario really exercises every edge the proptest relies
/// on: completions, capacity sheds, and deadline sheds all occur, and
/// the snapshot's integer counters agree with the event stream.
#[test]
fn pinned_scenario_covers_all_lifecycle_edges() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    set_sim_threads(1);
    let g = graph(120, 42);
    let queries = stream(g.rows(), 14);
    let mut engine = ServeEngine::new(
        &g,
        ServeConfig {
            max_batch: 4,
            queue_capacity: 6,
            n_devices: 2,
            ..ServeConfig::default()
        },
    );
    let tel = Arc::new(Telemetry::new());
    engine.attach_telemetry(tel.clone());
    let report = engine.serve_slo(&queries, &policy());
    set_sim_threads(0);

    assert!(!report.outcomes.is_empty(), "some queries must complete");
    assert!(!report.rejected.is_empty(), "burst must capacity-shed");
    assert!(
        !report.deadline_shed.is_empty(),
        "tenant 1's tight budget must deadline-shed"
    );
    let events = tel.requests.events();
    let count = |f: &dyn Fn(&RequestEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    let snap = tel.metrics.snapshot();
    assert_eq!(
        snap.counter("serve.offered"),
        Some(count(&|e| matches!(e, RequestEvent::Arrival { .. })))
    );
    assert_eq!(
        snap.counter("serve.completed"),
        Some(count(&|e| matches!(e, RequestEvent::Completed { .. })))
    );
    assert_eq!(
        snap.counter("serve.shed.capacity"),
        Some(count(&|e| matches!(
            e,
            RequestEvent::Shed {
                kind: ShedKind::Capacity,
                ..
            }
        )))
    );
    assert_eq!(
        snap.counter("serve.shed.deadline"),
        Some(count(&|e| matches!(
            e,
            RequestEvent::Shed {
                kind: ShedKind::Deadline,
                ..
            }
        )))
    );
    assert_eq!(
        snap.counter("serve.waves"),
        Some(tel.requests.waves().len() as u64)
    );
}
