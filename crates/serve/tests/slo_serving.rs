//! Open-loop SLO serving: deadline shedding, fair-share admission,
//! adaptive batching, and goodput accounting — end to end, with the
//! shed decisions pinned bit-identical across host worker widths.

use acsr_serve::{
    ArrivalPattern, BatchPolicy, DispatchPolicy, Query, ServeConfig, ServeEngine, ServeReport,
    SloPolicy, TenantSpec, TenantTable,
};
use gpu_sim::set_sim_threads;
use graphgen::{generate_power_law, PowerLawConfig};
use sparse_formats::CsrMatrix;
use std::sync::Mutex;

/// `set_sim_threads` is process-global; hold this across width changes.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn graph(rows: usize, seed: u64) -> CsrMatrix<f64> {
    generate_power_law(&PowerLawConfig {
        rows,
        cols: rows,
        mean_degree: 6.0,
        max_degree: 120,
        pinned_max_rows: 1,
        col_skew: 0.4,
        seed,
        ..Default::default()
    })
}

fn query(id: u64, seed: usize, arrival_s: f64, tenant: u32) -> Query {
    Query {
        id,
        seed,
        restart_c: 0.85,
        arrival_s,
        tenant,
    }
}

/// Per-query outcome rows (id, iterations, admitted bits, completed
/// bits), capacity sheds, deadline sheds, wave widths, makespan bits.
type Signature = (
    Vec<(u64, usize, u64, u64)>,
    Vec<u64>,
    Vec<u64>,
    Vec<usize>,
    u64,
);

/// Everything admission decides, exactly, as raw bits.
fn decision_signature(report: &ServeReport<f64>) -> Signature {
    let mut outcomes: Vec<(u64, usize, u64, u64)> = report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.id,
                o.iterations,
                o.admitted_s.to_bits(),
                o.completed_s.to_bits(),
            )
        })
        .collect();
    outcomes.sort_unstable();
    (
        outcomes,
        report.rejected.clone(),
        report.deadline_shed.clone(),
        report.wave_widths.clone(),
        report.makespan_s.to_bits(),
    )
}

/// A query that cannot meet its SLO any more is dropped at admission
/// instead of burning a batch slot: with a zero budget, only the query
/// popped at its own arrival instant (wait exactly 0) survives, every
/// queued waiter deadline-sheds, and overflow beyond the queue still
/// capacity-sheds — the three outcomes partition the offered stream.
#[test]
fn deadline_shedding_drops_stale_waiters_before_admission() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let g = graph(250, 301);
    let engine = ServeEngine::new(&g, ServeConfig::default());
    let policy = SloPolicy {
        queue_capacity: 8,
        ..SloPolicy::open_loop(0.0, 4, 8)
    };
    // 40 near-simultaneous arrivals: everything after the first query
    // waits through at least one wave
    let queries: Vec<Query> = (0..40)
        .map(|id| query(id, (id as usize * 17 + 3) % 250, 1e-9 * (id + 1) as f64, 0))
        .collect();
    let report = engine.serve_slo(&queries, &policy);
    assert_eq!(report.offered, 40);
    assert_eq!(
        report.outcomes.len(),
        1,
        "only the wait-free query survives"
    );
    assert_eq!(report.outcomes[0].id, 0);
    assert!(!report.deadline_shed.is_empty(), "stale waiters must shed");
    assert!(!report.rejected.is_empty(), "overflow must capacity-shed");
    assert_eq!(
        report.outcomes.len() + report.deadline_shed.len() + report.rejected.len(),
        40,
        "completed + deadline-shed + capacity-shed partition the stream"
    );
    // shed queries count against attainment but never against goodput
    assert!(report.attainment(f64::INFINITY) < 0.05);
    assert!(report.throughput_qps() > 0.0);
}

/// The admission, shedding, and batching decisions are functions of the
/// virtual model clock only: bit-identical across host worker widths.
#[test]
fn slo_decisions_are_bit_identical_across_sim_widths() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let g = graph(300, 302);
    let engine = ServeEngine::new(&g, ServeConfig::default());
    // an overloaded diurnal trace with a tight budget: capacity sheds,
    // deadline sheds, and adaptive widths all in play
    let mut queries = acsr_serve::generate_queries(
        ArrivalPattern::Diurnal {
            base_qps: 2e4,
            peak_qps: 2e5,
            period_s: 0.02,
        },
        48,
        300,
        0.85,
        41,
    );
    acsr_serve::assign_tenants(&mut queries, &[(0, 3.0), (1, 1.0)], 43);
    let policy = SloPolicy {
        tenants: TenantTable::new(vec![
            TenantSpec {
                tenant: 0,
                priority: 0,
                share: 3,
                slo_s: 2e-4,
            },
            TenantSpec {
                tenant: 1,
                priority: 1,
                share: 1,
                slo_s: 1e-3,
            },
        ]),
        ..SloPolicy::open_loop(1e-3, 8, 12)
    };
    let mut signatures = Vec::new();
    for width in [1usize, 2, 4] {
        set_sim_threads(width);
        let report = engine.serve_slo(&queries, &policy);
        set_sim_threads(0);
        assert!(
            !report.deadline_shed.is_empty() || !report.rejected.is_empty(),
            "width {width}: the overload trace must actually shed"
        );
        signatures.push((width, decision_signature(&report)));
    }
    for pair in signatures.windows(2) {
        let (wa, ref a) = pair[0];
        let (wb, ref b) = pair[1];
        assert_eq!(a, b, "widths {wa} and {wb} disagree on shed/admission");
    }
}

/// Goodput counts only completions that met the target: shed queries
/// and SLO-missing completions never inflate it, and attainment is
/// denominated in *offered* queries.
#[test]
fn goodput_never_counts_shed_or_missed_queries() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let g = graph(250, 303);
    let engine = ServeEngine::new(
        &g,
        ServeConfig {
            max_batch: 2,
            queue_capacity: 4,
            ..ServeConfig::default()
        },
    );
    // closed-loop overload: plenty of capacity sheds, no deadline sheds
    let queries: Vec<Query> = (0..24)
        .map(|id| query(id, (id as usize * 13 + 5) % 250, 1e-9 * (id + 1) as f64, 0))
        .collect();
    let report = engine.serve(&queries);
    assert!(!report.rejected.is_empty());
    let completed = report.outcomes.len() as f64;
    // a target between p50 and max so some completions miss it
    let target = report.latency_stats().p50_s;
    let met = report
        .outcomes
        .iter()
        .filter(|o| o.latency_s() <= target)
        .count() as f64;
    assert!(met < completed, "the p50 target must leave misses");
    // goodput ≤ throughput, with the gap exactly the missing queries
    let expected_goodput = met / report.makespan_s;
    assert!((report.goodput_qps(target) - expected_goodput).abs() < 1e-12);
    assert!(report.goodput_qps(target) < report.throughput_qps());
    // attainment is denominated in offered queries: sheds are misses
    let offered = report.offered as f64;
    assert!((report.attainment(target) - met / offered).abs() < 1e-12);
    assert!(
        report.attainment(f64::INFINITY) < 1.0,
        "sheds keep even an infinite target unattained"
    );
    assert!(
        (report.attainment(f64::INFINITY) - completed / offered).abs() < 1e-12,
        "rejected queries must not inflate attainment"
    );
}

/// Strict priority tiers: with one batch slot and a queued backlog,
/// every high-priority waiter is admitted before any low-priority one.
#[test]
fn priority_tenants_are_admitted_before_bulk() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let g = graph(200, 304);
    let engine = ServeEngine::new(&g, ServeConfig::default());
    let policy = SloPolicy {
        queue_capacity: 16,
        batch: BatchPolicy::Fixed(1),
        tenants: TenantTable::new(vec![
            TenantSpec {
                tenant: 0,
                priority: 1,
                share: 1,
                slo_s: f64::INFINITY,
            },
            TenantSpec {
                tenant: 1,
                priority: 0,
                share: 1,
                slo_s: f64::INFINITY,
            },
        ]),
        deadline_shed: false,
        p99_target_s: f64::INFINITY,
        dispatch: DispatchPolicy::RowSplit,
    };
    // 10 simultaneous arrivals, alternating bulk (tenant 0, even ids)
    // and interactive (tenant 1, odd ids)
    let queries: Vec<Query> = (0..10)
        .map(|id| query(id, (id as usize * 19 + 1) % 200, 0.0, (id % 2) as u32))
        .collect();
    let report = engine.serve_slo(&queries, &policy);
    assert_eq!(report.outcomes.len(), 10);
    // q0 slips into the initially-free slot (it arrived first); after
    // that every interactive waiter beats every bulk waiter
    let admitted = |id: u64| {
        report
            .outcomes
            .iter()
            .find(|o| o.id == id)
            .unwrap()
            .admitted_s
    };
    let last_interactive = (1..10).step_by(2).map(admitted).fold(0.0f64, f64::max);
    for id in (2..10).step_by(2) {
        assert!(
            admitted(id) >= last_interactive,
            "bulk query {id} admitted at {} before the interactive tier drained ({last_interactive})",
            admitted(id)
        );
    }
}

/// Adaptive batch sizing: sparse load runs narrow (latency-optimal)
/// waves, a backlog widens waves to the cap (throughput-optimal).
#[test]
fn adaptive_batching_tracks_queue_depth() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let g = graph(200, 305);
    let engine = ServeEngine::new(&g, ServeConfig::default());
    let adaptive = SloPolicy {
        deadline_shed: false,
        tenants: TenantTable::single(f64::INFINITY),
        ..SloPolicy::open_loop(f64::INFINITY, 8, 64)
    };
    // sparse: arrivals a full second apart — every wave is width 1
    let sparse: Vec<Query> = (0..6)
        .map(|id| query(id, (id as usize * 11 + 2) % 200, id as f64, 0))
        .collect();
    let light = engine.serve_slo(&sparse, &adaptive);
    assert_eq!(light.outcomes.len(), 6);
    assert!(
        light.wave_widths.iter().all(|&w| w == 1),
        "light load must run narrow waves, got {:?}",
        light.wave_widths
    );
    // saturated: 32 simultaneous arrivals ramp waves to the cap
    let burst: Vec<Query> = (0..32)
        .map(|id| query(id, (id as usize * 7 + 3) % 200, 0.0, 0))
        .collect();
    let heavy = engine.serve_slo(&burst, &adaptive);
    assert_eq!(heavy.outcomes.len(), 32);
    assert_eq!(
        heavy.wave_widths.iter().max().copied(),
        Some(8),
        "a backlog must widen waves to the cap"
    );
    assert!(heavy.mean_wave_width() > 1.0);
}
