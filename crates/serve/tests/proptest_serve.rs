//! The serving scheduler's two determinism invariants, property-tested:
//!
//! 1. **Batch independence** — a query's final scores AND iteration
//!    count are bit-identical whether it runs alone (`max_batch = 1`)
//!    or co-batched with arbitrary other queries. Continuous batching
//!    changes scheduling, never answers.
//! 2. **Device-count independence** — the same holds across the number
//!    of simulated devices the wave is spread over: the per-bin row
//!    partition preserves every row's bin and accumulation order.
//!
//! Both are exercised at host worker widths 1 and 2 (the default serve
//! configuration is `StaticLongTail`, which the simulator pins at every
//! width), guarded by a width lock since `set_sim_threads` is
//! process-global.

use acsr_serve::{Query, QueryOutcome, ServeConfig, ServeEngine};
use gpu_sim::set_sim_threads;
use graphgen::{generate_power_law, PowerLawConfig};
use proptest::prelude::*;
use sparse_formats::CsrMatrix;
use std::sync::Mutex;

/// `set_sim_threads` is process-global; hold this across width changes.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn arb_graph() -> impl Strategy<Value = CsrMatrix<f64>> {
    (50usize..220, 4u64..2000, 0usize..2).prop_map(|(rows, seed, pinned)| {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 5.0,
            max_degree: rows / 2 + 4,
            pinned_max_rows: pinned,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    })
}

/// A small all-at-once query stream (saturated: everything arrives at
/// t = 0, so batches actually fill).
fn stream(n_nodes: usize, n: usize) -> Vec<Query> {
    (0..n as u64)
        .map(|id| Query {
            id,
            seed: (id as usize * 31 + 7) % n_nodes,
            restart_c: 0.85,
            arrival_s: 0.0,
            tenant: 0,
        })
        .collect()
}

fn serve_sorted(g: &CsrMatrix<f64>, cfg: ServeConfig, queries: &[Query]) -> Vec<QueryOutcome<f64>> {
    let engine = ServeEngine::new(g, cfg);
    let mut outcomes = engine.serve(queries).outcomes;
    outcomes.sort_by_key(|o| o.id);
    outcomes
}

fn assert_outcomes_bit_identical(a: &[QueryOutcome<f64>], b: &[QueryOutcome<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: completed counts differ");
    for (oa, ob) in a.iter().zip(b) {
        assert_eq!(oa.id, ob.id);
        assert_eq!(
            oa.iterations, ob.iterations,
            "{what}: query {} iteration count drifted",
            oa.id
        );
        assert_eq!(oa.converged, ob.converged);
        let sa = oa.scores.as_ref().expect("keep_scores");
        let sb = ob.scores.as_ref().expect("keep_scores");
        for (j, (x, y)) in sa.iter().zip(sb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: query {} row {j}: {x} vs {y}",
                oa.id
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// max_batch 1 vs k: bit-identical scores and iteration counts.
    #[test]
    fn batching_never_changes_answers(g in arb_graph(), k in 2usize..6) {
        let _guard = WIDTH_LOCK.lock().unwrap();
        let queries = stream(g.rows(), 5);
        let cfg = |max_batch| ServeConfig {
            max_batch,
            queue_capacity: 16,
            keep_scores: true,
            ..ServeConfig::default()
        };
        for width in [1usize, 2] {
            set_sim_threads(width);
            let solo = serve_sorted(&g, cfg(1), &queries);
            let batched = serve_sorted(&g, cfg(k), &queries);
            set_sim_threads(0);
            assert_outcomes_bit_identical(&solo, &batched, &format!("width {width}"));
        }
    }

    /// 1 device vs 2 or 3: bit-identical scores and iteration counts.
    #[test]
    fn device_count_never_changes_answers(g in arb_graph(), n_devices in 2usize..4) {
        let _guard = WIDTH_LOCK.lock().unwrap();
        let queries = stream(g.rows(), 4);
        let cfg = |n_devices| ServeConfig {
            max_batch: 4,
            queue_capacity: 16,
            n_devices,
            keep_scores: true,
            ..ServeConfig::default()
        };
        for width in [1usize, 2] {
            set_sim_threads(width);
            let single = serve_sorted(&g, cfg(1), &queries);
            let multi = serve_sorted(&g, cfg(n_devices), &queries);
            set_sim_threads(0);
            assert_outcomes_bit_identical(
                &single,
                &multi,
                &format!("width {width}, {n_devices} devices"),
            );
        }
    }
}
