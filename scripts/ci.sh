#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests. Run from the repo root.
#
# Matches what the tier-1 gate checks plus the full workspace suite.
# Pass --offline (the default here) so the hermetic shims in shims/ are
# used instead of crates.io.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> trace export smoke (repro fig5 --trace)"
./target/release/repro fig5 --trace --scale 512 --matrices INT > /dev/null
test -s results/trace_fig5.json
./target/release/repro trace-check results/trace_fig5.json

echo "==> serving smoke (repro serve --trace)"
./target/release/repro serve --trace --scale 512 --matrices INT > /dev/null
test -s results/trace_serve.json
./target/release/repro trace-check results/trace_serve.json

echo "==> profiler smoke (repro profile fig5)"
./target/release/repro profile fig5 --trace --scale 512 --matrices INT > /dev/null
test -s results/PROFILE_fig5.json
./target/release/repro check-artifacts results/PROFILE_fig5.json results/trace_fig5.json

echo "==> selector smoke (repro selector + registry print)"
./target/release/repro formats > /dev/null
./target/release/repro selector --scale 1024 --matrices ENR > /dev/null
test -s results/SELECTOR_report.json
./target/release/repro check-artifacts results/SELECTOR_report.json

echo "==> sim-throughput smoke (repro simbench --quick)"
./target/release/repro simbench --quick > /dev/null
test -s results/BENCH_sim_throughput.json
./target/release/repro check-artifacts results/BENCH_sim_throughput.json

echo "==> slo smoke (repro slo --quick)"
./target/release/repro slo --quick > /dev/null
test -s results/BENCH_slo.json
./target/release/repro check-artifacts results/BENCH_slo.json

echo "==> fleet smoke (repro fleet --quick)"
./target/release/repro fleet --quick > /dev/null
test -s results/BENCH_fleet.json
./target/release/repro check-artifacts results/BENCH_fleet.json

echo "==> streaming-maintenance smoke (repro stream --quick)"
./target/release/repro stream --quick > /dev/null
test -s results/BENCH_stream.json
./target/release/repro check-artifacts results/BENCH_stream.json

echo "==> metrics smoke (repro metrics fig5, reconciliation enforced)"
./target/release/repro metrics fig5 --scale 512 --matrices INT > /dev/null
test -s results/METRICS_fig5.json
./target/release/repro check-artifacts results/METRICS_fig5.json

echo "==> timeline smoke (repro timeline serve, wave correlation enforced)"
./target/release/repro timeline serve --scale 512 --matrices INT > /dev/null
test -s results/METRICS_serve.json
test -s results/TIMELINE_serve.json
./target/release/repro check-artifacts results/METRICS_serve.json results/TIMELINE_serve.json

echo "==> perf-regression gate (bench-diff vs committed baseline)"
./target/release/repro bench-diff baselines/PROFILE_fig5_ci.json results/PROFILE_fig5.json

echo "==> host-throughput gate (bench-diff vs committed floor)"
./target/release/repro bench-diff baselines/BENCH_sim_throughput_ci.json \
    results/BENCH_sim_throughput.json

echo "==> slo-attainment gate (bench-diff vs committed baseline)"
./target/release/repro bench-diff baselines/BENCH_slo_ci.json results/BENCH_slo.json

echo "==> streaming-maintenance gate (bench-diff vs committed baseline)"
./target/release/repro bench-diff baselines/BENCH_stream_ci.json results/BENCH_stream.json

echo "==> fleet-scaling gate (bench-diff vs committed baseline)"
./target/release/repro bench-diff baselines/BENCH_fleet_ci.json results/BENCH_fleet.json

echo "==> perf-regression gate rejects an inflated baseline"
if ./target/release/repro bench-diff baselines/PROFILE_fig5_ci_inflated.json \
    results/PROFILE_fig5.json > /dev/null; then
  echo "bench-diff accepted an inflated baseline; the gate is broken" >&2
  exit 1
fi

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "CI green."
